//! The dynamic checker in action: strand persistency allows concurrent
//! persists only between independent strands. This example runs a program
//! whose strands conflict through *dynamically computed* array indices —
//! invisible to static analysis — and shows the happens-before detector
//! catching the WAW dependence at runtime (paper §4.4).
//!
//! Run with: `cargo run --example dynamic_strand_races`

use deepmc_repro::models::PersistencyModel;
use deepmc_repro::prelude::parse;
use deepmc_repro::toolkit::dynamic::check_dynamic;

const PROGRAM: &str = r#"
module strand_demo
file "strand_demo.c"

struct ring { slots: [i64; 8] }

// Hashes collide: both strands end up writing slot 0.
fn slot_of(%producer: i64) -> i64 {
entry:
  %h = mul %producer, 8
  %i = rem %h, 8
  ret %i
}

fn publish_colliding() {
entry:
  %r = palloc ring
  %i1 = call slot_of(1)
  %i2 = call slot_of(2)
  strand_begin
  loc 20
  store %r.slots[%i1], 100
  flush %r.slots[%i1]
  fence
  strand_end
  strand_begin
  loc 27
  store %r.slots[%i2], 200
  flush %r.slots[%i2]
  fence
  strand_end
  ret
}

// Distinct slots: genuinely independent strands, no dependence.
fn publish_disjoint() {
entry:
  %r = palloc ring
  strand_begin
  store %r.slots[1], 100
  flush %r.slots[1]
  fence
  strand_end
  strand_begin
  store %r.slots[2], 200
  flush %r.slots[2]
  fence
  strand_end
  ret
}
"#;

fn main() {
    let module = parse(PROGRAM).expect("demo parses");
    let modules = std::slice::from_ref(&module);

    println!("=== publish_colliding: both strands hash to slot 0 ===\n");
    let report = check_dynamic(modules, "publish_colliding", PersistencyModel::Strand)
        .expect("program executes");
    print!("{report}");
    assert_eq!(report.warnings.len(), 1);
    assert!(report.warnings[0].dynamic, "found by the online analysis");

    println!("\n=== publish_disjoint: independent strands ===\n");
    let report = check_dynamic(modules, "publish_disjoint", PersistencyModel::Strand)
        .expect("program executes");
    print!("{report}");
    assert!(report.warnings.is_empty());

    println!(
        "\nStatic analysis sees two unknown indices; only the runtime check can tell \
         the colliding case from the disjoint one."
    );
}
