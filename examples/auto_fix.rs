//! The automated-fixing extension end to end: check a buggy module, apply
//! DeepMC's machine-suggested repairs, and print the repaired PIR with a
//! clean re-check.
//!
//! Run with: `cargo run --example auto_fix`

use deepmc_repro::prelude::*;
use deepmc_repro::toolkit::fixer::fix_until_stable;

const BUGGY: &str = r#"
module journal
file "journal.c"

struct jhead { head: i64, tail: i64, gen: i64 }

fn commit(%v: i64) {
entry:
  %j = palloc jhead
  store %j.tail, %v        // BUG 1: never flushed …
  store %j.gen, 1
  persist %j               // BUG 2: whole-object persist, two dirty fields of three
  flush %j.gen             // BUG 3: redundant — gen is already clean
  fence
  ret
}
"#;

fn main() {
    let config = DeepMcConfig::new(PersistencyModel::Strict);
    let before = deepmc_repro::toolkit::check_source(BUGGY, &config).expect("valid PIR");
    println!("=== Before ===\n{before}");

    let modules = vec![parse(BUGGY).expect("parses")];
    let (fixed, after, applied) = fix_until_stable(modules, &config, 8);
    println!("=== Applied {applied} fix(es) ===\n");
    println!("{}", print(&fixed[0]));
    println!("=== After ===\n{after}");
    assert!(after.warnings.len() < before.warnings.len());
}
