//! Run DeepMC over the whole evaluation corpus — the mini re-implementations
//! of PMDK, NVM-Direct, PMFS, and Mnemosyne with the paper's seeded bugs —
//! and print every warning grouped by framework, plus the Table-1 style
//! summary.
//!
//! Run with: `cargo run --example detect_framework_bugs`

use deepmc_repro::corpus::{Framework, Validity, GROUND_TRUTH};
use deepmc_repro::models::Severity;

fn main() {
    let mut grand_total = 0;
    let mut grand_validated = 0;

    for fw in Framework::ALL {
        let report = fw.check();
        println!(
            "=== {} ({} persistency, {} warnings) ===",
            fw.name(),
            fw.model(),
            report.warnings.len()
        );
        for w in &report.warnings {
            // Mechanized "manual validation": check the warning against the
            // ground-truth table.
            let verdict = GROUND_TRUTH
                .iter()
                .find(|s| {
                    s.framework == fw && s.class == w.class && s.file == w.file && s.line == w.line
                })
                .map(|s| match s.validity {
                    Validity::RealBug => "validated",
                    Validity::FalsePositive => "FALSE POSITIVE",
                })
                .unwrap_or("unexpected!");
            let sev = match w.severity() {
                Severity::Violation => "V",
                Severity::Performance => "P",
            };
            println!("  [{sev}] {}:{} {} — {} ({verdict})", w.file, w.line, w.class, w.message);
            grand_total += 1;
            if verdict == "validated" {
                grand_validated += 1;
            }
        }
        println!();
    }

    println!(
        "DeepMC reported {grand_total} warnings; {grand_validated} are validated \
         persistency bugs (paper: 50 warnings, 43 validated)."
    );
    assert_eq!(grand_total, 50);
    assert_eq!(grand_validated, 43);
}
