//! Quickstart: write a small NVM program in PIR, declare its persistency
//! model, and let DeepMC report what is wrong with it — then fix it and
//! watch the report go clean.
//!
//! Run with: `cargo run --example quickstart`

use deepmc_repro::prelude::*;

const BUGGY: &str = r#"
module quickstart
file "quickstart.c"

struct account {
  balance: i64,
  owner: i64,
}

// Strict persistency demands every store be flushed and fenced in program
// order. This deposit gets several things wrong.
fn deposit(%amount: i64) {
entry:
  %acct = palloc account
  store %acct.owner, 42
  // BUG 1: balance is modified but never written back.
  store %acct.balance, %amount
  // BUG 2: the whole account is persisted though we now re-persist the
  // owner that this flush already covers.
  persist %acct.owner
  persist %acct.owner
  ret
}
"#;

const FIXED: &str = r#"
module quickstart
file "quickstart.c"

struct account {
  balance: i64,
  owner: i64,
}

fn deposit(%amount: i64) {
entry:
  %acct = palloc account
  store %acct.owner, 42
  persist %acct.owner
  store %acct.balance, %amount
  persist %acct.balance
  ret
}
"#;

fn main() {
    let config = DeepMcConfig::new(PersistencyModel::Strict);

    println!("=== Checking the buggy deposit (strict persistency) ===\n");
    let report = deepmc_repro::toolkit::check_source(BUGGY, &config).expect("valid PIR");
    print!("{report}");

    println!("\n=== Checking the fixed deposit ===\n");
    let report = deepmc_repro::toolkit::check_source(FIXED, &config).expect("valid PIR");
    print!("{report}");

    assert!(report.warnings.is_empty());
    println!("\nThe fixed version is clean: one store, one persist, in order.");
}
