//! Demonstrate *why* persistency bugs matter: run a buggy and a fixed NVM
//! program on the simulated runtime, crash them at every instruction under
//! randomized cache-eviction orders, and count the inconsistent recovered
//! states. The buggy hashmap (Fig. 1 of the paper) loses its bucket count;
//! the fixed ordering never does.
//!
//! Run with: `cargo run --example crash_consistency`

use deepmc_repro::interp::{InterpConfig, NoHooks, Outcome, Session};
use deepmc_repro::prelude::*;
use deepmc_repro::runtime::PAddr;

const PROGRAM: &str = r#"
module hashmap_demo
file "hashmap_atomic.c"

struct hashmap { nbuckets: i64 }
struct buckets { arr: [i64; 8] }

// Fig. 1: nbuckets is written first but persisted last.
fn create_buggy() {
entry:
  %h = palloc hashmap
  %b = palloc buckets
  store %h.nbuckets, 8
  memset_persist %b, 1
  persist %h.nbuckets
  ret
}

// The fix: persist the count before the buckets become visible.
fn create_fixed() {
entry:
  %h = palloc hashmap
  %b = palloc buckets
  store %h.nbuckets, 8
  persist %h.nbuckets
  memset_persist %b, 1
  ret
}
"#;

const LOG_CAP: u64 = 1 << 16;

/// Crash `entry` at step `crash_at` under `seed`'s eviction order, reboot,
/// and report whether the recovered state is inconsistent (buckets
/// initialized while the count says zero).
fn crash_run(module: &Module, entry: &str, crash_at: u64, seed: u64) -> Option<bool> {
    let pool = PmemPool::new(PoolConfig { size: 1 << 20, shards: 4, ..Default::default() });
    let outcome = {
        let heap = PmemHeap::open(&pool);
        let log = heap.alloc(LOG_CAP);
        let txm = TxManager::new(&pool, log, LOG_CAP);
        let session = Session {
            modules: std::slice::from_ref(module),
            pool: &pool,
            heap: &heap,
            txm: &txm,
            hooks: &NoHooks,
            config: InterpConfig { crash_at: Some(crash_at), ..Default::default() },
        };
        session.run(entry, &[]).expect("program runs")
    };
    if matches!(outcome, Outcome::Finished(_)) {
        return None; // ran to completion before the crash point
    }
    let img = CrashPolicy::Random(seed).apply(&pool);
    let hashmap = PAddr(64 + LOG_CAP); // first object after the tx log
    let buckets = hashmap.offset(64);
    let nbuckets = img.read_u64(hashmap);
    let bucket0 = img.read_u64(buckets);
    Some(bucket0 == 1 && nbuckets == 0)
}

fn main() {
    let module = parse(PROGRAM).expect("demo parses");

    // First, what does DeepMC say statically?
    let report =
        deepmc_repro::toolkit::check_source(PROGRAM, &DeepMcConfig::new(PersistencyModel::Strict))
            .unwrap();
    println!("DeepMC static report on the demo:\n{report}");

    // Then show the predicted inconsistency actually happening.
    for entry in ["create_buggy", "create_fixed"] {
        let mut inconsistent = 0;
        let mut crashes = 0;
        for step in 0..16 {
            for seed in 0..64 {
                match crash_run(&module, entry, step, seed) {
                    None => break,
                    Some(bad) => {
                        crashes += 1;
                        inconsistent += bad as u32;
                    }
                }
            }
        }
        println!(
            "{entry}: {inconsistent} inconsistent recovered states out of {crashes} \
             simulated crashes"
        );
        if entry == "create_fixed" {
            assert_eq!(inconsistent, 0, "the fix must eliminate the inconsistency");
        } else {
            assert!(inconsistent > 0, "the bug must be observable");
        }
    }
    println!("\nThe semantic-mismatch warning corresponds to real lost state after a crash.");
}
