//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy producing `Vec`s of `element` with a length drawn from
/// `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start >= self.size.end {
            self.size.start
        } else {
            rng.usize_in(self.size.start, self.size.end)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `vec(element, lo..hi)` — vectors with `lo <= len < hi`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
