//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option<V>`: `None` a quarter of the time.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `of(strategy)` — optional values of `strategy`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
