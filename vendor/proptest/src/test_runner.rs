//! Test configuration and the deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; 64 keeps the (unshrunk) suite
        // quick while still exploring broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG: seeded from the property name and case index, so a
/// failing case number identifies its inputs exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for case `case` of property `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { inner: StdRng::seed_from_u64(h ^ ((case as u64) << 1) ^ 0x9E37) }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Uniform usize draw from a half-open range.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        self.inner.gen_range(lo..hi)
    }
}
