//! Minimal `proptest`-compatible property testing.
//!
//! Vendored so the workspace builds without network access. Implements the
//! subset of the proptest 1.x API this repository uses: the [`Strategy`]
//! trait (ranges, tuples, `Just`, `prop_map`, `prop_oneof!`,
//! `collection::vec`, `option::of`, `any::<T>()`, simple regex string
//! strategies), the `proptest!` macro with `#![proptest_config(...)]`, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest: generation is purely random (derived
//! deterministically from the test name and case index, so failures
//! reproduce), and there is **no shrinking** — a failing case reports the
//! generated inputs via the panic message of the underlying assertion.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Build a [`strategy::Union`] over equally-weighted alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert within a proptest body. Maps to `assert!` (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &$strat,
                            &mut __rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}
