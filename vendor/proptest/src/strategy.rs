//! The `Strategy` trait and primitive combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// directly produces a value from the RNG.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Equally-weighted choice between alternatives (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
}

/// String-literal strategies: a tiny regex-flavored generator.
///
/// Supports the forms this workspace uses — `X{a,b}` where `X` is `\PC`
/// (any printable char) or a literal char class — and falls back to short
/// printable-ASCII strings for anything unrecognized.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_rep_bounds(self).unwrap_or((0, 32));
        let len = if lo == hi { lo } else { rng.usize_in(lo, hi + 1) };
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            // Mostly printable ASCII with occasional non-ASCII printables,
            // approximating `\PC` (any non-control character).
            let c = match rng.below(20) {
                0 => char::from_u32(0xA1 + rng.below(0x4FF) as u32).unwrap_or('§'),
                _ => (0x20u8 + rng.below(0x5F) as u8) as char,
            };
            out.push(c);
        }
        out
    }
}

/// Extract `{a,b}` repetition bounds from the tail of a pattern.
fn parse_rep_bounds(pattern: &str) -> Option<(usize, usize)> {
    let inner = pattern.strip_suffix('}')?;
    let brace = inner.rfind('{')?;
    let body = &inner[brace + 1..];
    let (lo, hi) = match body.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = body.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..1000 {
            let v = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let w = (0u8..3).prop_map(|x| x * 2).generate(&mut rng);
            assert!(w <= 4);
        }
    }

    #[test]
    fn union_picks_every_alternative() {
        let mut rng = TestRng::for_case("u", 0);
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn regex_bounds_respected() {
        let mut rng = TestRng::for_case("r", 0);
        for _ in 0..100 {
            let s = "\\PC{0,200}".generate(&mut rng);
            assert!(s.chars().count() <= 200);
        }
    }
}
