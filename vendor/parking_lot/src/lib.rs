//! Minimal `parking_lot`-compatible locks backed by `std::sync`.
//!
//! This crate is vendored so the workspace builds without network access.
//! It exposes the (small) subset of the real `parking_lot` API this
//! repository uses: non-poisoning `Mutex`/`RwLock` with `const fn new`,
//! guard types, `into_inner`, and `get_mut`. Poisoned std locks are
//! transparently recovered (parking_lot has no poisoning).

use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex (usable in `const` contexts).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably access the inner value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock (usable in `const` contexts).
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquire an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Mutably access the inner value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
