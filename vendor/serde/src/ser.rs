//! Serialization half: the `Serialize` / `Serializer` traits.

use crate::Value;
use std::convert::Infallible;

/// A data format (or value sink) that can absorb a [`Value`] tree.
///
/// The primitive `serialize_*` methods exist so hand-written impls match
/// real serde's surface (`s.serialize_str(...)`); they all funnel into
/// [`Serializer::serialize_value`].
pub trait Serializer: Sized {
    type Ok;
    type Error;

    /// Absorb a fully-built value tree.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) })
    }

    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::UInt(v))
    }

    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Float(v))
    }

    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(v.to_string()))
    }

    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }

    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
}

/// A structure serializable into any [`Serializer`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error>;
}

/// The canonical serializer: builds a [`Value`] tree, infallibly.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Infallible;

    fn serialize_value(self, v: Value) -> Result<Value, Infallible> {
        Ok(v)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self as f64)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(s),
            None => s.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Seq(self.iter().map(crate::to_value).collect()))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}
