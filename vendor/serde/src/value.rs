//! The owned data-model tree every (de)serialization routes through.

/// A self-describing value: the common denominator between Rust data
/// structures and concrete formats (JSON in this workspace).
///
/// Maps preserve insertion order, matching serde_json's
/// `preserve_order` behavior closely enough for stable output.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative (or explicitly signed) integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human-oriented name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}
