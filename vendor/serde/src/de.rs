//! Deserialization half: the `Deserialize` / `Deserializer` traits.

use crate::Value;
use std::fmt;
use std::marker::PhantomData;

/// Errors producible while deserializing. Mirrors `serde::de::Error`.
pub trait Error: Sized {
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A data source that can yield a [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    /// Consume the deserializer, producing the value tree it holds.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A structure deserializable from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error>;
}

/// The canonical error type for in-memory deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> DeError {
        DeError(msg.to_string())
    }
}

/// The canonical deserializer: hands out a pre-built [`Value`] tree.
pub struct ValueDeserializer<'de> {
    value: Value,
    marker: PhantomData<&'de ()>,
}

impl<'de> ValueDeserializer<'de> {
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value, marker: PhantomData }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer<'de> {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.value)
    }
}

fn unexpected(expected: &str, got: &Value) -> DeError {
    DeError(format!("expected {expected}, got {}", got.kind()))
}

fn int_from_value(v: &Value) -> Result<i128, DeError> {
    match v {
        Value::Int(i) => Ok(*i as i128),
        Value::UInt(u) => Ok(*u as i128),
        Value::Float(f) if f.fract() == 0.0 => Ok(*f as i128),
        other => Err(unexpected("integer", other)),
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let i = int_from_value(&v).map_err(D::Error::custom)?;
                <$t>::try_from(i).map_err(|_| {
                    D::Error::custom(format!(
                        "integer {i} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_de_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_value()? {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    other => Err(D::Error::custom(unexpected("float", &other))),
                }
            }
        }
    )*};
}

impl_de_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::custom(unexpected("bool", &other))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(D::Error::custom(unexpected("string", &other))),
        }
    }
}

/// `&'static str` deserializes by leaking the parsed string. Only derive
/// code for static tables (e.g. the corpus ground truth) exercises this,
/// and only in tests — the leak is bounded and deliberate.
impl<'de> Deserialize<'de> for &'static str {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        Ok(Box::leak(s.into_boxed_str()))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            v => crate::from_value::<T>(v).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| crate::from_value::<T>(v).map_err(D::Error::custom))
                .collect(),
            other => Err(D::Error::custom(unexpected("sequence", &other))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}
