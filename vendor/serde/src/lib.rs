//! Minimal `serde`-compatible serialization framework.
//!
//! Vendored so the workspace builds without network access. Unlike real
//! serde's visitor-driven zero-copy design, this implementation routes
//! everything through an owned [`Value`] tree: serializers receive a
//! fully-built `Value`, deserializers hand one out. That is dramatically
//! simpler, supports the same derive surface this repository uses (named/
//! tuple structs, unit/tuple/struct enum variants, generics, `#[serde(
//! skip)]`, `#[serde(default, skip_serializing_if = "...")]`), and keeps
//! the `Serialize`/`Deserialize`/`Serializer`/`Deserializer` trait names
//! and signatures close enough that hand-written impls (e.g. for
//! `Framework` in the corpus crate) compile unchanged.

mod value;

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use value::Value;

pub use serde_derive::{Deserialize, Serialize};

/// Serialize any value into a [`Value`] tree. Infallible by construction.
pub fn to_value<T: Serialize + ?Sized>(t: &T) -> Value {
    match t.serialize(ser::ValueSerializer) {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

/// Deserialize a `T` out of a [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>>(v: Value) -> Result<T, de::DeError> {
    T::deserialize(de::ValueDeserializer::new(v))
}

/// Remove and return the entry for `name` from a field map. Used by
/// derive-generated code; not part of the public API.
#[doc(hidden)]
pub fn __take_field(m: &mut Vec<(String, Value)>, name: &str) -> Option<Value> {
    m.iter().position(|(k, _)| k == name).map(|i| m.remove(i).1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_value() {
        assert_eq!(to_value(&42u32), Value::UInt(42));
        assert_eq!(to_value(&-7i64), Value::Int(-7));
        assert_eq!(to_value(&true), Value::Bool(true));
        assert_eq!(to_value("hi"), Value::Str("hi".to_string()));
        assert_eq!(from_value::<u32>(Value::UInt(42)).unwrap(), 42);
        assert_eq!(from_value::<Option<u32>>(Value::Null).unwrap(), None);
        assert_eq!(from_value::<Option<u32>>(Value::UInt(1)).unwrap(), Some(1));
        let v: Vec<u64> = from_value(to_value(&vec![1u64, 2, 3])).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn numeric_conversions_are_checked() {
        assert!(from_value::<u8>(Value::UInt(300)).is_err());
        assert!(from_value::<u32>(Value::Int(-1)).is_err());
        assert_eq!(from_value::<i64>(Value::UInt(5)).unwrap(), 5);
        assert_eq!(from_value::<f32>(Value::UInt(2)).unwrap(), 2.0);
    }
}
