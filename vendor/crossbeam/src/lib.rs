//! Minimal `crossbeam`-compatible scoped threads backed by
//! `std::thread::scope`.
//!
//! Vendored so the workspace builds without network access. Only the
//! `crossbeam::scope(|s| { s.spawn(move |_| ...); })` entry point this
//! repository uses is provided. Unlike real crossbeam, a panicking child
//! propagates its panic out of `scope` directly instead of being collected
//! into the returned `Result`; all call sites here `unwrap`/`expect` the
//! result, so the observable behavior (test failure on child panic) is the
//! same.

pub mod thread {
    /// A scope for spawning threads that may borrow from the caller's
    /// stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope itself so
        /// it can spawn nested children (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&me)) }
        }
    }

    /// Create a scope for spawning borrowing threads. All spawned threads
    /// are joined before this returns.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    let sum: u64 = data.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 24);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hit = std::sync::atomic::AtomicBool::new(false);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| hit.store(true, std::sync::atomic::Ordering::Relaxed));
            });
        })
        .unwrap();
        assert!(hit.into_inner());
    }
}
