//! Minimal `serde_json`-compatible JSON support over the vendored serde
//! value tree: `to_string`, `to_string_pretty`, `from_str`, and `Error`.
//!
//! Vendored so the workspace builds without network access. Output mirrors
//! serde_json's formatting (compact `{"k":v}` / pretty two-space indent),
//! so golden strings in tests keep their shape.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::marker::PhantomData;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

/// Convenience alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Keep floats recognizable as floats (serde_json prints 1.0, not 1).
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => escape_into(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serialize `t` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(t: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&mut out, &serde::to_value(t));
    Ok(out)
}

/// Serialize `t` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(t: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &serde::to_value(t), 0);
    Ok(out)
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() {
            return Err(self.err("expected value"));
        }
        if !text.contains('.') && !text.contains('e') && !text.contains('E') {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(u) = stripped.parse::<u64>() {
                    if u <= i64::MAX as u64 {
                        return Ok(Value::Int(-(u as i64)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
    }
}

struct JsonDeserializer<'de> {
    value: Value,
    marker: PhantomData<&'de ()>,
}

impl<'de> serde::Deserializer<'de> for JsonDeserializer<'de> {
    type Error = Error;

    fn take_value(self) -> Result<Value> {
        Ok(self.value)
    }
}

/// Parse a JSON document into a `T`.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::deserialize(JsonDeserializer { value: v, marker: PhantomData })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let s: String = from_str("\"a\\nb\"").unwrap();
        assert_eq!(s, "a\nb");
        assert_eq!(to_string(&s).unwrap(), "\"a\\nb\"");
        let o: Option<i64> = from_str("null").unwrap();
        assert_eq!(o, None);
        let f: f64 = from_str("1.5").unwrap();
        assert_eq!(f, 1.5);
        let n: i64 = from_str("-12").unwrap();
        assert_eq!(n, -12);
    }

    #[test]
    fn pretty_prints_two_space_indent() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::UInt(1)),
            ("b".to_string(), Value::Seq(vec![Value::Bool(true)])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("nul").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }
}
