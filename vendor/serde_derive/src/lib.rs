//! Minimal `#[derive(Serialize, Deserialize)]` for the vendored serde.
//!
//! Hand-rolled over raw `proc_macro` (no syn/quote — the registry is
//! unreachable in this environment). Supports exactly the shapes this
//! workspace uses:
//!
//! * named structs, tuple structs (newtype and n-ary)
//! * enums with unit, tuple, and struct variants (externally tagged)
//! * one or more plain type parameters (e.g. `Spanned<T>`)
//! * `#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(skip_serializing_if = "path")]`
//!
//! Generated code targets the value-tree API of the vendored `serde`
//! crate: `serde::to_value`, `serde::from_value`, `serde::__take_field`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------

struct Input {
    name: String,
    type_params: Vec<String>,
    kind: Kind,
}

enum Kind {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    default: bool,
    skip_if: Option<String>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Parse one `#[...]` attribute starting at `i`; returns the index past it
/// and, for `#[serde(...)]`, folds its items into `attrs`.
fn parse_attr(tokens: &[TokenTree], i: usize, attrs: &mut FieldAttrs) -> usize {
    debug_assert!(is_punct(&tokens[i], '#'));
    let TokenTree::Group(g) = &tokens[i + 1] else {
        panic!("expected [...] after # in derive input");
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    if !inner.is_empty() && is_ident(&inner[0], "serde") {
        if let Some(TokenTree::Group(args)) = inner.get(1) {
            let items: Vec<TokenTree> = args.stream().into_iter().collect();
            let mut j = 0;
            while j < items.len() {
                match &items[j] {
                    TokenTree::Ident(id) => {
                        let name = id.to_string();
                        // `name = "literal"`?
                        if j + 2 < items.len() && is_punct(&items[j + 1], '=') {
                            if let TokenTree::Literal(l) = &items[j + 2] {
                                let lit = l.to_string();
                                let path = lit.trim_matches('"').to_string();
                                if name == "skip_serializing_if" {
                                    attrs.skip_if = Some(path);
                                }
                                j += 3;
                            } else {
                                j += 3;
                            }
                        } else {
                            match name.as_str() {
                                "skip" => attrs.skip = true,
                                "default" => attrs.default = true,
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                    _ => j += 1,
                }
                // skip separating comma
                if j < items.len() && is_punct(&items[j], ',') {
                    j += 1;
                }
            }
        }
    }
    i + 2
}

/// Skip any attributes (docs included), discarding serde info.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut sink = FieldAttrs::default();
    while i < tokens.len() && is_punct(&tokens[i], '#') {
        i = parse_attr(tokens, i, &mut sink);
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parse `<...>` generics starting at `i` (which points at `<`).
/// Returns (type_params, index past `>`). Lifetimes are skipped; bounds
/// after `:` are skipped.
fn parse_generics(tokens: &[TokenTree], mut i: usize) -> (Vec<String>, usize) {
    debug_assert!(is_punct(&tokens[i], '<'));
    i += 1;
    let mut depth = 1usize;
    let mut params = Vec::new();
    let mut at_param_start = true;
    let mut in_bounds = false;
    while i < tokens.len() {
        let t = &tokens[i];
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth -= 1;
            if depth == 0 {
                return (params, i + 1);
            }
        } else if depth == 1 && is_punct(t, ',') {
            at_param_start = true;
            in_bounds = false;
        } else if depth == 1 && is_punct(t, ':') {
            in_bounds = true;
        } else if depth == 1 && is_punct(t, '\'') {
            // lifetime follows; its ident must not count as a type param
            i += 2;
            at_param_start = false;
            continue;
        } else if depth == 1 && at_param_start && !in_bounds {
            if let TokenTree::Ident(id) = t {
                let s = id.to_string();
                if s != "const" {
                    params.push(s);
                }
                at_param_start = false;
            }
        }
        i += 1;
    }
    panic!("unterminated generics in derive input");
}

/// Parse named fields from the token list of a brace group.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = FieldAttrs::default();
        while i < tokens.len() && is_punct(&tokens[i], '#') {
            i = parse_attr(tokens, i, &mut attrs);
        }
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(tokens, i);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected field name, got {:?}", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        assert!(is_punct(&tokens[i], ':'), "expected `:` after field `{name}`");
        i += 1;
        // Skip the type: consume until a top-level comma.
        let mut depth = 0usize;
        while i < tokens.len() {
            let t = &tokens[i];
            if is_punct(t, '<') {
                depth += 1;
            } else if is_punct(t, '>') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && is_punct(t, ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(Field { name, attrs });
    }
    fields
}

/// Count the arity of a paren-delimited tuple field list.
fn parse_tuple_arity(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0usize;
    let mut count = 1usize;
    let mut saw_trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && is_punct(t, ',') {
            if idx == tokens.len() - 1 {
                saw_trailing_comma = true;
            } else {
                count += 1;
            }
        }
    }
    let _ = saw_trailing_comma;
    count
}

/// Parse enum variants from the token list of the enum's brace group.
fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected variant name, got {:?}", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        let kind = if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    i += 1;
                    VariantKind::Tuple(parse_tuple_arity(&inner))
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    i += 1;
                    VariantKind::Named(parse_named_fields(&inner))
                }
                _ => VariantKind::Unit,
            }
        } else {
            VariantKind::Unit
        };
        // Skip an optional discriminant `= expr` up to the comma.
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // the comma
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(ts: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        panic!("derive input must be a struct or enum, got {:?}", tokens[i]);
    };
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("expected type name");
    };
    let name = name.to_string();
    i += 1;
    let (type_params, next) = if i < tokens.len() && is_punct(&tokens[i], '<') {
        parse_generics(&tokens, i)
    } else {
        (Vec::new(), i)
    };
    i = next;
    // Skip a `where` clause if present (none in this workspace).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                break
            }
            _ => i += 1,
        }
    }
    let kind = if is_enum {
        let TokenTree::Group(g) = &tokens[i] else {
            panic!("expected enum body");
        };
        Kind::Enum(parse_variants(&g.stream().into_iter().collect::<Vec<_>>()))
    } else {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(parse_tuple_arity(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            other => panic!("expected struct body, got {other:?}"),
        }
    };
    Input { name, type_params, kind }
}

// ---------------------------------------------------------------------
// Codegen helpers
// ---------------------------------------------------------------------

fn ser_impl_header(input: &Input) -> String {
    if input.type_params.is_empty() {
        format!(
            "#[allow(unused_mut, unused_variables, clippy::all)] \
             impl ::serde::Serialize for {}",
            input.name
        )
    } else {
        let bounds: Vec<String> =
            input.type_params.iter().map(|p| format!("{p}: ::serde::Serialize")).collect();
        let args = input.type_params.join(", ");
        format!(
            "#[allow(unused_mut, unused_variables, clippy::all)] \
             impl<{}> ::serde::Serialize for {}<{}>",
            bounds.join(", "),
            input.name,
            args
        )
    }
}

fn de_impl_header(input: &Input) -> String {
    if input.type_params.is_empty() {
        format!(
            "#[allow(unused_mut, unused_variables, clippy::all)] \
             impl<'de> ::serde::Deserialize<'de> for {}",
            input.name
        )
    } else {
        let bounds: Vec<String> =
            input.type_params.iter().map(|p| format!("{p}: ::serde::Deserialize<'de>")).collect();
        let args = input.type_params.join(", ");
        format!(
            "#[allow(unused_mut, unused_variables, clippy::all)] \
             impl<'de, {}> ::serde::Deserialize<'de> for {}<{}>",
            bounds.join(", "),
            input.name,
            args
        )
    }
}

/// `m.push(("name", to_value(&expr)))`, honoring skip / skip_serializing_if.
fn ser_push_field(field: &Field, access: &str) -> String {
    if field.attrs.skip {
        return String::new();
    }
    let push =
        format!("__m.push((\"{n}\".to_string(), ::serde::to_value({access})));", n = field.name);
    match &field.attrs.skip_if {
        Some(path) => format!("if !{path}({access}) {{ {push} }}"),
        None => push,
    }
}

/// Expression deserializing field `name` out of `__m` (a field map),
/// honoring skip / default.
fn de_field_expr(field: &Field) -> String {
    if field.attrs.skip {
        return format!("{}: ::std::default::Default::default()", field.name);
    }
    let missing = if field.attrs.default {
        "::std::default::Default::default()".to_string()
    } else {
        // Absent fields read as Null: Option fields become None, anything
        // else produces a type error mentioning the field.
        format!(
            "::serde::from_value(::serde::Value::Null).map_err(|e| \
             <D::Error as ::serde::de::Error>::custom(format!(\"field `{n}`: {{e}}\")))?",
            n = field.name
        )
    };
    format!(
        "{n}: match ::serde::__take_field(&mut __m, \"{n}\") {{ \
           ::std::option::Option::Some(__fv) => ::serde::from_value(__fv).map_err(|e| \
             <D::Error as ::serde::de::Error>::custom(format!(\"field `{n}`: {{e}}\")))?, \
           ::std::option::Option::None => {missing}, \
         }}",
        n = field.name
    )
}

// ---------------------------------------------------------------------
// Serialize derive
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let body = match &input.kind {
        Kind::Named(fields) => {
            let pushes: String =
                fields.iter().map(|f| ser_push_field(f, &format!("&self.{}", f.name))).collect();
            format!(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new(); {pushes} \
                 ::serde::Serializer::serialize_value(__s, ::serde::Value::Map(__m))"
            )
        }
        Kind::Tuple(1) => {
            "::serde::Serializer::serialize_value(__s, ::serde::to_value(&self.0))".to_string()
        }
        Kind::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::to_value(&self.{i})")).collect();
            format!(
                "::serde::Serializer::serialize_value(__s, ::serde::Value::Seq(vec![{}]))",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let ty = &input.name;
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{ty}::{vn} => ::serde::Serializer::serialize_value(__s, \
                             ::serde::Value::Str(\"{vn}\".to_string())),"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        arms.push_str(&format!(
                            "{ty}::{vn}(__f0) => ::serde::Serializer::serialize_value(__s, \
                             ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::to_value(__f0))])),"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> =
                            binds.iter().map(|b| format!("::serde::to_value({b})")).collect();
                        arms.push_str(&format!(
                            "{ty}::{vn}({binds}) => ::serde::Serializer::serialize_value(__s, \
                             ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Seq(vec![{items}]))])),",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| format!("{0}: __f_{0}", f.name)).collect();
                        let pushes: String = fields
                            .iter()
                            .map(|f| ser_push_field(f, &format!("__f_{}", f.name)))
                            .collect();
                        arms.push_str(&format!(
                            "{ty}::{vn} {{ {binds} }} => {{ \
                               let mut __m: ::std::vec::Vec<(::std::string::String, \
                               ::serde::Value)> = ::std::vec::Vec::new(); {pushes} \
                               ::serde::Serializer::serialize_value(__s, \
                               ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                               ::serde::Value::Map(__m))])) }},",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "{header} {{ fn serialize<S: ::serde::Serializer>(&self, __s: S) -> \
         ::std::result::Result<S::Ok, S::Error> {{ {body} }} }}",
        header = ser_impl_header(input)
    )
}

// ---------------------------------------------------------------------
// Deserialize derive
// ---------------------------------------------------------------------

fn gen_deserialize(input: &Input) -> String {
    let ty = &input.name;
    let body = match &input.kind {
        Kind::Named(fields) => {
            let field_exprs: Vec<String> = fields.iter().map(de_field_expr).collect();
            format!(
                "let mut __m = match __v {{ \
                   ::serde::Value::Map(m) => m, \
                   other => return ::std::result::Result::Err(\
                     <D::Error as ::serde::de::Error>::custom(format!(\
                     \"expected map for `{ty}`, got {{}}\", other.kind()))), \
                 }}; \
                 ::std::result::Result::Ok({ty} {{ {fields} }})",
                fields = field_exprs.join(", ")
            )
        }
        Kind::Tuple(1) => format!(
            "::std::result::Result::Ok({ty}(::serde::from_value(__v).map_err(\
             <D::Error as ::serde::de::Error>::custom)?))"
        ),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|_| {
                    "::serde::from_value(__it.next().unwrap()).map_err(\
                     <D::Error as ::serde::de::Error>::custom)?"
                        .to_string()
                })
                .collect();
            format!(
                "let __s = match __v {{ \
                   ::serde::Value::Seq(s) if s.len() == {n} => s, \
                   other => return ::std::result::Result::Err(\
                     <D::Error as ::serde::de::Error>::custom(format!(\
                     \"expected {n}-element sequence for `{ty}`, got {{}}\", other.kind()))), \
                 }}; \
                 let mut __it = __s.into_iter(); \
                 ::std::result::Result::Ok({ty}({elems}))",
                elems = elems.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({ty}::{vn}),"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({ty}::{vn}(\
                             ::serde::from_value(__pv).map_err(\
                             <D::Error as ::serde::de::Error>::custom)?)),"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|_| {
                                "::serde::from_value(__it.next().unwrap()).map_err(\
                                 <D::Error as ::serde::de::Error>::custom)?"
                                    .to_string()
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{ \
                               let __s = match __pv {{ \
                                 ::serde::Value::Seq(s) if s.len() == {n} => s, \
                                 other => return ::std::result::Result::Err(\
                                   <D::Error as ::serde::de::Error>::custom(format!(\
                                   \"expected {n}-element sequence for `{ty}::{vn}`, \
                                   got {{}}\", other.kind()))), \
                               }}; \
                               let mut __it = __s.into_iter(); \
                               ::std::result::Result::Ok({ty}::{vn}({elems})) }},",
                            elems = elems.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let field_exprs: Vec<String> = fields.iter().map(de_field_expr).collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{ \
                               let mut __m = match __pv {{ \
                                 ::serde::Value::Map(m) => m, \
                                 other => return ::std::result::Result::Err(\
                                   <D::Error as ::serde::de::Error>::custom(format!(\
                                   \"expected map for `{ty}::{vn}`, got {{}}\", \
                                   other.kind()))), \
                               }}; \
                               ::std::result::Result::Ok({ty}::{vn} {{ {fields} }}) }},",
                            fields = field_exprs.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{ \
                   ::serde::Value::Str(__name) => match __name.as_str() {{ \
                     {unit_arms} \
                     other => ::std::result::Result::Err(\
                       <D::Error as ::serde::de::Error>::custom(format!(\
                       \"unknown unit variant `{{}}` of `{ty}`\", other))), \
                   }}, \
                   ::serde::Value::Map(mut __m) if __m.len() == 1 => {{ \
                     let (__k, __pv) = __m.remove(0); \
                     let _ = &__pv; \
                     match __k.as_str() {{ \
                       {payload_arms} \
                       other => ::std::result::Result::Err(\
                         <D::Error as ::serde::de::Error>::custom(format!(\
                         \"unknown variant `{{}}` of `{ty}`\", other))), \
                     }} \
                   }}, \
                   other => ::std::result::Result::Err(\
                     <D::Error as ::serde::de::Error>::custom(format!(\
                     \"expected string or single-key map for enum `{ty}`, got {{}}\", \
                     other.kind()))), \
                 }}"
            )
        }
    };
    format!(
        "{header} {{ fn deserialize<D: ::serde::Deserializer<'de>>(__d: D) -> \
         ::std::result::Result<Self, D::Error> {{ \
           let __v = ::serde::Deserializer::take_value(__d)?; let _ = &__v; {body} }} }}",
        header = de_impl_header(input)
    )
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().expect("serde_derive: generated Deserialize impl parses")
}
