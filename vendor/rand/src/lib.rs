//! Minimal `rand`-compatible deterministic PRNG.
//!
//! Vendored so the workspace builds without network access. Provides the
//! subset of the rand 0.8 API this repository uses: `SeedableRng::
//! seed_from_u64`, `Rng::{gen_bool, gen_range, gen}` over half-open
//! integer ranges, and `rngs::StdRng`. The generator is xoshiro256**
//! seeded via SplitMix64 — statistically solid for workload generation
//! and crash-point sampling, not cryptographic. Streams are stable across
//! releases of this vendored crate (tests rely on fixed seeds).

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait UniformSample: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)`. Panics if the range is empty.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Multiply-shift rejection-free mapping; bias is < 2^-64
                // per draw, irrelevant for workload generation.
                let hi64 = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(hi64 as $t)
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_uniform_signed!(i32 => u32, i64 => u64, isize => usize);

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The user-facing random-value interface.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]");
        f64::generate(self) < p
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u32..100);
            assert!(w < 100);
            let x = r.gen_range(1..4usize);
            assert!((1..4).contains(&x));
        }
    }

    #[test]
    fn gen_bool_roughly_matches_p() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "p=0.25 but observed {frac}");
    }
}
