//! Minimal `criterion`-compatible benchmark harness.
//!
//! Vendored so the workspace builds without network access. Provides the
//! API surface the benches in this repository use: `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `Bencher::iter`
//! and `iter_batched`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! calibrated wall-clock loop printing mean time per iteration — no
//! statistics, plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Benchmark named only by its parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }

    /// Benchmark with a function name and a parameter.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Batching granularity for `iter_batched` (ignored: every batch is one
/// iteration here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by the `iter*` calls.
    mean_ns: f64,
    sample_size: usize,
}

impl Bencher {
    /// Measure `f` over a calibrated number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and calibrate so one sample is neither trivial nor slow.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(20);
        let iters = ((target.as_nanos() / once.as_nanos()).clamp(1, 10_000)) as usize;
        let samples = self.sample_size.clamp(1, 30);
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let per = t.elapsed().as_nanos() as f64 / iters as f64;
            if per < best {
                best = per;
            }
        }
        self.mean_ns = best;
    }

    /// Measure `routine` with per-iteration setup excluded from timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let samples = self.sample_size.clamp(1, 30);
        let mut total = Duration::ZERO;
        let mut count = 0u32;
        for _ in 0..samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
            count += 1;
        }
        self.mean_ns = total.as_nanos() as f64 / count.max(1) as f64;
    }
}

fn humanize(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(group: &str, name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { mean_ns: 0.0, sample_size };
    f(&mut b);
    let label = if group.is_empty() { name.to_string() } else { format!("{group}/{name}") };
    println!("{label:<60} time: {}", humanize(b.mean_ns));
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<N: fmt::Display, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &name.to_string(), self.sample_size, &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", name, 10, &mut f);
        self
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Produce a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
