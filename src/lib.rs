//! # deepmc-repro — reproduction of *Understanding and Detecting Deep
//! Memory Persistency Bugs in NVM Programs with DeepMC* (PPoPP'22)
//!
//! This facade crate re-exports the workspace so downstream users (and the
//! `examples/`) get one coherent API:
//!
//! * [`pir`] — the persistency IR standing in for LLVM IR
//! * [`analysis`] — CFG / call graph / DSA / trace collection
//! * [`models`] — persistency model specs and the rule catalog
//! * [`runtime`] — the simulated NVM substrate (pool, heap, tx, crash,
//!   shadow memory, happens-before detection)
//! * [`toolkit`] — DeepMC itself: static + dynamic checkers
//! * [`interp`] — a PIR interpreter over the runtime
//! * [`corpus`] — the evaluation corpus with ground truth
//! * [`apps`] — mini-Memcached / Redis / NStore and workload generators
//!
//! ## Thirty-second tour
//!
//! ```
//! use deepmc_repro::prelude::*;
//!
//! let report = deepmc_repro::toolkit::check_source(
//!     r#"
//! module demo
//! struct rec { a: i64 }
//! fn main() {
//! entry:
//!   %r = palloc rec
//!   store %r.a, 1
//!   ret
//! }
//! "#,
//!     &DeepMcConfig::new(PersistencyModel::Strict),
//! )
//! .unwrap();
//! assert_eq!(report.warnings.len(), 1); // the store is never flushed
//! ```

pub use deepmc as toolkit;
pub use deepmc_analysis as analysis;
pub use deepmc_corpus as corpus;
pub use deepmc_interp as interp;
pub use deepmc_models as models;
pub use deepmc_pir as pir;
pub use nvm_apps as apps;
pub use nvm_runtime as runtime;

/// The names almost every user needs.
pub mod prelude {
    pub use deepmc::{DeepMcConfig, Report, StaticChecker, Warning};
    pub use deepmc_models::{BugClass, PersistencyModel, Severity};
    pub use deepmc_pir::{parse, print, Module};
    pub use nvm_runtime::{CrashPolicy, PmemHeap, PmemPool, PoolConfig, TxManager};
}
