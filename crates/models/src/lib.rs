//! # deepmc-models — persistency model specifications and the rule catalog
//!
//! Memory persistency models (Pelley et al., ISCA'14) specify the order in
//! which persistent stores become durable relative to program order:
//!
//! * **Strict** — every persistent store is made durable in program order
//!   (flush + barrier after each store). Easy to reason about, slow.
//!   Used by PMDK and NVM-Direct.
//! * **Epoch** — stores within an epoch may persist in any order; epochs
//!   are ordered by persist barriers at their boundaries. Used by PMFS and
//!   Mnemosyne.
//! * **Strand** — epochs ("strands") may additionally persist concurrently
//!   with each other when they have no WAW/RAW data dependence.
//!
//! This crate encodes the models, the deep-persistency-bug taxonomy of the
//! paper's study (§3), and the checking rules of Tables 4 and 5 as data the
//! checker and the report tooling share.

pub mod bugclass;
pub mod model;
pub mod rules;

pub use bugclass::{BugClass, Severity};
pub use model::PersistencyModel;
pub use rules::{Rule, RULES};
