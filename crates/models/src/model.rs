//! The three memory persistency models (paper §2.2).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The persistency model a program declares it implements. DeepMC users
/// pass this as a compile-time flag (`-strict`, `-epoch`, `-strand`,
/// paper §4.5); the checker selects its violation rules from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PersistencyModel {
    /// All persistent stores become durable in program order.
    Strict,
    /// Stores within an epoch are unordered; epochs are ordered by barriers.
    Epoch,
    /// Epoch, plus independent strands may persist concurrently.
    Strand,
}

impl PersistencyModel {
    /// The compiler-flag spelling (`-strict` etc.).
    pub fn flag(self) -> &'static str {
        match self {
            PersistencyModel::Strict => "-strict",
            PersistencyModel::Epoch => "-epoch",
            PersistencyModel::Strand => "-strand",
        }
    }

    /// Epoch-based models treat epoch regions as persist units.
    pub fn has_epochs(self) -> bool {
        matches!(self, PersistencyModel::Epoch | PersistencyModel::Strand)
    }

    /// Only the strand model permits concurrent persists between strands
    /// (and therefore needs the dynamic dependence check).
    pub fn has_strands(self) -> bool {
        matches!(self, PersistencyModel::Strand)
    }

    pub const ALL: [PersistencyModel; 3] =
        [PersistencyModel::Strict, PersistencyModel::Epoch, PersistencyModel::Strand];
}

impl fmt::Display for PersistencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistencyModel::Strict => write!(f, "strict"),
            PersistencyModel::Epoch => write!(f, "epoch"),
            PersistencyModel::Strand => write!(f, "strand"),
        }
    }
}

impl FromStr for PersistencyModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim_start_matches('-') {
            "strict" => Ok(PersistencyModel::Strict),
            "epoch" => Ok(PersistencyModel::Epoch),
            "strand" => Ok(PersistencyModel::Strand),
            other => Err(format!("unknown persistency model `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_roundtrip() {
        for m in PersistencyModel::ALL {
            assert_eq!(m.flag().parse::<PersistencyModel>().unwrap(), m);
            assert_eq!(m.to_string().parse::<PersistencyModel>().unwrap(), m);
        }
    }

    #[test]
    fn model_capabilities() {
        assert!(!PersistencyModel::Strict.has_epochs());
        assert!(PersistencyModel::Epoch.has_epochs());
        assert!(PersistencyModel::Strand.has_epochs());
        assert!(PersistencyModel::Strand.has_strands());
        assert!(!PersistencyModel::Epoch.has_strands());
    }

    #[test]
    fn unknown_model_rejected() {
        assert!("lazy".parse::<PersistencyModel>().is_err());
    }
}
