//! The deep-persistency-bug taxonomy from the paper's study (§3, Table 1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a bug breaks crash consistency or "only" performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Persistency *model violation*: crash consistency is at risk.
    Violation,
    /// *Performance bug*: unnecessary persistent operations.
    Performance,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Violation => write!(f, "model violation"),
            Severity::Performance => write!(f, "performance"),
        }
    }
}

/// The bug classes of Table 1 (plus the strand dependence class checked
/// dynamically). Each maps to one checking rule in Table 4 or Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BugClass {
    // --- persistency model violations (Table 4) --------------------------
    /// Several unrelated writes made durable by a single barrier where the
    /// model demands per-store (strict) or per-unit (epoch) durability.
    MultipleWritesAtOnce,
    /// A persistent write never covered by a flush (or transaction log)
    /// before it must be durable.
    UnflushedWrite,
    /// A flush with no ordering barrier before the next persistent
    /// operation / transaction.
    MissingPersistBarrier,
    /// An inner (nested) transaction ends without a persist barrier, so its
    /// writes are not ordered before the outer transaction's.
    MissingBarrierNestedTx,
    /// The durability the program achieves does not match the unit of
    /// atomicity the programmer intended: a write is persisted only in a
    /// later persist unit, or one object's fields are persisted across
    /// several consecutive epochs.
    SemanticMismatch,
    /// Two concurrent strands have a WAW/RAW dependence (strand model).
    InterStrandDependency,

    // --- performance bugs (Table 5) --------------------------------------
    /// Writing back data that was never modified (including flushing a
    /// whole object when only some fields were written).
    UnmodifiedWriteback,
    /// Flushing the same (already written-back, unmodified-since) data
    /// again.
    RedundantWriteback,
    /// Persisting the same object multiple times within one transaction.
    RedundantPersistInTx,
    /// A durable transaction that contains no persistent write at all.
    EmptyDurableTx,
}

impl BugClass {
    /// Severity per the study's two-way split.
    pub fn severity(self) -> Severity {
        use BugClass::*;
        match self {
            MultipleWritesAtOnce
            | UnflushedWrite
            | MissingPersistBarrier
            | MissingBarrierNestedTx
            | SemanticMismatch
            | InterStrandDependency => Severity::Violation,
            UnmodifiedWriteback | RedundantWriteback | RedundantPersistInTx | EmptyDurableTx => {
                Severity::Performance
            }
        }
    }

    /// The row label used in Table 1 of the paper.
    pub fn table1_label(self) -> &'static str {
        use BugClass::*;
        match self {
            MultipleWritesAtOnce => "Multiple writes made durable at once",
            UnflushedWrite => "Unflushed write",
            MissingPersistBarrier => "Missing persist barriers",
            MissingBarrierNestedTx => "Missing persist barriers in nested transactions",
            SemanticMismatch => "Mismatch between program semantics and model",
            InterStrandDependency => "Data dependencies between strands",
            UnmodifiedWriteback => "Flush an unmodified object",
            RedundantWriteback => "Multiple flushes to a persistent object",
            RedundantPersistInTx => "Persist the same object multiple times in a transaction",
            EmptyDurableTx => "Durable transaction without persistent writes",
        }
    }

    /// All classes, Table 1 row order.
    pub const ALL: [BugClass; 10] = [
        BugClass::MultipleWritesAtOnce,
        BugClass::UnflushedWrite,
        BugClass::MissingPersistBarrier,
        BugClass::MissingBarrierNestedTx,
        BugClass::SemanticMismatch,
        BugClass::InterStrandDependency,
        BugClass::UnmodifiedWriteback,
        BugClass::RedundantWriteback,
        BugClass::RedundantPersistInTx,
        BugClass::EmptyDurableTx,
    ];
}

impl fmt::Display for BugClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table1_label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_split_matches_study() {
        let violations =
            BugClass::ALL.iter().filter(|c| c.severity() == Severity::Violation).count();
        let perf = BugClass::ALL.iter().filter(|c| c.severity() == Severity::Performance).count();
        assert_eq!(violations, 6);
        assert_eq!(perf, 4);
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            BugClass::ALL.iter().map(|c| c.table1_label()).collect();
        assert_eq!(labels.len(), BugClass::ALL.len());
    }

    #[test]
    fn display_uses_label() {
        assert_eq!(BugClass::UnflushedWrite.to_string(), "Unflushed write");
    }
}
