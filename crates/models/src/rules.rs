//! The checking-rule catalog: Tables 4 and 5 of the paper, as data.
//!
//! Each rule ties a bug class to the persistency model(s) it applies to and
//! carries the formal statement from the paper. The static and dynamic
//! checkers implement these rules; the `repro-rules` binary prints this
//! table.

use crate::bugclass::{BugClass, Severity};
use crate::model::PersistencyModel;

/// How a rule is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Analysis {
    Static,
    Dynamic,
}

/// One checking rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    pub class: BugClass,
    /// Models this rule applies to; `None` means every model
    /// (performance rules "manifest across persistency models", §3.3).
    pub models: Option<&'static [PersistencyModel]>,
    pub analysis: Analysis,
    /// The formal statement from Table 4 / Table 5.
    pub statement: &'static str,
}

impl Rule {
    pub fn severity(&self) -> Severity {
        self.class.severity()
    }

    /// Does the rule apply when checking under `model`?
    pub fn applies_to(&self, model: PersistencyModel) -> bool {
        self.models.is_none_or(|ms| ms.contains(&model))
    }
}

use PersistencyModel::{Epoch, Strand, Strict};

const STRICT_ONLY: &[PersistencyModel] = &[Strict];
const STRICT_EPOCH: &[PersistencyModel] = &[Strict, Epoch, Strand];
const EPOCHY: &[PersistencyModel] = &[Epoch, Strand];
const STRAND_ONLY: &[PersistencyModel] = &[Strand];

/// The full catalog (Table 4 then Table 5).
pub const RULES: &[Rule] = &[
    // --- Table 4: persistency model violations ---------------------------
    Rule {
        class: BugClass::UnflushedWrite,
        models: Some(STRICT_EPOCH),
        analysis: Analysis::Static,
        statement: "An operation W writing to addr A1 should be followed by a flush F at \
                    addr A2, where A1 ⊆ A2 (strict: before the next persistent store; \
                    epoch: before the end of its epoch), or be undo-logged in the \
                    enclosing transaction.",
    },
    Rule {
        class: BugClass::MultipleWritesAtOnce,
        models: Some(STRICT_ONLY),
        analysis: Analysis::Static,
        statement: "A persist barrier P should be preceded by only one write W since the \
                    previous barrier.",
    },
    Rule {
        class: BugClass::MissingPersistBarrier,
        models: Some(STRICT_EPOCH),
        analysis: Analysis::Static,
        statement: "For any consecutive disjoint persist units E1 and E2 (stores under \
                    strict, epochs under epoch persistency), there should be a persist \
                    barrier P at the end of E1.",
    },
    Rule {
        class: BugClass::MissingBarrierNestedTx,
        models: Some(EPOCHY),
        analysis: Analysis::Static,
        statement: "For any epoch/transaction E1 nested inside E2, there should be a \
                    persist barrier P at the end of E1 (inner transactions persist \
                    before outer ones).",
    },
    Rule {
        class: BugClass::SemanticMismatch,
        models: Some(STRICT_EPOCH),
        analysis: Analysis::Static,
        statement: "For any consecutive persist units E1 and E2 writing to addresses A1 \
                    and A2 with A1 ∈ O1, A2 ∈ O2: O1 ≠ O2 — one object's durability \
                    must not be split across persist units the programmer meant to be \
                    atomic.",
    },
    Rule {
        class: BugClass::InterStrandDependency,
        models: Some(STRAND_ONLY),
        analysis: Analysis::Dynamic,
        statement: "For any concurrent strands S1 and S2 operating on addrs A1 and A2 \
                    respectively, A1 ∩ A2 = ∅ (no WAW or RAW dependence between \
                    strands).",
    },
    // --- Table 5: performance bugs (model independent) -------------------
    Rule {
        class: BugClass::UnmodifiedWriteback,
        models: None,
        analysis: Analysis::Static,
        statement: "For operation F flushing addr A1 there should be a preceding \
                    operation W writing to addr A2 with A1 = A2 — only modified data \
                    is written back (field-sensitive).",
    },
    Rule {
        class: BugClass::RedundantWriteback,
        models: None,
        analysis: Analysis::Static,
        statement: "For any two flush operations F1 and F2 in a persist unit flushing \
                    addresses A1 and A2 respectively: A1 ∩ A2 = ∅ unless the data was \
                    re-modified in between.",
    },
    Rule {
        class: BugClass::RedundantPersistInTx,
        models: None,
        analysis: Analysis::Static,
        statement: "Within one durable transaction, the same persistent object should \
                    not be persisted multiple times.",
    },
    Rule {
        class: BugClass::EmptyDurableTx,
        models: None,
        analysis: Analysis::Static,
        statement: "Every durable transaction should contain at least one persistent \
                    write to NVM.",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_static_class_has_a_rule() {
        for class in BugClass::ALL {
            assert!(RULES.iter().any(|r| r.class == class), "no rule for {class:?}");
        }
    }

    #[test]
    fn strand_rule_is_dynamic() {
        let r = RULES.iter().find(|r| r.class == BugClass::InterStrandDependency).unwrap();
        assert_eq!(r.analysis, Analysis::Dynamic);
        assert!(r.applies_to(PersistencyModel::Strand));
        assert!(!r.applies_to(PersistencyModel::Strict));
    }

    #[test]
    fn performance_rules_apply_to_all_models() {
        for r in RULES.iter().filter(|r| r.severity() == Severity::Performance) {
            for m in PersistencyModel::ALL {
                assert!(r.applies_to(m), "{:?} must apply to {m}", r.class);
            }
        }
    }

    #[test]
    fn multiple_writes_rule_is_strict_only() {
        let r = RULES.iter().find(|r| r.class == BugClass::MultipleWritesAtOnce).unwrap();
        assert!(r.applies_to(PersistencyModel::Strict));
        assert!(!r.applies_to(PersistencyModel::Epoch));
    }
}
