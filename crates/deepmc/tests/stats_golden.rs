//! Golden-file and end-to-end tests for the `deepmc stats` observatory.
//!
//! * `stats show` and `stats diff` output is pinned byte-for-byte
//!   against golden files (regenerate with `UPDATE_OBS_GOLDEN=1 cargo
//!   test -p deepmc --test stats_golden`).
//! * The regression gate is exercised through the real pipeline: records
//!   appended to a ledger file with `deepmc_obs::ledger::append`, then
//!   judged by the `deepmc stats regress` CLI — a planted 2× slowdown
//!   must exit nonzero, identical runs must exit zero.
//! * The gate's verdict is worker-count-independent: the same latency
//!   stream recorded from 1 and from 4 attached workers merges to
//!   identical histograms, records, and verdicts.
//! * A ledger with a torn trailing line (interrupted append) still
//!   serves `stats show`; an interior tampered record is rejected
//!   without poisoning its neighbors.

use deepmc::stats;
use deepmc_obs::ledger::{self, LedgerRecord};
use deepmc_obs::{CounterMetric, PhaseMetric, Recorder};
use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_deepmc");
const SHOW_GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/stats_show.txt");
const DIFF_GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/stats_diff.txt");

/// Deterministic fixture record — everything the renderers consume,
/// nothing wall-clock-derived.
fn record(build: &str, phases: &[(&str, u64, u64, u64, u64)]) -> LedgerRecord {
    LedgerRecord {
        schema_version: deepmc_obs::LEDGER_SCHEMA_VERSION,
        tool: "deepmc check".into(),
        build_id: build.into(),
        config_digest: "0123456789abcdef".into(),
        exit_code: 0,
        wall_us: phases.iter().map(|p| p.2).sum(),
        workers: 1,
        counters: vec![
            CounterMetric { name: "check.roots".into(), value: 6 },
            CounterMetric { name: "check.traces".into(), value: 24 },
        ],
        phases: phases
            .iter()
            .map(|(name, count, total, p50, p99)| PhaseMetric {
                name: (*name).into(),
                count: *count,
                total_us: *total,
                p50_us: *p50,
                p90_us: (*p50 + *p99) / 2,
                p99_us: *p99,
                max_us: *p99,
            })
            .collect(),
        stacks: vec![
            deepmc_obs::StackSample { stack: "total".into(), self_us: 120 },
            deepmc_obs::StackSample { stack: "total;check.root".into(), self_us: 4180 },
        ],
    }
}

fn baseline() -> LedgerRecord {
    record(
        "v1",
        &[
            ("check.root", 6, 4300, 700, 1400),
            ("pool.job", 6, 4400, 720, 1500),
            ("total", 1, 4700, 4700, 4700),
        ],
    )
}

fn slower() -> LedgerRecord {
    record(
        "v2",
        &[
            ("check.root", 6, 8600, 1400, 2800),
            ("pool.job", 6, 8800, 1440, 3000),
            ("total", 1, 9400, 9400, 9400),
        ],
    )
}

fn check_golden(path: &str, got: &str, what: &str) {
    if std::env::var("UPDATE_OBS_GOLDEN").is_ok() {
        std::fs::write(path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(path).expect(
        "golden file exists — regenerate with UPDATE_OBS_GOLDEN=1 \
         cargo test -p deepmc --test stats_golden",
    );
    assert_eq!(
        got, want,
        "{what} output changed; regenerate with UPDATE_OBS_GOLDEN=1 if intentional"
    );
}

#[test]
fn show_output_matches_golden() {
    check_golden(SHOW_GOLDEN, &stats::render_show(&baseline()), "stats show");
}

#[test]
fn diff_output_matches_golden() {
    check_golden(DIFF_GOLDEN, &stats::render_diff(&baseline(), &slower(), 25.0), "stats diff");
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("deepmc-stats-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn regress_cli(baseline: &Path, current: &Path) -> (i32, String) {
    let out = Command::new(BIN)
        .args([
            "stats",
            "regress",
            "--baseline",
            &baseline.to_string_lossy(),
            "--ledger",
            &current.to_string_lossy(),
        ])
        .output()
        .expect("spawn deepmc stats regress");
    (out.status.code().expect("exit code"), String::from_utf8_lossy(&out.stdout).into_owned())
}

/// The CI gate end to end: appended ledger files in, verdict out.
#[test]
fn regress_cli_catches_planted_2x_slowdown() {
    let dir = TempDir::new("regress");
    let base_path = dir.path("baseline.jsonl");
    let cur_path = dir.path("current.jsonl");
    ledger::append(&base_path, &baseline()).expect("append baseline");
    ledger::append(&cur_path, &slower()).expect("append slow current");

    let (code, report) = regress_cli(&base_path, &cur_path);
    assert_eq!(code, 1, "2x slowdown must fail the gate:\n{report}");
    assert!(report.contains("verdict: REGRESSED"), "{report}");
    assert!(report.contains("REGRESSION check.root"), "{report}");

    // Identical record appended after the slow one: regress picks the
    // latest record, so the gate goes green again.
    ledger::append(&cur_path, &baseline()).expect("append recovered current");
    let (code, report) = regress_cli(&base_path, &cur_path);
    assert_eq!(code, 0, "identical runs must pass the gate:\n{report}");
    assert!(report.contains("verdict: ok"), "{report}");
}

/// Record one fixed latency stream from `shards` attached worker
/// threads, fanned out round-robin, and build a ledger record from the
/// merged data.
fn record_sharded(shards: usize) -> LedgerRecord {
    // A fixed, skewed latency population for one phase family.
    let samples: Vec<u64> = (0..96u64).map(|i| 40 + (i * i * 7) % 3000).collect();
    let rec = Recorder::new();
    std::thread::scope(|scope| {
        for w in 0..shards {
            let rec = &rec;
            let samples = &samples;
            scope.spawn(move || {
                let _attach = rec.attach(w as u32);
                for v in samples.iter().skip(w).step_by(shards) {
                    deepmc_obs::latency("check.root", *v);
                }
            });
        }
    });
    let data = rec.finish();
    LedgerRecord::from_data("deepmc check", "sharded", "cafe", 0, &data)
}

/// The regress verdict must not depend on how many workers recorded the
/// latencies: merged histograms — and therefore percentiles, records,
/// and verdicts — are shard-order-independent.
#[test]
fn regress_verdict_is_identical_at_1_and_4_workers() {
    let r1 = record_sharded(1);
    let r4 = record_sharded(4);
    // The records agree on everything except the recorded worker count.
    let p1 = r1.phase("check.root").expect("phase recorded");
    let p4 = r4.phase("check.root").expect("phase recorded");
    assert_eq!(p1, p4, "merged percentiles differ across shard counts");
    assert_eq!(r1.counters, r4.counters);

    let base = baseline();
    let v1 = stats::regress(&base, &r1, &stats::RegressPolicy::default());
    let v4 = stats::regress(&base, &r4, &stats::RegressPolicy::default());
    assert_eq!(v1.failed, v4.failed, "verdict depends on worker count");
    assert_eq!(
        v1.report.replace("sharded", "X"),
        v4.report.replace("sharded", "X"),
        "regress report depends on worker count"
    );
}

/// Durability: a torn trailing line is tolerated, interior tampering is
/// rejected without dropping the rest of the ledger.
#[test]
fn stats_survives_torn_and_tampered_ledgers() {
    let dir = TempDir::new("torn");
    let path = dir.path("ledger.jsonl");
    ledger::append(&path, &baseline()).expect("append 1");
    ledger::append(&path, &slower()).expect("append 2");

    // Simulate a crash mid-append: half a record, no trailing newline.
    let mut bytes = std::fs::read(&path).expect("read ledger");
    let tail: Vec<u8> = record("v3", &[]).to_line().into_bytes();
    bytes.extend_from_slice(&tail[..tail.len() / 2]);
    std::fs::write(&path, &bytes).expect("tear ledger");

    let loaded = ledger::load(&path).expect("torn ledger still loads");
    assert!(loaded.torn, "torn tail detected");
    assert_eq!(loaded.records.len(), 2, "intact records survive the torn tail");

    let out = Command::new(BIN)
        .args(["stats", "show", "--ledger", &path.to_string_lossy()])
        .output()
        .expect("spawn deepmc stats show");
    assert_eq!(out.status.code(), Some(0), "stats show fails on a torn ledger");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("build: v2"), "latest intact record shown:\n{stdout}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("torn"),
        "torn tail is reported on stderr"
    );

    // Tamper with the *first* record's payload: its fingerprint no
    // longer matches, so it is rejected — but the second record and the
    // (re-appended, terminated) third remain served.
    let text = std::fs::read_to_string(&path).expect("read ledger");
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    lines.pop(); // drop the torn tail
    lines[1] = lines[1].replace("\"v1\"", "\"evil\"");
    std::fs::write(&path, lines.join("\n") + "\n").expect("tamper ledger");

    let loaded = ledger::load(&path).expect("tampered ledger still loads");
    assert_eq!(loaded.rejected, 1, "tampered record rejected");
    assert!(!loaded.torn);
    assert_eq!(loaded.records.len(), 1);
    assert_eq!(loaded.records[0].build_id, "v2", "neighbor record unharmed");
}
