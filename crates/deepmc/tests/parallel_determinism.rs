//! Property test: the parallel checker is observationally identical to
//! the sequential one.
//!
//! For randomly generated call-heavy programs (many analysis roots
//! sharing randomly buggy callees — the shape the work-stealing fan-out
//! and the shared memo table actually have to get right), checking with
//! `--jobs 1` and with 4–8 workers must produce
//!
//! * byte-identical rendered and JSON reports, and
//! * byte-identical incremental-cache directories (same file names, same
//!   contents — the claim protocol must leave no residue and the stored
//!   entries must not depend on which worker computed them).
//!
//! A third, instrumented leg runs the same parallel check with a
//! `deepmc-obs` recorder attached: the observability layer must not
//! perturb either artifact.

use deepmc::{AnalysisCache, DeepMcConfig, StaticChecker};
use deepmc_analysis::Program;
use deepmc_models::PersistencyModel;
use proptest::prelude::*;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One generated callee: writes a field and either persists it (clean)
/// or forgets to (buggy — one UnflushedWrite per reaching root).
#[derive(Debug, Clone)]
struct Callee {
    buggy: bool,
}

/// One generated root: calls a non-empty sequence of callees (repeats
/// allowed — the memo table must replay summaries, not deduplicate
/// call sites).
#[derive(Debug, Clone)]
struct Root {
    calls: Vec<usize>,
}

#[derive(Debug, Clone)]
struct GenProgram {
    callees: Vec<Callee>,
    roots: Vec<Root>,
}

/// The vendored proptest has no `prop_flat_map`, so callee indices are
/// generated as raw `u64`s and reduced modulo the callee count here.
fn gen_program() -> impl Strategy<Value = GenProgram> {
    let callees = proptest::collection::vec(any::<bool>().prop_map(|buggy| Callee { buggy }), 2..6);
    let roots = proptest::collection::vec(
        proptest::collection::vec(any::<u64>(), 1..5)
            .prop_map(|calls| Root { calls: calls.into_iter().map(|c| c as usize).collect() }),
        2..6,
    );
    (callees, roots).prop_map(|(callees, roots)| {
        let n = callees.len();
        let roots = roots
            .into_iter()
            .map(|r| Root { calls: r.calls.into_iter().map(|c| c % n).collect() })
            .collect();
        GenProgram { callees, roots }
    })
}

/// Render the generated shape as PIR source. Every root allocates its
/// own object and passes it to each callee it calls.
fn pir(g: &GenProgram) -> String {
    let mut src = String::from("module gen\nfile \"gen.c\"\nstruct s { a: i64, b: i64 }\n");
    for (i, c) in g.callees.iter().enumerate() {
        writeln!(src, "fn callee_{i}(%p: ptr s) {{\nentry:").unwrap();
        writeln!(src, "  store %p.a, {}", i + 1).unwrap();
        if !c.buggy {
            writeln!(src, "  flush %p.a\n  fence").unwrap();
        }
        writeln!(src, "  ret\n}}").unwrap();
    }
    // Every call site gets its own allocation: a clean callee's flush
    // must not retroactively persist an earlier buggy store to a shared
    // object, which would invalidate the warning-count model below.
    for (r, root) in g.roots.iter().enumerate() {
        writeln!(src, "fn root_{r}() {{\nentry:").unwrap();
        for (j, c) in root.calls.iter().enumerate() {
            writeln!(src, "  %x{j} = palloc s\n  call callee_{c}(%x{j})").unwrap();
        }
        writeln!(src, "  ret\n}}").unwrap();
    }
    src
}

/// Sorted (file name, contents) snapshot of a cache directory.
fn dir_snapshot(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("cache dir exists")
        .map(|e| {
            let e = e.expect("dir entry");
            (e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).expect("read"))
        })
        .collect();
    out.sort();
    out
}

/// Callees no root calls — each is a call-graph root of its own and
/// counts toward `check.roots`.
fn uncalled(g: &GenProgram) -> usize {
    let called: std::collections::HashSet<usize> =
        g.roots.iter().flat_map(|r| r.calls.iter().copied()).collect();
    (0..g.callees.len()).filter(|i| !called.contains(i)).count()
}

static CASE: AtomicUsize = AtomicUsize::new(0);

/// Filter the default panic banner for chaos-injected panics so the
/// chaos proptest below doesn't spray one backtrace notice per injected
/// panic; every other panic still prints normally.
fn quiet_chaos_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&'static str>().copied());
            if msg.is_some_and(|m| m.contains("chaos:")) {
                return;
            }
            prev(info);
        }));
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_check_equals_sequential(g in gen_program(), jobs in 4usize..=8) {
        let src = pir(&g);
        let module = deepmc_pir::parse(&src).expect("generated PIR parses");
        let program = Program::single(module);
        let checker = StaticChecker::new(DeepMcConfig::new(PersistencyModel::Strict));

        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let base = std::env::temp_dir().join(format!("deepmc-pd-{}-{case}", std::process::id()));
        let dir_seq = base.join("seq");
        let dir_par = base.join("par");
        let dir_obs = base.join("obs");

        let cache_seq = AnalysisCache::open(&dir_seq);
        let cache_par = AnalysisCache::open(&dir_par);
        let cache_obs = AnalysisCache::open(&dir_obs);
        let (rep_seq, _) = checker.check_program_with_jobs(&program, Some(&cache_seq), 1);
        let (rep_par, _) = checker.check_program_with_jobs(&program, Some(&cache_par), jobs);
        // Instrumented leg: same parallel run with a recorder attached.
        let rec = deepmc_obs::Recorder::new();
        let (rep_obs, _) = {
            let _attach = rec.attach(0);
            let _total = deepmc_obs::span("total");
            checker.check_program_with_jobs(&program, Some(&cache_obs), jobs)
        };
        let obs_data = rec.finish();

        let text_eq = rep_seq.to_string() == rep_par.to_string();
        let json_eq = serde_json::to_string(&rep_seq).unwrap()
            == serde_json::to_string(&rep_par).unwrap();
        let cache_eq = dir_snapshot(&dir_seq) == dir_snapshot(&dir_par);
        let obs_text_eq = rep_seq.to_string() == rep_obs.to_string();
        let obs_cache_eq = dir_snapshot(&dir_seq) == dir_snapshot(&dir_obs);
        let _ = std::fs::remove_dir_all(&base);

        prop_assert!(text_eq, "jobs={jobs}: rendered report differs from sequential");
        prop_assert!(json_eq, "jobs={jobs}: JSON report differs from sequential");
        prop_assert!(cache_eq, "jobs={jobs}: cache directory differs from sequential");
        prop_assert!(obs_text_eq, "jobs={jobs}: instrumented report differs from sequential");
        prop_assert!(obs_cache_eq, "jobs={jobs}: instrumented cache dir differs from sequential");
        prop_assert!(
            obs_data.counter("check.roots") == g.roots.len() as u64 + uncalled(&g) as u64,
            "instrumented run recorded every analysis root"
        );

        // Sanity: the generator must exercise the interesting case often
        // enough — every (root, distinct buggy callee) pair is one
        // warning; repeat calls dedup on (class, file, line, root). A
        // buggy callee no root calls is a call-graph root of its own and
        // warns once under itself.
        let called: std::collections::HashSet<usize> =
            g.roots.iter().flat_map(|r| r.calls.iter().copied()).collect();
        let expected: usize = g
            .roots
            .iter()
            .map(|r| {
                r.calls
                    .iter()
                    .filter(|&&c| g.callees[c].buggy)
                    .collect::<std::collections::HashSet<_>>()
                    .len()
            })
            .sum::<usize>()
            + g.callees
                .iter()
                .enumerate()
                .filter(|(i, c)| c.buggy && !called.contains(i))
                .count();
        prop_assert!(
            rep_seq.warnings.len() == expected,
            "one UnflushedWrite per (root, buggy callee) pair: expected {expected}\n{src}\n{rep_seq}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Chaos leg: inject panics into a random subset of the generated
    /// roots. The run must *complete* — every surviving root's warnings
    /// present, one `RootFailure` per panicked root, `degraded` set —
    /// and the degraded report must stay byte-identical between jobs=1
    /// and jobs=4..8 (panic isolation must not make the outcome
    /// schedule-dependent).
    #[test]
    fn chaos_panics_degrade_deterministically(
        g in gen_program(),
        jobs in 4usize..=8,
        mask in any::<u64>(),
    ) {
        quiet_chaos_panics();
        let src = pir(&g);
        let module = deepmc_pir::parse(&src).expect("generated PIR parses");
        let program = Program::single(module);
        let panicked: Vec<usize> =
            (0..g.roots.len()).filter(|r| mask & (1u64 << r) != 0).collect();
        let mut config = DeepMcConfig::new(PersistencyModel::Strict);
        for &r in &panicked {
            config = config.with_chaos_panic(format!("root_{r}"));
        }
        let checker = StaticChecker::new(config);

        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let base = std::env::temp_dir().join(format!("deepmc-chaos-{}-{case}", std::process::id()));
        let dir_seq = base.join("seq");
        let dir_par = base.join("par");
        let cache_seq = AnalysisCache::open(&dir_seq);
        let cache_par = AnalysisCache::open(&dir_par);
        let (rep_seq, _) = checker.check_program_with_jobs(&program, Some(&cache_seq), 1);
        let (rep_par, _) = checker.check_program_with_jobs(&program, Some(&cache_par), jobs);

        let text_eq = rep_seq.to_string() == rep_par.to_string();
        let json_eq = serde_json::to_string(&rep_seq).unwrap()
            == serde_json::to_string(&rep_par).unwrap();
        let cache_eq = dir_snapshot(&dir_seq) == dir_snapshot(&dir_par);
        let _ = std::fs::remove_dir_all(&base);

        prop_assert!(text_eq, "jobs={jobs}: degraded rendered report differs from sequential");
        prop_assert!(json_eq, "jobs={jobs}: degraded JSON report differs from sequential");
        prop_assert!(cache_eq, "jobs={jobs}: cache directory differs under chaos");

        // Exactly one RootFailure per panicked root, in root order, each
        // carrying the injected payload.
        prop_assert!(
            rep_seq.failures.len() == panicked.len(),
            "expected {} RootFailures, got {}\n{rep_seq}",
            panicked.len(),
            rep_seq.failures.len()
        );
        for (f, &r) in rep_seq.failures.iter().zip(&panicked) {
            prop_assert!(f.root == format!("root_{r}"), "failure order: {} vs root_{r}", f.root);
            prop_assert!(f.panic.contains("chaos:"), "payload lost: {}", f.panic);
        }
        prop_assert!(rep_seq.degraded == !panicked.is_empty(), "degraded iff K > 0");

        // Surviving roots still contribute every warning they would have:
        // N−K roots' distinct-buggy-callee pairs plus uncalled buggy
        // callees (their own call-graph roots, never chaos targets).
        let called: std::collections::HashSet<usize> =
            g.roots.iter().flat_map(|r| r.calls.iter().copied()).collect();
        let expected: usize = g
            .roots
            .iter()
            .enumerate()
            .filter(|(r, _)| !panicked.contains(r))
            .map(|(_, root)| {
                root.calls
                    .iter()
                    .filter(|&&c| g.callees[c].buggy)
                    .collect::<std::collections::HashSet<_>>()
                    .len()
            })
            .sum::<usize>()
            + g.callees
                .iter()
                .enumerate()
                .filter(|(i, c)| c.buggy && !called.contains(i))
                .count();
        prop_assert!(
            rep_seq.warnings.len() == expected,
            "surviving roots keep their warnings: expected {expected}\n{src}\n{rep_seq}"
        );
    }

    /// Budget leg: a tight deterministic step budget must degrade roots
    /// to partial results *identically* for any worker count — the step
    /// accounting is designed to be memoization- and schedule-
    /// independent, and this is the end-to-end check of that property.
    #[test]
    fn step_budget_degrades_deterministically(
        g in gen_program(),
        jobs in 4usize..=8,
        limit in 1u64..12,
    ) {
        let src = pir(&g);
        let module = deepmc_pir::parse(&src).expect("generated PIR parses");
        let program = Program::single(module);
        let mut config = DeepMcConfig::new(PersistencyModel::Strict);
        config.trace.max_walk_steps = Some(limit);
        let checker = StaticChecker::new(config);

        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let base = std::env::temp_dir().join(format!("deepmc-budget-{}-{case}", std::process::id()));
        let dir_seq = base.join("seq");
        let dir_par = base.join("par");
        let cache_seq = AnalysisCache::open(&dir_seq);
        let cache_par = AnalysisCache::open(&dir_par);
        let (rep_seq, _) = checker.check_program_with_jobs(&program, Some(&cache_seq), 1);
        let (rep_par, _) = checker.check_program_with_jobs(&program, Some(&cache_par), jobs);

        let text_eq = rep_seq.to_string() == rep_par.to_string();
        let json_eq = serde_json::to_string(&rep_seq).unwrap()
            == serde_json::to_string(&rep_par).unwrap();
        let cache_eq = dir_snapshot(&dir_seq) == dir_snapshot(&dir_par);
        let _ = std::fs::remove_dir_all(&base);

        prop_assert!(text_eq, "jobs={jobs} limit={limit}: budgeted report differs");
        prop_assert!(json_eq, "jobs={jobs} limit={limit}: budgeted JSON differs");
        prop_assert!(cache_eq, "jobs={jobs} limit={limit}: budgeted cache dir differs");
        if rep_seq.degraded {
            prop_assert!(
                rep_seq.notes.iter().any(|n| n.contains("analysis budget exceeded")),
                "degraded budget run must carry the truncation note\n{rep_seq}"
            );
        }
    }
}
