//! Flag-parity matrix for the long-running subcommands.
//!
//! Every subcommand that can run long enough to care about telemetry
//! (`check`, `crashsweep`, and both `crashsweep --prune` exploration
//! paths) must accept the full shared observability flag set:
//! `--profile`, `--progress`, `--trace-out`, `--metrics-out`,
//! `--ledger`, and `--build-id`. A subcommand that forgets one falls
//! through to `usage()` and exits 2, which this matrix turns into a
//! named failure — so adding a new long-running subcommand without
//! wiring `ObsOpts` through it breaks the build here, not in the field.

use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_deepmc");

/// Tiny clean program so `check` legs exit 0 quickly.
const FIXTURE: &str = "module m\nfile \"m.c\"\nstruct s { a: i64 }\n\
                       fn main() {\nentry:\n  %r = palloc s\n  store %r.a, 1\n  \
                       flush %r.a\n  fence\n  ret\n}\n";

struct Ctx {
    dir: PathBuf,
    fixture: PathBuf,
}

impl Ctx {
    fn new(tag: &str) -> Ctx {
        let dir =
            std::env::temp_dir().join(format!("deepmc-cli-matrix-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let fixture = dir.join("m.pir");
        std::fs::write(&fixture, FIXTURE).expect("write fixture");
        Ctx { dir, fixture }
    }

    /// The base argv of every long-running subcommand invocation. Kept
    /// tiny (`--steps 2 --seeds 1`, one app) so the whole matrix runs in
    /// seconds.
    fn subcommands(&self) -> Vec<(&'static str, Vec<String>)> {
        let f = self.fixture.to_string_lossy().into_owned();
        let sweep = |extra: &[&str]| {
            let mut v = vec![
                "crashsweep".to_string(),
                "--app".into(),
                "memcached".into(),
                "--steps".into(),
                "2".into(),
                "--seeds".into(),
                "1".into(),
            ];
            v.extend(extra.iter().map(|s| s.to_string()));
            v
        };
        vec![
            ("check", vec!["check".to_string(), "-strict".into(), "--no-cache".into(), f]),
            (
                "check --ds",
                vec![
                    "check".to_string(),
                    "--ds".into(),
                    "treiber".into(),
                    "--steps".into(),
                    "4".into(),
                ],
            ),
            ("crashsweep", sweep(&[])),
            ("crashsweep --prune", sweep(&["--prune"])),
            ("crashsweep --prune --oracle", sweep(&["--prune", "--oracle"])),
        ]
    }
}

impl Drop for Ctx {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Every (subcommand, observability flag) pair parses and runs. Exit 2
/// is the usage path — the one a forgotten flag takes.
#[test]
fn every_long_running_subcommand_accepts_every_obs_flag() {
    let ctx = Ctx::new("flags");
    let flag_sets: Vec<Vec<String>> = vec![
        vec!["--profile".into()],
        vec!["--progress".into()],
        vec!["--trace-out".into(), ctx.dir.join("t.json").to_string_lossy().into_owned()],
        vec!["--metrics-out".into(), ctx.dir.join("m.json").to_string_lossy().into_owned()],
        vec!["--ledger".into(), ctx.dir.join("l.jsonl").to_string_lossy().into_owned()],
        vec!["--build-id".into(), "matrix-test".into()],
    ];
    for (name, base) in ctx.subcommands() {
        for flags in &flag_sets {
            let mut args = base.clone();
            args.extend(flags.iter().cloned());
            let out = Command::new(BIN).args(&args).output().expect("spawn deepmc");
            let code = out.status.code().expect("exit code");
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert_ne!(code, 2, "`deepmc {name}` rejected {flags:?} (usage exit):\n{stderr}");
            assert!(
                !stderr.contains("USAGE:"),
                "`deepmc {name}` printed usage for {flags:?}:\n{stderr}"
            );
        }
    }
}

/// All the flags together, plus side-effect checks: the trace, metrics,
/// and ledger files must actually appear for every subcommand.
#[test]
fn combined_obs_flags_produce_artifacts_everywhere() {
    let ctx = Ctx::new("artifacts");
    for (name, base) in ctx.subcommands() {
        let tag = name.replace([' ', '-'], "_");
        let trace = ctx.dir.join(format!("{tag}.trace.json"));
        let metrics = ctx.dir.join(format!("{tag}.metrics.json"));
        let ledger = ctx.dir.join(format!("{tag}.ledger.jsonl"));
        let mut args = base.clone();
        for extra in [
            "--profile",
            "--progress",
            "--trace-out",
            &trace.to_string_lossy(),
            "--metrics-out",
            &metrics.to_string_lossy(),
            "--ledger",
            &ledger.to_string_lossy(),
            "--build-id",
            "matrix-test",
        ] {
            args.push(extra.to_string());
        }
        let out = Command::new(BIN).args(&args).output().expect("spawn deepmc");
        let code = out.status.code().expect("exit code");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_ne!(code, 2, "`deepmc {name}` combined flags hit usage:\n{stderr}");
        for (what, path) in [("trace", &trace), ("metrics", &metrics), ("ledger", &ledger)] {
            assert!(
                path.exists(),
                "`deepmc {name}` did not write the {what} file {}:\n{stderr}",
                path.display()
            );
        }
        // The ledger record must carry the flagged build id and the
        // true exit code.
        let loaded = deepmc_obs::ledger::load(&ledger).expect("ledger loads");
        assert_eq!(loaded.records.len(), 1, "{name}: one run, one record");
        assert_eq!(loaded.records[0].build_id, "matrix-test");
        assert_eq!(loaded.records[0].exit_code, i32::from(code as u8));
        assert_eq!(loaded.rejected, 0);
        assert!(!loaded.torn);
    }
}

/// `--progress` is presentation-only: report bytes on stdout, the
/// metrics snapshot (timings redacted), and the sweep journal are
/// byte-identical with and without it, at `--jobs 1` and `--jobs 4`.
#[test]
fn progress_flag_never_perturbs_outputs() {
    let ctx = Ctx::new("progress");
    let run = |extra: &[&str], tag: &str| -> (Vec<u8>, String, String) {
        let journal = ctx.dir.join(format!("{tag}.journal"));
        let metrics = ctx.dir.join(format!("{tag}.metrics.json"));
        let mut args = vec![
            "crashsweep".to_string(),
            "--app".into(),
            "memcached".into(),
            "--steps".into(),
            "3".into(),
            "--seeds".into(),
            "1".into(),
            "--inject-bug".into(),
            "--journal".into(),
            journal.to_string_lossy().into_owned(),
            "--metrics-out".into(),
            metrics.to_string_lossy().into_owned(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        let out = Command::new(BIN).args(&args).output().expect("spawn deepmc");
        assert_ne!(out.status.code(), Some(2), "usage error in progress leg {tag}");
        // The journal is a keyed resume log: workers append completed
        // steps in finish order, so the *line set* is the determinism
        // contract, not the byte order.
        let journal_text = std::fs::read_to_string(&journal).expect("journal written");
        let mut lines: Vec<&str> = journal_text.lines().collect();
        lines.sort_unstable();
        let mut snap: deepmc_obs::MetricsSnapshot =
            serde_json::from_str(&std::fs::read_to_string(&metrics).expect("metrics written"))
                .expect("metrics parse");
        snap.redact_timings();
        (out.stdout, lines.join("\n"), snap.to_json())
    };
    let q1 = run(&["--jobs", "1"], "q1");
    let p1 = run(&["--progress", "--jobs", "1"], "p1");
    let q4 = run(&["--jobs", "4"], "q4");
    let p4 = run(&["--progress", "--jobs", "4"], "p4");
    for (tag, got) in [("p1", &p1), ("q4", &q4), ("p4", &p4)] {
        assert_eq!(q1.0, got.0, "{tag}: stdout report differs from quiet jobs=1");
        assert_eq!(q1.1, got.1, "{tag}: sweep journal differs from quiet jobs=1");
    }
    // The redacted metrics snapshot records the worker count, so compare
    // it within each jobs level: --progress must not change it.
    assert_eq!(q1.2, p1.2, "jobs=1: --progress changed the redacted metrics");
    assert_eq!(q4.2, p4.2, "jobs=4: --progress changed the redacted metrics");
}

/// Same contract for the DS-corpus matrix: the verdict table on stdout
/// is byte-identical with and without `--progress`, at `--jobs 1` and
/// `--jobs 4`, and every run of the full matrix exits 0 (all cells match
/// the registered ground truth).
#[test]
fn check_ds_is_deterministic_across_progress_and_jobs() {
    let run = |extra: &[&str]| -> Vec<u8> {
        // 12 steps is the shortest canonical script that arms every
        // seeded bug (the double-apply replay needs a completed dequeue
        // with the queue still non-empty).
        let mut args =
            vec!["check".to_string(), "--ds".into(), "all".into(), "--steps".into(), "12".into()];
        args.extend(extra.iter().map(|s| s.to_string()));
        let out = Command::new(BIN).args(&args).output().expect("spawn deepmc");
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        assert_eq!(out.status.code(), Some(0), "check --ds all failed ({extra:?}):\n{stderr}");
        out.stdout
    };
    let q1 = run(&["--jobs", "1"]);
    let p1 = run(&["--progress", "--jobs", "1"]);
    let q4 = run(&["--jobs", "4"]);
    let p4 = run(&["--progress", "--jobs", "4"]);
    assert_eq!(q1, p1, "--progress changed the jobs=1 verdict table");
    assert_eq!(q1, q4, "worker count changed the verdict table");
    assert_eq!(q4, p4, "--progress changed the jobs=4 verdict table");
}
