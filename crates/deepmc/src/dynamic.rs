//! The dynamic checker (paper §4.4, Fig. 8 steps ⑤–⑥).
//!
//! For strand persistency, model violations are *data dependences between
//! concurrent strands* — invisible to purely static analysis when addresses
//! are input-dependent. DeepMC instruments persistent accesses inside
//! annotated regions and checks them at runtime with happens-before WAW/RAW
//! detection over shadow memory (the ThreadSanitizer customization of the
//! paper, here [`nvm_runtime::RaceDetector`]).
//!
//! [`DynamicChecker`] implements the interpreter's [`Hooks`]: each
//! instrumented access is forwarded to the detector, and any fresh
//! dependence report is attributed to the access's source location,
//! yielding [`Warning`]s in the same report format as the static checker.

use crate::report::{Report, Warning};
use deepmc_interp::{Hooks, InstrumentScope, InterpConfig, InterpError, Outcome, Session};
use deepmc_models::{BugClass, PersistencyModel};
use deepmc_obs as obs;
use deepmc_pir::{Module, SourceLoc};
use nvm_runtime::{PmemHeap, PmemPool, PoolConfig, RaceDetector, RaceKind, StrandId, TxManager};
use parking_lot::Mutex;

/// Runtime hook implementation feeding the happens-before detector.
pub struct DynamicChecker {
    detector: RaceDetector,
    model: PersistencyModel,
    warnings: Mutex<Vec<Warning>>,
}

impl DynamicChecker {
    pub fn new(model: PersistencyModel) -> DynamicChecker {
        DynamicChecker { detector: RaceDetector::new(16), model, warnings: Mutex::new(Vec::new()) }
    }

    /// Warnings accumulated so far.
    pub fn report(&self) -> Report {
        Report::from_raw(self.warnings.lock().clone())
    }

    /// Number of shadow cells allocated (scales with persistent data
    /// touched inside annotated regions — the paper's scalability
    /// argument, §5.2).
    pub fn shadow_cells(&self) -> usize {
        self.detector.shadow_cells()
    }
}

impl Hooks for DynamicChecker {
    fn strand_begin(&self, parent: Option<StrandId>) -> Option<StrandId> {
        let strand = self.detector.strand_begin(parent);
        obs::counter("dynamic.strands", 1);
        if obs::active() {
            obs::instant_args("dynamic.strand_begin", vec![("strand", strand.0.to_string())]);
        }
        Some(strand)
    }

    fn strand_end(&self, strand: StrandId) {
        if obs::active() {
            obs::instant_args("dynamic.strand_end", vec![("strand", strand.0.to_string())]);
        }
        self.detector.strand_end(strand);
    }

    fn global_barrier(&self) {
        obs::counter("dynamic.barriers", 1);
        obs::instant("dynamic.barrier");
        self.detector.global_barrier();
    }

    fn access(
        &self,
        strand: Option<StrandId>,
        addr: u64,
        len: u64,
        is_write: bool,
        file: &str,
        func: &str,
        loc: SourceLoc,
    ) {
        let Some(strand) = strand else { return };
        obs::counter("dynamic.accesses", 1);
        if is_write {
            obs::counter("dynamic.writes", 1);
        }
        let cells_before = if obs::active() { self.detector.shadow_cells() } else { 0 };
        // Timed like pmem.flush/pmem.fence so "dynamic.hb_edge" shows up
        // as a latency family in the v2 metrics snapshot (p50/p90/p99 of
        // the per-access shadow-memory check), not just a counter.
        let t0 = obs::active().then(std::time::Instant::now);
        let fresh = self.detector.on_access(strand, addr, len, is_write);
        if let Some(t0) = t0 {
            obs::latency("dynamic.hb_edge", t0.elapsed().as_micros() as u64);
        }
        if obs::active() {
            let grown = self.detector.shadow_cells().saturating_sub(cells_before);
            obs::counter("dynamic.shadow_cells_allocated", grown as u64);
        }
        if fresh.is_empty() {
            return;
        }
        obs::counter("dynamic.hb_edges", fresh.len() as u64);
        if obs::active() {
            for r in &fresh {
                obs::instant_args(
                    "dynamic.hb_edge",
                    vec![
                        ("addr", format!("{:#x}", r.addr)),
                        (
                            "kind",
                            match r.kind {
                                RaceKind::WriteAfterWrite => "WAW".to_string(),
                                RaceKind::ReadAfterWrite => "RAW".to_string(),
                            },
                        ),
                        ("strands", format!("{}-{}", r.first.0, r.second.0)),
                    ],
                );
            }
        }
        let mut warnings = self.warnings.lock();
        for r in fresh {
            let kind = match r.kind {
                RaceKind::WriteAfterWrite => "WAW",
                RaceKind::ReadAfterWrite => "RAW",
            };
            warnings.push(Warning {
                file: file.to_string(),
                line: loc.line,
                class: BugClass::InterStrandDependency,
                function: func.to_string(),
                // Dynamic findings come from an execution, not a static
                // analysis root.
                root: String::new(),
                message: format!(
                    "{kind} dependence on persistent address {:#x} between concurrent \
                     strands {} and {}; dependent persists must share a strand or be \
                     ordered by a persist barrier",
                    r.addr, r.first.0, r.second.0
                ),
                model: self.model,
                dynamic: true,
                fix: None,
            });
        }
    }
}

/// One-call driver: execute `entry` in `modules` on a fresh simulated pool
/// with DeepMC's dynamic instrumentation (annotated regions only) and
/// return the dependence warnings.
pub fn check_dynamic(
    modules: &[Module],
    entry: &str,
    model: PersistencyModel,
) -> Result<Report, InterpError> {
    let pool = PmemPool::new(PoolConfig::default());
    let heap = PmemHeap::open(&pool);
    let log = heap.alloc(1 << 16);
    let txm = TxManager::new(&pool, log, 1 << 16);
    let checker = DynamicChecker::new(model);
    let session = Session {
        modules,
        pool: &pool,
        heap: &heap,
        txm: &txm,
        hooks: &checker,
        config: InterpConfig { scope: InstrumentScope::AnnotatedRegions, ..Default::default() },
    };
    let outcome = {
        let _s = obs::span("dynamic");
        session.run(entry, &[])?
    };
    debug_assert!(matches!(outcome, Outcome::Finished(_)));
    obs::counter("dynamic.shadow_cells", checker.shadow_cells() as u64);
    Ok(checker.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmc_pir::parse;

    fn check(src: &str) -> Report {
        let m = parse(src).unwrap();
        deepmc_pir::verify::verify_module(&m).unwrap();
        check_dynamic(std::slice::from_ref(&m), "main", PersistencyModel::Strand).unwrap()
    }

    #[test]
    fn dependent_strands_reported_at_runtime() {
        let r = check(
            r#"
module m
struct s { a: i64, b: i64 }
fn main() {
entry:
  %x = palloc s
  strand_begin
  loc 31
  store %x.a, 1
  flush %x.a
  fence
  strand_end
  strand_begin
  loc 40
  store %x.a, 2
  flush %x.a
  fence
  strand_end
  ret
}
"#,
        );
        assert_eq!(r.warnings.len(), 1, "{r}");
        let w = &r.warnings[0];
        assert_eq!(w.class, BugClass::InterStrandDependency);
        assert!(w.dynamic);
        assert_eq!(w.line, 40, "attributed to the second access");
        assert!(w.message.contains("WAW"));
    }

    #[test]
    fn raw_dependence_reported() {
        let r = check(
            r#"
module m
struct s { a: i64 }
fn main() {
entry:
  %x = palloc s
  strand_begin
  store %x.a, 1
  strand_end
  strand_begin
  %v = load %x.a
  strand_end
  ret
}
"#,
        );
        assert_eq!(r.warnings.len(), 1, "{r}");
        assert!(r.warnings[0].message.contains("RAW"));
    }

    #[test]
    fn barrier_separated_strands_clean() {
        let r = check(
            r#"
module m
struct s { a: i64 }
fn main() {
entry:
  %x = palloc s
  strand_begin
  store %x.a, 1
  flush %x.a
  strand_end
  fence
  strand_begin
  store %x.a, 2
  flush %x.a
  strand_end
  fence
  ret
}
"#,
        );
        assert!(r.warnings.is_empty(), "{r}");
    }

    #[test]
    fn disjoint_strands_clean() {
        let r = check(
            r#"
module m
struct s { a: i64, b: i64 }
fn main() {
entry:
  %x = palloc s
  strand_begin
  store %x.a, 1
  strand_end
  strand_begin
  store %x.b, 2
  strand_end
  ret
}
"#,
        );
        assert!(r.warnings.is_empty(), "{r}");
    }

    #[test]
    fn hb_edge_latency_appears_in_the_metrics_snapshot() {
        // Instrumented: every on_access check is timed into the
        // "dynamic.hb_edge" latency family, so the v2 metrics snapshot
        // carries its percentiles next to pmem.flush/pmem.fence — not
        // just the dynamic.accesses counter.
        let rec = obs::Recorder::new();
        {
            let _a = rec.attach(0);
            let r = check(
                r#"
module m
struct s { a: i64 }
fn main() {
entry:
  %x = palloc s
  strand_begin
  store %x.a, 1
  strand_end
  strand_begin
  store %x.a, 2
  strand_end
  ret
}
"#,
            );
            assert_eq!(r.warnings.len(), 1, "{r}");
        }
        let m = rec.finish().metrics_snapshot("deepmc dynamic");
        let p = m
            .phases
            .iter()
            .find(|p| p.name == "dynamic.hb_edge")
            .expect("hb_edge latency family in the snapshot");
        assert_eq!(p.count, 2, "one timed sample per instrumented access");
        assert_eq!(m.counter("dynamic.accesses"), 2);
        assert_eq!(m.counter("dynamic.hb_edges"), 1);
    }

    #[test]
    fn accesses_outside_strands_not_tracked() {
        let r = check(
            r#"
module m
struct s { a: i64 }
fn main() {
entry:
  %x = palloc s
  store %x.a, 1
  store %x.a, 2
  ret
}
"#,
        );
        assert!(r.warnings.is_empty());
    }

    #[test]
    fn dynamic_addresses_caught_where_static_cannot() {
        // The two strands write the same array element through different
        // index expressions — statically unknown, dynamically equal.
        let r = check(
            r#"
module m
struct s { arr: [i64; 8] }
fn pick(%n: i64) -> i64 {
entry:
  %m = mul %n, 3
  %i = rem %m, 8
  ret %i
}
fn main() {
entry:
  %x = palloc s
  %i1 = call pick(8)
  %i2 = call pick(16)
  strand_begin
  store %x.arr[%i1], 1
  strand_end
  strand_begin
  store %x.arr[%i2], 2
  strand_end
  ret
}
"#,
        );
        // pick(8) = 24 % 8 = 0, pick(16) = 48 % 8 = 0: same element.
        assert_eq!(r.warnings.len(), 1, "{r}");
    }
}
