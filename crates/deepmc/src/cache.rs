//! On-disk incremental analysis cache.
//!
//! Trace collection and rule application dominate `deepmc check` wall time
//! (DSA and CFG construction are near-linear; bounded-DFS path
//! enumeration is not). Both are deterministic per analysis root, and a
//! root's warnings depend only on:
//!
//! * the checker configuration,
//! * the root function's body and the bodies of every transitively
//!   reachable defined callee (plus each one's module file name, which
//!   appears in warning locations, and struct table, which feeds
//!   field-count-sensitive rules),
//! * the DSG's persistence classification of the root's pointer
//!   parameters — the only DSA facts the collector consumes.
//!
//! [`root_key`] folds exactly those inputs into a content hash, so a
//! second `deepmc check` run re-verifies only roots whose relevant inputs
//! changed. Entries are one JSON file per root under the cache directory
//! (default `.deepmc-cache/`), named by the FNV-1a hash of the key; the
//! full key text is stored inside each entry and compared on load, so a
//! hash collision degrades to a miss instead of wrong output.
//!
//! The cache stores *raw* (pre-deduplication) warnings and the root's
//! pruning/truncation deltas, so a warm run rebuilds the byte-identical
//! report, notes included.
//!
//! Entries are safe to read and write concurrently: stores go through a
//! tmp-file + atomic rename, and a cold root can be *claimed* (an
//! `O_EXCL` side file) so concurrent workers — in this process or
//! another — never double-compute it; see [`AnalysisCache::claim`].

use crate::config::DeepMcConfig;
use crate::report::Warning;
use deepmc_analysis::{CallGraph, DsaResult, FuncRef, PersistKind, Program};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

/// Default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = ".deepmc-cache";

/// Subdirectory (under the cache dir) holding quarantined entries.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Default staleness cutoff for claim files: a claim whose mtime has not
/// advanced for this long has a dead holder ([`ClaimGuard`] heartbeats
/// well inside it).
pub const DEFAULT_CLAIM_STALENESS: Duration = Duration::from_secs(2);

/// One cached per-root analysis result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The full (pre-hash) key text; verified on load so hash collisions
    /// degrade to misses.
    pub key: String,
    /// Root function name (diagnostics only).
    pub root: String,
    /// Raw, pre-deduplication warnings this root produced.
    pub warnings: Vec<Warning>,
    /// Branch forks pruned while collecting this root's traces.
    pub paths_pruned: u64,
    /// Events truncated while collecting this root's traces.
    pub events_truncated: u64,
    /// Number of traces the root produced (for reporting).
    pub traces: u64,
}

/// Counters for one checker run against a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheRunStats {
    /// Roots served from the cache.
    pub hits: u64,
    /// Roots analyzed because no valid entry existed.
    pub misses: u64,
    /// Fresh entries written this run.
    pub stores: u64,
    /// Corrupt or key-mismatched entries moved to quarantine this run.
    pub quarantined: u64,
    /// Traces collected or (for hits) skipped-and-accounted.
    pub traces: u64,
}

impl CacheRunStats {
    /// Hit rate in [0, 1]; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Handle to an on-disk cache directory.
#[derive(Debug, Clone)]
pub struct AnalysisCache {
    dir: PathBuf,
    /// A claim whose mtime is older than this is a dead holder; live
    /// holders heartbeat at a quarter of it.
    staleness: Duration,
    /// Entries quarantined through this handle (clones share the counter).
    quarantined: Arc<AtomicU64>,
}

impl AnalysisCache {
    /// Open (without yet creating) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> AnalysisCache {
        AnalysisCache {
            dir: dir.into(),
            staleness: DEFAULT_CLAIM_STALENESS,
            quarantined: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Open the default `.deepmc-cache/` directory.
    pub fn default_dir() -> AnalysisCache {
        AnalysisCache::open(DEFAULT_CACHE_DIR)
    }

    /// Builder-style: override the claim staleness cutoff (and, with it,
    /// the heartbeat interval). Mostly for tests and CI chaos harnesses.
    pub fn with_staleness(mut self, staleness: Duration) -> AnalysisCache {
        self.staleness = staleness.max(Duration::from_millis(1));
        self
    }

    /// The cache directory path.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Entries quarantined through this handle (and its clones) so far.
    pub fn quarantined_count(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.json", fnv1a(key.as_bytes())))
    }

    fn claim_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.claim", fnv1a(key.as_bytes())))
    }

    /// Move a bad entry file to `<dir>/quarantine/` (falling back to
    /// deletion) so it is inspected once, not re-missed on every run.
    /// Counted only when this handle actually removed the file — two
    /// workers racing on the same corrupt entry quarantine it once.
    fn quarantine(&self, path: &Path, reason: &str) {
        let qdir = self.dir.join(QUARANTINE_DIR);
        let moved = fs::create_dir_all(&qdir).is_ok()
            && path
                .file_name()
                .map(|name| fs::rename(path, qdir.join(name)).is_ok())
                .unwrap_or(false);
        if moved || fs::remove_file(path).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            deepmc_obs::counter("cache.quarantined", 1);
            deepmc_obs::warning(
                "cache.quarantined",
                &format!("quarantined cache entry {}: {reason}", path.display()),
            );
        }
    }

    /// Look up a key. A missing file is a plain miss; a file that fails
    /// checksum, parse, or key verification is quarantined (self-healing:
    /// the next run misses cleanly instead of re-tripping forever).
    pub fn lookup(&self, key: &str) -> Option<CacheEntry> {
        let path = self.path_for(key);
        let text = fs::read_to_string(&path).ok()?;
        match decode_entry(&text) {
            Ok(entry) if entry.key == key => Some(entry),
            Ok(_) => {
                self.quarantine(&path, "key mismatch (hash collision or stale format)");
                None
            }
            Err(reason) => {
                self.quarantine(&path, reason);
                None
            }
        }
    }

    /// Store an entry; failures are silent (a cache must never break the
    /// check itself — the next run simply misses).
    pub fn store(&self, entry: &CacheEntry) {
        if fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let path = self.path_for(&entry.key);
        if let Ok(json) = serde_json::to_string(entry) {
            let tmp = path.with_extension("tmp");
            if fs::write(&tmp, encode_entry(&json)).is_ok() {
                let _ = fs::rename(&tmp, &path);
            }
        }
    }

    /// Try to claim a cold key for computation. `Some` means this caller
    /// won and must compute + [`AnalysisCache::store`] the entry (the
    /// returned guard releases the claim on drop, success or panic);
    /// `None` means another worker holds the claim — poll with
    /// [`AnalysisCache::wait_for`] instead of recomputing.
    ///
    /// The claim is an `O_EXCL`-created side file, so it also excludes
    /// workers in *other* processes sharing the cache directory. While the
    /// guard lives, a background thread bumps the claim file's mtime every
    /// `staleness / 4`, so [`AnalysisCache::wait_for`] can tell a slow
    /// holder (mtime advancing) from a dead one (mtime frozen).
    pub fn claim(&self, key: &str) -> Option<ClaimGuard> {
        if fs::create_dir_all(&self.dir).is_err() {
            // Unusable cache directory: claims can't exclude anyone, so
            // pretend we won and let `store` fail silently later.
            return Some(ClaimGuard { path: None, heartbeat: None });
        }
        let path = self.claim_path(key);
        match fs::OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(_) => {
                let heartbeat = Heartbeat::spawn(path.clone(), self.staleness / 4);
                Some(ClaimGuard { path: Some(path), heartbeat })
            }
            Err(_) => None,
        }
    }

    /// Wait for the holder of `key`'s claim to publish its entry. Returns
    /// `None` if the claim disappears without an entry or goes stale (its
    /// mtime stops advancing, i.e. the holder died without dropping its
    /// [`ClaimGuard`]); the stale claim is broken so the caller can
    /// compute the root itself. A live holder may be waited on
    /// indefinitely — its heartbeat is the liveness proof.
    pub fn wait_for(&self, key: &str) -> Option<CacheEntry> {
        let claim = self.claim_path(key);
        loop {
            if let Some(entry) = self.lookup(key) {
                return Some(entry);
            }
            let Ok(meta) = fs::metadata(&claim) else {
                // Claim released: one final look, then treat as ours.
                return self.lookup(key);
            };
            // A future or unreadable mtime reads as "fresh just now":
            // coarse clocks must not make us break a live holder's claim.
            // An mtime the platform can't report at all reads as stale —
            // worst case is a benign double-compute (stores are atomic
            // and idempotent).
            let fresh = meta.modified().is_ok_and(|m| {
                SystemTime::now().duration_since(m).unwrap_or(Duration::ZERO) < self.staleness
            });
            if !fresh {
                let _ = fs::remove_file(&claim);
                return None;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// Entry-file checksum footer prefix; the line after the JSON body.
const ENTRY_FOOTER_PREFIX: &str = "deepmc-entry-fnv1a:";

/// Entry file layout: one line of JSON, then a checksum footer line over
/// the JSON bytes. Torn or bit-rotted files fail the footer check and are
/// quarantined instead of being half-trusted or silently re-missed.
fn encode_entry(json: &str) -> String {
    format!("{json}\n{ENTRY_FOOTER_PREFIX}{:016x}\n", fnv1a(json.as_bytes()))
}

fn decode_entry(text: &str) -> Result<CacheEntry, &'static str> {
    let trimmed = text.trim_end_matches('\n');
    let (json, footer) = trimmed.rsplit_once('\n').ok_or("missing checksum footer")?;
    let sum = footer.strip_prefix(ENTRY_FOOTER_PREFIX).ok_or("missing checksum footer")?;
    let sum = u64::from_str_radix(sum, 16).map_err(|_| "unparsable checksum footer")?;
    if sum != fnv1a(json.as_bytes()) {
        return Err("checksum mismatch");
    }
    serde_json::from_str(json).map_err(|_| "unparsable entry body")
}

/// Background mtime-bumper for a held claim file.
#[derive(Debug)]
struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    fn spawn(path: PathBuf, interval: Duration) -> Option<Heartbeat> {
        let interval = interval.max(Duration::from_millis(10));
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("deepmc-claim-heartbeat".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    if let Ok(f) = fs::OpenOptions::new().write(true).open(&path) {
                        let _ = f.set_modified(SystemTime::now());
                    }
                    std::thread::park_timeout(interval);
                }
            })
            .ok()?;
        Some(Heartbeat { stop, handle: Some(handle) })
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

/// RAII release of a [`AnalysisCache::claim`]; removing the claim file
/// wakes waiters whether or not an entry was stored. The heartbeat stops
/// first so a final mtime bump can't resurrect the removed file.
#[derive(Debug)]
pub struct ClaimGuard {
    path: Option<PathBuf>,
    heartbeat: Option<Heartbeat>,
}

impl Drop for ClaimGuard {
    fn drop(&mut self) {
        drop(self.heartbeat.take());
        if let Some(path) = &self.path {
            let _ = fs::remove_file(path);
        }
    }
}

/// FNV-1a 64-bit (no external hasher dependencies; stability across runs
/// and platforms matters more than collision resistance, and collisions
/// are verified away by storing the key text).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FnvWriter::new();
    h.update(bytes);
    h.0
}

/// Incremental FNV-1a sink; implements [`std::fmt::Write`] so `Debug`
/// output can be digested without materializing the string.
struct FnvWriter(u64);

impl FnvWriter {
    fn new() -> FnvWriter {
        FnvWriter(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.update(s.as_bytes());
        Ok(())
    }
}

/// Per-run key construction context.
///
/// The expensive part of a key is digesting function bodies; reachable
/// sets of different roots overlap heavily, so the builder digests every
/// defined function (and every module's struct table) exactly once, up
/// front, into a program-wide line map that [`KeyBuilder::root_key`]
/// merely slices per root. A warm `deepmc check` therefore pays one body
/// hash per function, not one per (root, reachable function) pair —
/// without this, key construction can cost more than the analysis it
/// saves on small programs. Precomputing (instead of filling a lazy
/// `RefCell` map) also makes the builder `Sync`, so a worker pool can
/// build all root keys concurrently.
pub struct KeyBuilder<'a> {
    program: &'a Program,
    dsa: &'a DsaResult,
    cg: &'a CallGraph,
    config_line: String,
    /// Pre-rendered digest line per defined function:
    /// `file|name|body-digest|struct-table-digest`.
    fn_line: HashMap<FuncRef, String>,
}

impl<'a> KeyBuilder<'a> {
    pub fn new(
        config: &DeepMcConfig,
        program: &'a Program,
        dsa: &'a DsaResult,
        cg: &'a CallGraph,
    ) -> Self {
        let mut mod_hash: HashMap<u32, u64> = HashMap::new();
        let mut fn_line = HashMap::new();
        for fr in program.defined_funcs() {
            let mod_digest = *mod_hash.entry(fr.module).or_insert_with(|| {
                let mut h = FnvWriter::new();
                let _ = write!(h, "{:?}", program.modules[fr.module as usize].structs);
                h.0
            });
            let mut h = FnvWriter::new();
            let _ = write!(h, "{:?}", program.func(fr));
            let m = program.module_of(fr);
            fn_line.insert(
                fr,
                format!("{}|{}|{:016x}|{:016x}", m.file, program.func(fr).name, h.0, mod_digest),
            );
        }
        KeyBuilder { program, dsa, cg, config_line: format!("{config:?}"), fn_line }
    }

    /// Build the content key for one analysis root: checker config, the
    /// DSG's persistence classification of the root's parameters, and a
    /// digest of every transitively reachable defined function's body plus
    /// its module's file name and struct table.
    pub fn root_key(&self, root: FuncRef) -> String {
        let program = self.program;
        let mut s = String::new();
        let f = program.func(root);
        // v2: warnings carry (and dedup on) the analysis-root name, so v1
        // entries must not satisfy v2 lookups.
        let _ = writeln!(s, "deepmc-cache-v2");
        let _ = writeln!(s, "config {}", self.config_line);
        let _ = writeln!(s, "root {}", f.name);

        // The only DSA facts trace collection reads: the persistence class
        // of each pointer parameter of the root.
        let g = self.dsa.graph(root);
        for (i, p) in f.params().iter().enumerate() {
            let kind = if let deepmc_pir::Ty::Ptr(_) = p.ty {
                g.param_node(i)
                    .map(|n| g.node(n).persist.unwrap_or(PersistKind::Unknown))
                    .unwrap_or(PersistKind::Unknown)
            } else {
                PersistKind::Unknown
            };
            let _ = writeln!(s, "param {i} {kind:?}");
        }

        // Transitively reachable defined functions, folded into one digest
        // in deterministic order. Each function contributes its module's
        // file name (appears in warning locations), its body digest, and
        // its module's struct-table digest (field counts feed the
        // field-sensitive unmodified-writeback rule).
        let mut reach = self.reachable(root);
        reach.sort();
        let mut fold = FnvWriter::new();
        for fr in reach.iter() {
            let line = self.fn_line.get(fr).expect("reachable functions are defined");
            let _ = writeln!(fold, "{line}");
        }
        let _ = writeln!(s, "reach n={} digest={:016x}", reach.len(), fold.0);
        s
    }

    /// Defined functions reachable from `root` through resolvable calls
    /// (including `root` itself), off the prebuilt call-graph adjacency.
    /// Membership goes through a `HashSet` — a `Vec::contains` scan here
    /// is quadratic on wide call graphs.
    fn reachable(&self, root: FuncRef) -> Vec<FuncRef> {
        let mut seen: HashSet<FuncRef> = HashSet::from([root]);
        let mut work = vec![root];
        let mut order = vec![root];
        while let Some(fr) = work.pop() {
            for &t in self.cg.callees_of(fr) {
                if seen.insert(t) {
                    order.push(t);
                    work.push(t);
                }
            }
        }
        order
    }
}

/// One-shot [`KeyBuilder::root_key`] (per-run digest sharing thrown away).
pub fn root_key(
    config: &DeepMcConfig,
    program: &Program,
    dsa: &DsaResult,
    root: FuncRef,
) -> String {
    let cg = CallGraph::build(program);
    KeyBuilder::new(config, program, dsa, &cg).root_key(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmc_models::PersistencyModel;
    use deepmc_pir::parse;

    fn program(src: &str) -> Program {
        Program::single(parse(src).unwrap())
    }

    const BASE: &str = r#"
module m
struct s { a: i64 }
fn leaf(%q: ptr s) {
entry:
  store %q.a, 1
  ret
}
fn main() {
entry:
  %x = palloc s
  call leaf(%x)
  fence
  ret
}
"#;

    fn key_of(src: &str) -> String {
        let p = program(src);
        let cg = CallGraph::build(&p);
        let dsa = DsaResult::analyze(&p, &cg);
        let config = DeepMcConfig::new(PersistencyModel::Strict);
        let root = p.resolve("main").unwrap();
        root_key(&config, &p, &dsa, root)
    }

    #[test]
    fn key_is_stable_across_runs() {
        assert_eq!(key_of(BASE), key_of(BASE));
    }

    #[test]
    fn key_changes_when_a_callee_changes() {
        let changed = BASE.replace("store %q.a, 1", "store %q.a, 2");
        assert_ne!(key_of(BASE), key_of(&changed));
    }

    #[test]
    fn key_changes_with_config() {
        let p = program(BASE);
        let cg = CallGraph::build(&p);
        let dsa = DsaResult::analyze(&p, &cg);
        let root = p.resolve("main").unwrap();
        let strict = DeepMcConfig::new(PersistencyModel::Strict);
        let epoch = DeepMcConfig::new(PersistencyModel::Epoch);
        assert_ne!(root_key(&strict, &p, &dsa, root), root_key(&epoch, &p, &dsa, root));
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        let entry = CacheEntry {
            key: "k1".into(),
            root: "main".into(),
            warnings: Vec::new(),
            paths_pruned: 2,
            events_truncated: 0,
            traces: 5,
        };
        assert!(cache.lookup("k1").is_none(), "cold cache misses");
        cache.store(&entry);
        assert_eq!(cache.lookup("k1"), Some(entry));
        assert!(cache.lookup("k2").is_none(), "different key misses");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn claim_excludes_second_claimer_until_released() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-claim-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        let guard = cache.claim("k").expect("first claim wins");
        assert!(cache.claim("k").is_none(), "held claim must exclude");
        drop(guard);
        let again = cache.claim("k");
        assert!(again.is_some(), "released claim is re-claimable");
        drop(again);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn waiter_sees_entry_stored_by_claim_holder() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-wait-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        let entry = CacheEntry {
            key: "k".into(),
            root: "main".into(),
            warnings: Vec::new(),
            paths_pruned: 0,
            events_truncated: 0,
            traces: 1,
        };
        let guard = cache.claim("k").expect("claim");
        let got = std::thread::scope(|s| {
            let waiter = s.spawn(|| cache.wait_for("k"));
            std::thread::sleep(Duration::from_millis(10));
            cache.store(&entry);
            drop(guard);
            waiter.join().unwrap()
        });
        assert_eq!(got, Some(entry));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_claim_without_entry_is_broken() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-stale-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir).with_staleness(Duration::from_millis(100));
        // Simulate a dead holder: the claim file exists but nothing
        // heartbeats it, as if the holding process was killed. Age the
        // mtime past the cutoff so the test doesn't sleep for it.
        fs::create_dir_all(&dir).unwrap();
        let claim = cache.claim_path("k");
        fs::write(&claim, b"").unwrap();
        let aged = SystemTime::now() - Duration::from_secs(5);
        fs::OpenOptions::new().write(true).open(&claim).unwrap().set_modified(aged).unwrap();
        assert_eq!(cache.wait_for("k"), None, "no entry ever appears");
        assert!(cache.claim("k").is_some(), "stale claim was broken");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_but_alive_holder_is_not_declared_dead() {
        // Regression: wait_for used to break any claim older than a fixed
        // ~1s, double-computing behind every legitimately slow holder.
        // With heartbeating, a holder that takes many times the staleness
        // cutoff must still win the wait.
        let dir = std::env::temp_dir().join(format!("deepmc-cache-slow-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir).with_staleness(Duration::from_millis(80));
        let entry = CacheEntry {
            key: "k".into(),
            root: "main".into(),
            warnings: Vec::new(),
            paths_pruned: 0,
            events_truncated: 0,
            traces: 3,
        };
        let guard = cache.claim("k").expect("claim");
        let got = std::thread::scope(|s| {
            let waiter = s.spawn(|| cache.wait_for("k"));
            // Holder "computes" for 5x the staleness cutoff.
            std::thread::sleep(Duration::from_millis(400));
            cache.store(&entry);
            drop(guard);
            waiter.join().unwrap()
        });
        assert_eq!(got, Some(entry), "waiter must get the slow holder's entry, not None");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_once() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-quar-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        let entry = CacheEntry {
            key: "k".into(),
            root: "main".into(),
            warnings: Vec::new(),
            paths_pruned: 0,
            events_truncated: 0,
            traces: 1,
        };
        cache.store(&entry);
        let path = cache.path_for("k");
        // Flip the body without updating the footer: checksum mismatch.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("\"traces\":1", "\"traces\":9")).unwrap();
        assert!(cache.lookup("k").is_none(), "corrupt entry is a miss");
        assert_eq!(cache.quarantined_count(), 1);
        assert!(!path.exists(), "corrupt file was moved out of the way");
        let quarantined: Vec<_> =
            fs::read_dir(dir.join(QUARANTINE_DIR)).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(quarantined.len(), 1, "the bad entry landed in quarantine/");
        // Self-healing: the key is now a clean miss and can be re-stored.
        assert!(cache.lookup("k").is_none());
        assert_eq!(cache.quarantined_count(), 1, "a clean miss quarantines nothing");
        cache.store(&entry);
        assert_eq!(cache.lookup("k"), Some(entry));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unparsable_entry_is_quarantined() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-garbage-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(cache.path_for("k"), b"not json at all").unwrap();
        assert!(cache.lookup("k").is_none());
        assert_eq!(cache.quarantined_count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn collision_with_wrong_key_is_a_miss_and_quarantined() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-coll-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        let entry = CacheEntry {
            key: "other".into(),
            root: "main".into(),
            warnings: Vec::new(),
            paths_pruned: 0,
            events_truncated: 0,
            traces: 1,
        };
        // Simulate a colliding file: write `other`'s (well-formed) entry
        // where `mine` would hash.
        fs::create_dir_all(&dir).unwrap();
        let mine_path = dir.join(format!("{:016x}.json", fnv1a(b"mine")));
        let json = serde_json::to_string(&entry).unwrap();
        fs::write(&mine_path, encode_entry(&json)).unwrap();
        assert!(cache.lookup("mine").is_none(), "key text mismatch rejects the entry");
        assert_eq!(cache.quarantined_count(), 1, "mismatched entry is quarantined, not re-missed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_checksum_roundtrip_and_rejection() {
        let entry = CacheEntry {
            key: "k".into(),
            root: "r".into(),
            warnings: Vec::new(),
            paths_pruned: 1,
            events_truncated: 2,
            traces: 3,
        };
        let json = serde_json::to_string(&entry).unwrap();
        let encoded = encode_entry(&json);
        assert_eq!(decode_entry(&encoded).unwrap(), entry);
        assert!(decode_entry(&json).is_err(), "footerless payload rejected");
        let torn = &encoded[..encoded.len() / 2];
        assert!(decode_entry(torn).is_err(), "torn file rejected");
    }
}
