//! On-disk incremental analysis cache.
//!
//! Trace collection and rule application dominate `deepmc check` wall time
//! (DSA and CFG construction are near-linear; bounded-DFS path
//! enumeration is not). Both are deterministic per analysis root, and a
//! root's warnings depend only on:
//!
//! * the checker configuration,
//! * the root function's body and the bodies of every transitively
//!   reachable defined callee (plus each one's module file name, which
//!   appears in warning locations, and struct table, which feeds
//!   field-count-sensitive rules),
//! * the DSG's persistence classification of the root's pointer
//!   parameters — the only DSA facts the collector consumes.
//!
//! [`root_key`] folds exactly those inputs into a content hash, so a
//! second `deepmc check` run re-verifies only roots whose relevant inputs
//! changed. Entries are one JSON file per root under the cache directory
//! (default `.deepmc-cache/`), named by the FNV-1a hash of the key; the
//! full key text is stored inside each entry and compared on load, so a
//! hash collision degrades to a miss instead of wrong output.
//!
//! The cache stores *raw* (pre-deduplication) warnings and the root's
//! pruning/truncation deltas, so a warm run rebuilds the byte-identical
//! report, notes included.
//!
//! Entries are safe to read and write concurrently: stores go through a
//! tmp-file + atomic rename, and a cold root can be *claimed* (an
//! `O_EXCL` side file) so concurrent workers — in this process or
//! another — never double-compute it; see [`AnalysisCache::claim`].

use crate::config::DeepMcConfig;
use crate::report::Warning;
use deepmc_analysis::{CallGraph, DsaResult, FuncRef, PersistKind, Program};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

/// Default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = ".deepmc-cache";

/// One cached per-root analysis result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The full (pre-hash) key text; verified on load so hash collisions
    /// degrade to misses.
    pub key: String,
    /// Root function name (diagnostics only).
    pub root: String,
    /// Raw, pre-deduplication warnings this root produced.
    pub warnings: Vec<Warning>,
    /// Branch forks pruned while collecting this root's traces.
    pub paths_pruned: u64,
    /// Events truncated while collecting this root's traces.
    pub events_truncated: u64,
    /// Number of traces the root produced (for reporting).
    pub traces: u64,
}

/// Counters for one checker run against a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheRunStats {
    /// Roots served from the cache.
    pub hits: u64,
    /// Roots analyzed because no valid entry existed.
    pub misses: u64,
    /// Fresh entries written this run.
    pub stores: u64,
    /// Traces collected or (for hits) skipped-and-accounted.
    pub traces: u64,
}

impl CacheRunStats {
    /// Hit rate in [0, 1]; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Handle to an on-disk cache directory.
#[derive(Debug, Clone)]
pub struct AnalysisCache {
    dir: PathBuf,
}

impl AnalysisCache {
    /// Open (without yet creating) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> AnalysisCache {
        AnalysisCache { dir: dir.into() }
    }

    /// Open the default `.deepmc-cache/` directory.
    pub fn default_dir() -> AnalysisCache {
        AnalysisCache::open(DEFAULT_CACHE_DIR)
    }

    /// The cache directory path.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.json", fnv1a(key.as_bytes())))
    }

    fn claim_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.claim", fnv1a(key.as_bytes())))
    }

    /// Look up a key; any I/O or decode problem is treated as a miss.
    pub fn lookup(&self, key: &str) -> Option<CacheEntry> {
        let text = fs::read_to_string(self.path_for(key)).ok()?;
        let entry: CacheEntry = serde_json::from_str(&text).ok()?;
        (entry.key == key).then_some(entry)
    }

    /// Store an entry; failures are silent (a cache must never break the
    /// check itself — the next run simply misses).
    pub fn store(&self, entry: &CacheEntry) {
        if fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let path = self.path_for(&entry.key);
        if let Ok(json) = serde_json::to_string(entry) {
            let tmp = path.with_extension("tmp");
            if fs::write(&tmp, json).is_ok() {
                let _ = fs::rename(&tmp, &path);
            }
        }
    }

    /// Try to claim a cold key for computation. `Some` means this caller
    /// won and must compute + [`AnalysisCache::store`] the entry (the
    /// returned guard releases the claim on drop, success or panic);
    /// `None` means another worker holds the claim — poll with
    /// [`AnalysisCache::wait_for`] instead of recomputing.
    ///
    /// The claim is an `O_EXCL`-created side file, so it also excludes
    /// workers in *other* processes sharing the cache directory.
    pub fn claim(&self, key: &str) -> Option<ClaimGuard> {
        if fs::create_dir_all(&self.dir).is_err() {
            // Unusable cache directory: claims can't exclude anyone, so
            // pretend we won and let `store` fail silently later.
            return Some(ClaimGuard { path: None });
        }
        let path = self.claim_path(key);
        match fs::OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(_) => Some(ClaimGuard { path: Some(path) }),
            Err(_) => None,
        }
    }

    /// Wait for the holder of `key`'s claim to publish its entry. Returns
    /// `None` if the claim disappears without an entry or looks stale
    /// (holder died); the stale claim is broken so the caller can compute
    /// the root itself.
    pub fn wait_for(&self, key: &str) -> Option<CacheEntry> {
        // The slowest single root in the corpus computes in well under a
        // second; a claim older than this is a dead holder.
        for _ in 0..500 {
            if let Some(entry) = self.lookup(key) {
                return Some(entry);
            }
            if !self.claim_path(key).exists() {
                // Claim released: one final look, then treat as ours.
                return self.lookup(key);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let _ = fs::remove_file(self.claim_path(key));
        None
    }
}

/// RAII release of a [`AnalysisCache::claim`]; removing the claim file
/// wakes waiters whether or not an entry was stored.
#[derive(Debug)]
pub struct ClaimGuard {
    path: Option<PathBuf>,
}

impl Drop for ClaimGuard {
    fn drop(&mut self) {
        if let Some(path) = &self.path {
            let _ = fs::remove_file(path);
        }
    }
}

/// FNV-1a 64-bit (no external hasher dependencies; stability across runs
/// and platforms matters more than collision resistance, and collisions
/// are verified away by storing the key text).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FnvWriter::new();
    h.update(bytes);
    h.0
}

/// Incremental FNV-1a sink; implements [`std::fmt::Write`] so `Debug`
/// output can be digested without materializing the string.
struct FnvWriter(u64);

impl FnvWriter {
    fn new() -> FnvWriter {
        FnvWriter(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.update(s.as_bytes());
        Ok(())
    }
}

/// Per-run key construction context.
///
/// The expensive part of a key is digesting function bodies; reachable
/// sets of different roots overlap heavily, so the builder digests every
/// defined function (and every module's struct table) exactly once, up
/// front, into a program-wide line map that [`KeyBuilder::root_key`]
/// merely slices per root. A warm `deepmc check` therefore pays one body
/// hash per function, not one per (root, reachable function) pair —
/// without this, key construction can cost more than the analysis it
/// saves on small programs. Precomputing (instead of filling a lazy
/// `RefCell` map) also makes the builder `Sync`, so a worker pool can
/// build all root keys concurrently.
pub struct KeyBuilder<'a> {
    program: &'a Program,
    dsa: &'a DsaResult,
    cg: &'a CallGraph,
    config_line: String,
    /// Pre-rendered digest line per defined function:
    /// `file|name|body-digest|struct-table-digest`.
    fn_line: HashMap<FuncRef, String>,
}

impl<'a> KeyBuilder<'a> {
    pub fn new(
        config: &DeepMcConfig,
        program: &'a Program,
        dsa: &'a DsaResult,
        cg: &'a CallGraph,
    ) -> Self {
        let mut mod_hash: HashMap<u32, u64> = HashMap::new();
        let mut fn_line = HashMap::new();
        for fr in program.defined_funcs() {
            let mod_digest = *mod_hash.entry(fr.module).or_insert_with(|| {
                let mut h = FnvWriter::new();
                let _ = write!(h, "{:?}", program.modules[fr.module as usize].structs);
                h.0
            });
            let mut h = FnvWriter::new();
            let _ = write!(h, "{:?}", program.func(fr));
            let m = program.module_of(fr);
            fn_line.insert(
                fr,
                format!("{}|{}|{:016x}|{:016x}", m.file, program.func(fr).name, h.0, mod_digest),
            );
        }
        KeyBuilder { program, dsa, cg, config_line: format!("{config:?}"), fn_line }
    }

    /// Build the content key for one analysis root: checker config, the
    /// DSG's persistence classification of the root's parameters, and a
    /// digest of every transitively reachable defined function's body plus
    /// its module's file name and struct table.
    pub fn root_key(&self, root: FuncRef) -> String {
        let program = self.program;
        let mut s = String::new();
        let f = program.func(root);
        // v2: warnings carry (and dedup on) the analysis-root name, so v1
        // entries must not satisfy v2 lookups.
        let _ = writeln!(s, "deepmc-cache-v2");
        let _ = writeln!(s, "config {}", self.config_line);
        let _ = writeln!(s, "root {}", f.name);

        // The only DSA facts trace collection reads: the persistence class
        // of each pointer parameter of the root.
        let g = self.dsa.graph(root);
        for (i, p) in f.params().iter().enumerate() {
            let kind = if let deepmc_pir::Ty::Ptr(_) = p.ty {
                g.param_node(i)
                    .map(|n| g.node(n).persist.unwrap_or(PersistKind::Unknown))
                    .unwrap_or(PersistKind::Unknown)
            } else {
                PersistKind::Unknown
            };
            let _ = writeln!(s, "param {i} {kind:?}");
        }

        // Transitively reachable defined functions, folded into one digest
        // in deterministic order. Each function contributes its module's
        // file name (appears in warning locations), its body digest, and
        // its module's struct-table digest (field counts feed the
        // field-sensitive unmodified-writeback rule).
        let mut reach = self.reachable(root);
        reach.sort();
        let mut fold = FnvWriter::new();
        for fr in reach.iter() {
            let line = self.fn_line.get(fr).expect("reachable functions are defined");
            let _ = writeln!(fold, "{line}");
        }
        let _ = writeln!(s, "reach n={} digest={:016x}", reach.len(), fold.0);
        s
    }

    /// Defined functions reachable from `root` through resolvable calls
    /// (including `root` itself), off the prebuilt call-graph adjacency.
    /// Membership goes through a `HashSet` — a `Vec::contains` scan here
    /// is quadratic on wide call graphs.
    fn reachable(&self, root: FuncRef) -> Vec<FuncRef> {
        let mut seen: HashSet<FuncRef> = HashSet::from([root]);
        let mut work = vec![root];
        let mut order = vec![root];
        while let Some(fr) = work.pop() {
            for &t in self.cg.callees_of(fr) {
                if seen.insert(t) {
                    order.push(t);
                    work.push(t);
                }
            }
        }
        order
    }
}

/// One-shot [`KeyBuilder::root_key`] (per-run digest sharing thrown away).
pub fn root_key(
    config: &DeepMcConfig,
    program: &Program,
    dsa: &DsaResult,
    root: FuncRef,
) -> String {
    let cg = CallGraph::build(program);
    KeyBuilder::new(config, program, dsa, &cg).root_key(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmc_models::PersistencyModel;
    use deepmc_pir::parse;

    fn program(src: &str) -> Program {
        Program::single(parse(src).unwrap())
    }

    const BASE: &str = r#"
module m
struct s { a: i64 }
fn leaf(%q: ptr s) {
entry:
  store %q.a, 1
  ret
}
fn main() {
entry:
  %x = palloc s
  call leaf(%x)
  fence
  ret
}
"#;

    fn key_of(src: &str) -> String {
        let p = program(src);
        let cg = CallGraph::build(&p);
        let dsa = DsaResult::analyze(&p, &cg);
        let config = DeepMcConfig::new(PersistencyModel::Strict);
        let root = p.resolve("main").unwrap();
        root_key(&config, &p, &dsa, root)
    }

    #[test]
    fn key_is_stable_across_runs() {
        assert_eq!(key_of(BASE), key_of(BASE));
    }

    #[test]
    fn key_changes_when_a_callee_changes() {
        let changed = BASE.replace("store %q.a, 1", "store %q.a, 2");
        assert_ne!(key_of(BASE), key_of(&changed));
    }

    #[test]
    fn key_changes_with_config() {
        let p = program(BASE);
        let cg = CallGraph::build(&p);
        let dsa = DsaResult::analyze(&p, &cg);
        let root = p.resolve("main").unwrap();
        let strict = DeepMcConfig::new(PersistencyModel::Strict);
        let epoch = DeepMcConfig::new(PersistencyModel::Epoch);
        assert_ne!(root_key(&strict, &p, &dsa, root), root_key(&epoch, &p, &dsa, root));
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        let entry = CacheEntry {
            key: "k1".into(),
            root: "main".into(),
            warnings: Vec::new(),
            paths_pruned: 2,
            events_truncated: 0,
            traces: 5,
        };
        assert!(cache.lookup("k1").is_none(), "cold cache misses");
        cache.store(&entry);
        assert_eq!(cache.lookup("k1"), Some(entry));
        assert!(cache.lookup("k2").is_none(), "different key misses");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn claim_excludes_second_claimer_until_released() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-claim-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        let guard = cache.claim("k").expect("first claim wins");
        assert!(cache.claim("k").is_none(), "held claim must exclude");
        drop(guard);
        let again = cache.claim("k");
        assert!(again.is_some(), "released claim is re-claimable");
        drop(again);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn waiter_sees_entry_stored_by_claim_holder() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-wait-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        let entry = CacheEntry {
            key: "k".into(),
            root: "main".into(),
            warnings: Vec::new(),
            paths_pruned: 0,
            events_truncated: 0,
            traces: 1,
        };
        let guard = cache.claim("k").expect("claim");
        let got = std::thread::scope(|s| {
            let waiter = s.spawn(|| cache.wait_for("k"));
            std::thread::sleep(Duration::from_millis(10));
            cache.store(&entry);
            drop(guard);
            waiter.join().unwrap()
        });
        assert_eq!(got, Some(entry));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_claim_without_entry_is_broken() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-stale-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        // Simulate a dead holder: claim file exists, holder never stores
        // or releases. The claim is leaked (guard forgotten), so wait_for
        // must eventually break it.
        let guard = cache.claim("k").expect("claim");
        std::mem::forget(guard);
        assert_eq!(cache.wait_for("k"), None, "no entry ever appears");
        assert!(cache.claim("k").is_some(), "stale claim was broken");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn collision_with_wrong_key_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-coll-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        let entry = CacheEntry {
            key: "other".into(),
            root: "main".into(),
            warnings: Vec::new(),
            paths_pruned: 0,
            events_truncated: 0,
            traces: 1,
        };
        // Simulate a colliding file: write `other`'s entry where `mine`
        // would hash (by just writing to mine's path).
        fs::create_dir_all(&dir).unwrap();
        let mine_path = dir.join(format!("{:016x}.json", fnv1a(b"mine")));
        fs::write(&mine_path, serde_json::to_string(&entry).unwrap()).unwrap();
        assert!(cache.lookup("mine").is_none(), "key text mismatch rejects the entry");
        let _ = fs::remove_dir_all(&dir);
    }
}
