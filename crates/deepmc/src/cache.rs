//! On-disk incremental analysis cache.
//!
//! Trace collection and rule application dominate `deepmc check` wall time
//! (DSA and CFG construction are near-linear; bounded-DFS path
//! enumeration is not). Both are deterministic per analysis root, and a
//! root's warnings depend only on:
//!
//! * the checker configuration,
//! * the root function's body and the bodies of every transitively
//!   reachable defined callee (plus each one's module file name, which
//!   appears in warning locations, and struct table, which feeds
//!   field-count-sensitive rules),
//! * the DSG's persistence classification of the root's pointer
//!   parameters — the only DSA facts the collector consumes.
//!
//! [`root_key`] folds exactly those inputs into a content hash, so a
//! second `deepmc check` run re-verifies only roots whose relevant inputs
//! changed. Entries are one JSON file per root under the cache directory
//! (default `.deepmc-cache/`), named by the FNV-1a hash of the key; the
//! full key text is stored inside each entry and compared on load, so a
//! hash collision degrades to a miss instead of wrong output.
//!
//! The cache stores *raw* (pre-deduplication) warnings and the root's
//! pruning/truncation deltas, so a warm run rebuilds the byte-identical
//! report, notes included.

use crate::config::DeepMcConfig;
use crate::report::Warning;
use deepmc_analysis::{CallGraph, DsaResult, FuncRef, PersistKind, Program};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = ".deepmc-cache";

/// One cached per-root analysis result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The full (pre-hash) key text; verified on load so hash collisions
    /// degrade to misses.
    pub key: String,
    /// Root function name (diagnostics only).
    pub root: String,
    /// Raw, pre-deduplication warnings this root produced.
    pub warnings: Vec<Warning>,
    /// Branch forks pruned while collecting this root's traces.
    pub paths_pruned: u64,
    /// Events truncated while collecting this root's traces.
    pub events_truncated: u64,
    /// Number of traces the root produced (for reporting).
    pub traces: u64,
}

/// Counters for one checker run against a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheRunStats {
    /// Roots served from the cache.
    pub hits: u64,
    /// Roots analyzed because no valid entry existed.
    pub misses: u64,
    /// Fresh entries written this run.
    pub stores: u64,
    /// Traces collected or (for hits) skipped-and-accounted.
    pub traces: u64,
}

impl CacheRunStats {
    /// Hit rate in [0, 1]; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Handle to an on-disk cache directory.
#[derive(Debug, Clone)]
pub struct AnalysisCache {
    dir: PathBuf,
}

impl AnalysisCache {
    /// Open (without yet creating) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> AnalysisCache {
        AnalysisCache { dir: dir.into() }
    }

    /// Open the default `.deepmc-cache/` directory.
    pub fn default_dir() -> AnalysisCache {
        AnalysisCache::open(DEFAULT_CACHE_DIR)
    }

    /// The cache directory path.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.json", fnv1a(key.as_bytes())))
    }

    /// Look up a key; any I/O or decode problem is treated as a miss.
    pub fn lookup(&self, key: &str) -> Option<CacheEntry> {
        let text = fs::read_to_string(self.path_for(key)).ok()?;
        let entry: CacheEntry = serde_json::from_str(&text).ok()?;
        (entry.key == key).then_some(entry)
    }

    /// Store an entry; failures are silent (a cache must never break the
    /// check itself — the next run simply misses).
    pub fn store(&self, entry: &CacheEntry) {
        if fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let path = self.path_for(&entry.key);
        if let Ok(json) = serde_json::to_string(entry) {
            let tmp = path.with_extension("tmp");
            if fs::write(&tmp, json).is_ok() {
                let _ = fs::rename(&tmp, &path);
            }
        }
    }
}

/// FNV-1a 64-bit (no external hasher dependencies; stability across runs
/// and platforms matters more than collision resistance, and collisions
/// are verified away by storing the key text).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FnvWriter::new();
    h.update(bytes);
    h.0
}

/// Incremental FNV-1a sink; implements [`std::fmt::Write`] so `Debug`
/// output can be digested without materializing the string.
struct FnvWriter(u64);

impl FnvWriter {
    fn new() -> FnvWriter {
        FnvWriter(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.update(s.as_bytes());
        Ok(())
    }
}

/// Per-run key construction context.
///
/// The expensive part of a key is digesting function bodies; reachable
/// sets of different roots overlap heavily, so the builder hashes each
/// function (and each module's struct table) at most once per run and the
/// key text carries the digests. A warm `deepmc check` therefore pays one
/// body hash per function, not one per (root, reachable function) pair —
/// without this, key construction can cost more than the analysis it
/// saves on small programs.
pub struct KeyBuilder<'a> {
    program: &'a Program,
    dsa: &'a DsaResult,
    cg: &'a CallGraph,
    config_line: String,
    fn_hash: RefCell<HashMap<FuncRef, u64>>,
    mod_hash: RefCell<HashMap<u32, u64>>,
}

impl<'a> KeyBuilder<'a> {
    pub fn new(
        config: &DeepMcConfig,
        program: &'a Program,
        dsa: &'a DsaResult,
        cg: &'a CallGraph,
    ) -> Self {
        KeyBuilder {
            program,
            dsa,
            cg,
            config_line: format!("{config:?}"),
            fn_hash: RefCell::new(HashMap::new()),
            mod_hash: RefCell::new(HashMap::new()),
        }
    }

    fn fn_digest(&self, fr: FuncRef) -> u64 {
        *self.fn_hash.borrow_mut().entry(fr).or_insert_with(|| {
            let mut h = FnvWriter::new();
            let _ = write!(h, "{:?}", self.program.func(fr));
            h.0
        })
    }

    fn mod_digest(&self, module: u32) -> u64 {
        *self.mod_hash.borrow_mut().entry(module).or_insert_with(|| {
            let mut h = FnvWriter::new();
            let _ = write!(h, "{:?}", self.program.modules[module as usize].structs);
            h.0
        })
    }

    /// Build the content key for one analysis root: checker config, the
    /// DSG's persistence classification of the root's parameters, and a
    /// digest of every transitively reachable defined function's body plus
    /// its module's file name and struct table.
    pub fn root_key(&self, root: FuncRef) -> String {
        let program = self.program;
        let mut s = String::new();
        let f = program.func(root);
        let _ = writeln!(s, "deepmc-cache-v1");
        let _ = writeln!(s, "config {}", self.config_line);
        let _ = writeln!(s, "root {}", f.name);

        // The only DSA facts trace collection reads: the persistence class
        // of each pointer parameter of the root.
        let g = self.dsa.graph(root);
        for (i, p) in f.params().iter().enumerate() {
            let kind = if let deepmc_pir::Ty::Ptr(_) = p.ty {
                g.param_node(i)
                    .map(|n| g.node(n).persist.unwrap_or(PersistKind::Unknown))
                    .unwrap_or(PersistKind::Unknown)
            } else {
                PersistKind::Unknown
            };
            let _ = writeln!(s, "param {i} {kind:?}");
        }

        // Transitively reachable defined functions, folded into one digest
        // in deterministic order. Each function contributes its module's
        // file name (appears in warning locations), its body digest, and
        // its module's struct-table digest (field counts feed the
        // field-sensitive unmodified-writeback rule).
        let mut reach = self.reachable(root);
        reach.sort();
        let mut fold = FnvWriter::new();
        for fr in reach.iter() {
            let m = program.module_of(*fr);
            let _ = writeln!(
                fold,
                "{}|{}|{:016x}|{:016x}",
                m.file,
                program.func(*fr).name,
                self.fn_digest(*fr),
                self.mod_digest(fr.module)
            );
        }
        let _ = writeln!(s, "reach n={} digest={:016x}", reach.len(), fold.0);
        s
    }

    /// Defined functions reachable from `root` through resolvable calls
    /// (including `root` itself), off the prebuilt call-graph adjacency.
    fn reachable(&self, root: FuncRef) -> Vec<FuncRef> {
        let mut seen = vec![root];
        let mut work = vec![root];
        while let Some(fr) = work.pop() {
            for &t in self.cg.callees_of(fr) {
                if !seen.contains(&t) {
                    seen.push(t);
                    work.push(t);
                }
            }
        }
        seen
    }
}

/// One-shot [`KeyBuilder::root_key`] (per-run digest sharing thrown away).
pub fn root_key(
    config: &DeepMcConfig,
    program: &Program,
    dsa: &DsaResult,
    root: FuncRef,
) -> String {
    let cg = CallGraph::build(program);
    KeyBuilder::new(config, program, dsa, &cg).root_key(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmc_models::PersistencyModel;
    use deepmc_pir::parse;

    fn program(src: &str) -> Program {
        Program::single(parse(src).unwrap())
    }

    const BASE: &str = r#"
module m
struct s { a: i64 }
fn leaf(%q: ptr s) {
entry:
  store %q.a, 1
  ret
}
fn main() {
entry:
  %x = palloc s
  call leaf(%x)
  fence
  ret
}
"#;

    fn key_of(src: &str) -> String {
        let p = program(src);
        let cg = CallGraph::build(&p);
        let dsa = DsaResult::analyze(&p, &cg);
        let config = DeepMcConfig::new(PersistencyModel::Strict);
        let root = p.resolve("main").unwrap();
        root_key(&config, &p, &dsa, root)
    }

    #[test]
    fn key_is_stable_across_runs() {
        assert_eq!(key_of(BASE), key_of(BASE));
    }

    #[test]
    fn key_changes_when_a_callee_changes() {
        let changed = BASE.replace("store %q.a, 1", "store %q.a, 2");
        assert_ne!(key_of(BASE), key_of(&changed));
    }

    #[test]
    fn key_changes_with_config() {
        let p = program(BASE);
        let cg = CallGraph::build(&p);
        let dsa = DsaResult::analyze(&p, &cg);
        let root = p.resolve("main").unwrap();
        let strict = DeepMcConfig::new(PersistencyModel::Strict);
        let epoch = DeepMcConfig::new(PersistencyModel::Epoch);
        assert_ne!(root_key(&strict, &p, &dsa, root), root_key(&epoch, &p, &dsa, root));
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        let entry = CacheEntry {
            key: "k1".into(),
            root: "main".into(),
            warnings: Vec::new(),
            paths_pruned: 2,
            events_truncated: 0,
            traces: 5,
        };
        assert!(cache.lookup("k1").is_none(), "cold cache misses");
        cache.store(&entry);
        assert_eq!(cache.lookup("k1"), Some(entry));
        assert!(cache.lookup("k2").is_none(), "different key misses");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn collision_with_wrong_key_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-coll-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        let entry = CacheEntry {
            key: "other".into(),
            root: "main".into(),
            warnings: Vec::new(),
            paths_pruned: 0,
            events_truncated: 0,
            traces: 1,
        };
        // Simulate a colliding file: write `other`'s entry where `mine`
        // would hash (by just writing to mine's path).
        fs::create_dir_all(&dir).unwrap();
        let mine_path = dir.join(format!("{:016x}.json", fnv1a(b"mine")));
        fs::write(&mine_path, serde_json::to_string(&entry).unwrap()).unwrap();
        assert!(cache.lookup("mine").is_none(), "key text mismatch rejects the entry");
        let _ = fs::remove_dir_all(&dir);
    }
}
