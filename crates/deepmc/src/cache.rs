//! On-disk incremental analysis cache.
//!
//! Trace collection and rule application dominate `deepmc check` wall time
//! (DSA and CFG construction are near-linear; bounded-DFS path
//! enumeration is not). Both are deterministic per analysis root, and a
//! root's warnings depend only on:
//!
//! * the checker configuration,
//! * the root function's body and the bodies of every transitively
//!   reachable defined callee (plus each one's module file name, which
//!   appears in warning locations, struct table, which feeds
//!   field-count-sensitive rules, and symbol table, which call operands
//!   index into),
//! * the DSG's persistence classification of the root's pointer
//!   parameters — the only DSA facts the collector consumes.
//!
//! [`root_key`] folds exactly those inputs into a content hash, so a
//! second `deepmc check` run re-verifies only roots whose relevant inputs
//! changed. Entries are one binary file per root under the cache directory
//! (default `.deepmc-cache/`), named by the FNV-1a hash of the key; the
//! full key text is stored inside each entry and compared on load, so a
//! hash collision degrades to a miss instead of wrong output.
//!
//! # Entry file format
//!
//! A 16-byte header followed by a little-endian packed payload:
//!
//! ```text
//! magic    b"DMCB"                         4 bytes
//! version  u16 LE (SCHEMA_VERSION)         2 bytes
//! endian   0x01 (little-endian payload)    1 byte
//! reserved 0x00                            1 byte
//! checksum u64 LE FNV-1a of the payload    8 bytes
//! payload  string table + packed records   rest
//! ```
//!
//! The payload holds a deduplicated string table (u32 count, then
//! length-prefixed UTF-8) followed by the entry scalars and one fixed
//! 32-byte record per warning whose string fields are u32 table indices
//! and whose enums are stable u8 codes (positions in `BugClass::ALL` /
//! `PersistencyModel::ALL` and the `FixHint` declaration order). The
//! reader parses the byte slice in place — strings are materialized once,
//! straight out of the read buffer, with no intermediate tree.
//!
//! A file whose schema version or endian marker differs is *someone
//! else's* entry, not a broken one: it reads as a clean cold miss (the
//! `cache.version_miss` counter tracks these) and is simply overwritten
//! by this run's store. Only files that claim our schema and then fail
//! checksum, parse, or key verification are quarantined. Pre-binary
//! (JSON-era) `{hash}.json` entries found where a `.bin` is missing are
//! quarantined once so old cache directories self-heal.
//!
//! The cache stores *raw* (pre-deduplication) warnings and the root's
//! pruning/truncation deltas, so a warm run rebuilds the byte-identical
//! report, notes included.
//!
//! Entries are safe to read and write concurrently: stores go through a
//! tmp-file + atomic rename, and a cold root can be *claimed* (an
//! `O_EXCL` side file) so concurrent workers — in this process or
//! another — never double-compute it; see [`AnalysisCache::claim`].

use crate::config::DeepMcConfig;
use crate::report::{FixHint, Warning};
use deepmc_analysis::{CallGraph, DsaResult, FuncRef, PersistKind, Program};
use deepmc_models::{BugClass, PersistencyModel};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

/// Default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = ".deepmc-cache";

/// Subdirectory (under the cache dir) holding quarantined entries.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Default staleness cutoff for claim files: a claim whose mtime has not
/// advanced for this long has a dead holder ([`ClaimGuard`] heartbeats
/// well inside it).
pub const DEFAULT_CLAIM_STALENESS: Duration = Duration::from_secs(2);

/// Entry-file magic: "DeepMC Binary".
pub const ENTRY_MAGIC: [u8; 4] = *b"DMCB";

/// Entry-file schema version; bump on any layout or code-table change so
/// old readers miss cleanly instead of misparsing.
pub const SCHEMA_VERSION: u16 = 3;

/// Endianness marker: all multi-byte fields are little-endian. A big-endian
/// writer would stamp a different marker, which reads as a clean miss.
pub const ENDIAN_MARK: u8 = 0x01;

const HEADER_LEN: usize = 16;

/// One cached per-root analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// The full (pre-hash) key text; verified on load so hash collisions
    /// degrade to misses.
    pub key: String,
    /// Root function name (diagnostics only).
    pub root: String,
    /// Raw, pre-deduplication warnings this root produced.
    pub warnings: Vec<Warning>,
    /// Branch forks pruned while collecting this root's traces.
    pub paths_pruned: u64,
    /// Events truncated while collecting this root's traces.
    pub events_truncated: u64,
    /// Number of traces the root produced (for reporting).
    pub traces: u64,
}

/// Counters for one checker run against a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheRunStats {
    /// Roots served from the cache.
    pub hits: u64,
    /// Roots analyzed because no valid entry existed.
    pub misses: u64,
    /// Fresh entries written this run.
    pub stores: u64,
    /// Corrupt or key-mismatched entries moved to quarantine this run.
    pub quarantined: u64,
    /// Traces collected or (for hits) skipped-and-accounted.
    pub traces: u64,
}

impl CacheRunStats {
    /// Hit rate in [0, 1]; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Handle to an on-disk cache directory.
#[derive(Debug, Clone)]
pub struct AnalysisCache {
    dir: PathBuf,
    /// A claim whose mtime is older than this is a dead holder; live
    /// holders heartbeat at a quarter of it.
    staleness: Duration,
    /// Entries quarantined through this handle (clones share the counter).
    quarantined: Arc<AtomicU64>,
    /// Clean misses caused by a schema-version or endianness mismatch.
    version_miss: Arc<AtomicU64>,
}

impl AnalysisCache {
    /// Open (without yet creating) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> AnalysisCache {
        AnalysisCache {
            dir: dir.into(),
            staleness: DEFAULT_CLAIM_STALENESS,
            quarantined: Arc::new(AtomicU64::new(0)),
            version_miss: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Open the default `.deepmc-cache/` directory.
    pub fn default_dir() -> AnalysisCache {
        AnalysisCache::open(DEFAULT_CACHE_DIR)
    }

    /// Builder-style: override the claim staleness cutoff (and, with it,
    /// the heartbeat interval). Mostly for tests and CI chaos harnesses.
    pub fn with_staleness(mut self, staleness: Duration) -> AnalysisCache {
        self.staleness = staleness.max(Duration::from_millis(1));
        self
    }

    /// The cache directory path.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Entries quarantined through this handle (and its clones) so far.
    pub fn quarantined_count(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Clean misses served because an entry had a different schema version
    /// or endianness (counted by this handle and its clones).
    pub fn version_miss_count(&self) -> u64 {
        self.version_miss.load(Ordering::Relaxed)
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.bin", fnv1a(key.as_bytes())))
    }

    /// Where the pre-binary (JSON) format stored this key's entry.
    fn legacy_path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.json", fnv1a(key.as_bytes())))
    }

    fn claim_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.claim", fnv1a(key.as_bytes())))
    }

    /// Move a bad entry file to `<dir>/quarantine/` (falling back to
    /// deletion) so it is inspected once, not re-missed on every run.
    /// Counted only when this handle actually removed the file — two
    /// workers racing on the same corrupt entry quarantine it once.
    fn quarantine(&self, path: &Path, reason: &str) {
        let qdir = self.dir.join(QUARANTINE_DIR);
        let moved = fs::create_dir_all(&qdir).is_ok()
            && path
                .file_name()
                .map(|name| fs::rename(path, qdir.join(name)).is_ok())
                .unwrap_or(false);
        if moved || fs::remove_file(path).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            deepmc_obs::counter("cache.quarantined", 1);
            deepmc_obs::warning(
                "cache.quarantined",
                &format!("quarantined cache entry {}: {reason}", path.display()),
            );
        }
    }

    /// Look up a key. A missing file is a plain miss; an entry from a
    /// different schema version or endianness is a *clean* miss (counted,
    /// not quarantined — this run's store will overwrite it); a file that
    /// claims our schema but fails checksum, parse, or key verification is
    /// quarantined (self-healing: the next run misses cleanly instead of
    /// re-tripping forever). A JSON-era entry squatting on a cold key is
    /// quarantined once.
    pub fn lookup(&self, key: &str) -> Option<CacheEntry> {
        let path = self.path_for(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                let legacy = self.legacy_path_for(key);
                if legacy.exists() {
                    self.quarantine(&legacy, "pre-binary (JSON-era) cache entry");
                }
                return None;
            }
        };
        match decode_entry(&bytes) {
            Ok(entry) if entry.key == key => Some(entry),
            Ok(_) => {
                self.quarantine(&path, "key mismatch (hash collision or stale format)");
                None
            }
            Err(DecodeFail::VersionMiss(reason)) => {
                self.version_miss.fetch_add(1, Ordering::Relaxed);
                deepmc_obs::counter("cache.version_miss", 1);
                deepmc_obs::warning(
                    "cache.version_miss",
                    &format!("cold miss on {}: {reason}", path.display()),
                );
                None
            }
            Err(DecodeFail::Corrupt(reason)) => {
                self.quarantine(&path, reason);
                None
            }
        }
    }

    /// Store an entry; failures are silent (a cache must never break the
    /// check itself — the next run simply misses).
    pub fn store(&self, entry: &CacheEntry) {
        if fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let path = self.path_for(&entry.key);
        let tmp = path.with_extension("tmp");
        if fs::write(&tmp, encode_entry(entry)).is_ok() {
            let _ = fs::rename(&tmp, &path);
        }
    }

    /// Try to claim a cold key for computation. `Some` means this caller
    /// won and must compute + [`AnalysisCache::store`] the entry (the
    /// returned guard releases the claim on drop, success or panic);
    /// `None` means another worker holds the claim — poll with
    /// [`AnalysisCache::wait_for`] instead of recomputing.
    ///
    /// The claim is an `O_EXCL`-created side file, so it also excludes
    /// workers in *other* processes sharing the cache directory. While the
    /// guard lives, a background thread bumps the claim file's mtime every
    /// `staleness / 4`, so [`AnalysisCache::wait_for`] can tell a slow
    /// holder (mtime advancing) from a dead one (mtime frozen).
    pub fn claim(&self, key: &str) -> Option<ClaimGuard> {
        if fs::create_dir_all(&self.dir).is_err() {
            // Unusable cache directory: claims can't exclude anyone, so
            // pretend we won and let `store` fail silently later.
            return Some(ClaimGuard { path: None, heartbeat: None });
        }
        let path = self.claim_path(key);
        match fs::OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(_) => {
                let heartbeat = Heartbeat::spawn(path.clone(), self.staleness / 4);
                Some(ClaimGuard { path: Some(path), heartbeat })
            }
            Err(_) => None,
        }
    }

    /// Wait for the holder of `key`'s claim to publish its entry. Returns
    /// `None` if the claim disappears without an entry or goes stale (its
    /// mtime stops advancing, i.e. the holder died without dropping its
    /// [`ClaimGuard`]); the stale claim is broken so the caller can
    /// compute the root itself. A live holder may be waited on
    /// indefinitely — its heartbeat is the liveness proof.
    pub fn wait_for(&self, key: &str) -> Option<CacheEntry> {
        let claim = self.claim_path(key);
        loop {
            if let Some(entry) = self.lookup(key) {
                return Some(entry);
            }
            let Ok(meta) = fs::metadata(&claim) else {
                // Claim released: one final look, then treat as ours.
                return self.lookup(key);
            };
            // A future or unreadable mtime reads as "fresh just now":
            // coarse clocks must not make us break a live holder's claim.
            // An mtime the platform can't report at all reads as stale —
            // worst case is a benign double-compute (stores are atomic
            // and idempotent).
            let fresh = meta.modified().is_ok_and(|m| {
                SystemTime::now().duration_since(m).unwrap_or(Duration::ZERO) < self.staleness
            });
            if !fresh {
                let _ = fs::remove_file(&claim);
                return None;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

// --- binary entry encoding ----------------------------------------------

/// Why a decode did not produce an entry.
enum DecodeFail {
    /// Another schema wrote this file; it is not ours to validate.
    VersionMiss(&'static str),
    /// The file claims our schema but is damaged.
    Corrupt(&'static str),
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Deduplicating string-table builder for the payload.
#[derive(Default)]
struct StringTable<'a> {
    strings: Vec<&'a str>,
    index: HashMap<&'a str, u32>,
}

impl<'a> StringTable<'a> {
    fn intern(&mut self, s: &'a str) -> u32 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = self.strings.len() as u32;
        self.strings.push(s);
        self.index.insert(s, i);
        i
    }
}

/// Stable wire code for a fix hint: (tag, operand a, operand b). Tag 0 is
/// "no fix"; tags 1.. follow [`FixHint`]'s declaration order.
fn fix_code(fix: Option<&FixHint>) -> (u8, u32, u32) {
    match fix {
        None => (0, 0, 0),
        Some(FixHint::FlushAndFenceStore { store_line }) => (1, *store_line, 0),
        Some(FixHint::LogObjectBeforeStore { store_line }) => (2, *store_line, 0),
        Some(FixHint::InsertFenceAfter { line }) => (3, *line, 0),
        Some(FixHint::InsertFenceBefore { line }) => (4, *line, 0),
        Some(FixHint::RemoveWriteback { line }) => (5, *line, 0),
        Some(FixHint::MovePersistToStore { store_line, flush_line }) => {
            (6, *store_line, *flush_line)
        }
        Some(FixHint::NarrowWriteback { line }) => (7, *line, 0),
    }
}

fn fix_from_code(tag: u8, a: u32, b: u32) -> Result<Option<FixHint>, &'static str> {
    Ok(match tag {
        0 => None,
        1 => Some(FixHint::FlushAndFenceStore { store_line: a }),
        2 => Some(FixHint::LogObjectBeforeStore { store_line: a }),
        3 => Some(FixHint::InsertFenceAfter { line: a }),
        4 => Some(FixHint::InsertFenceBefore { line: a }),
        5 => Some(FixHint::RemoveWriteback { line: a }),
        6 => Some(FixHint::MovePersistToStore { store_line: a, flush_line: b }),
        7 => Some(FixHint::NarrowWriteback { line: a }),
        _ => return Err("unknown fix-hint code"),
    })
}

/// Serialize an entry: header (magic, version, endian marker, payload
/// checksum) followed by the packed little-endian payload.
fn encode_entry(entry: &CacheEntry) -> Vec<u8> {
    let mut tab = StringTable::default();
    let key = tab.intern(&entry.key);
    let root = tab.intern(&entry.root);
    let warn_refs: Vec<(u32, u32, u32, u32)> = entry
        .warnings
        .iter()
        .map(|w| {
            (
                tab.intern(&w.file),
                tab.intern(&w.function),
                tab.intern(&w.root),
                tab.intern(&w.message),
            )
        })
        .collect();

    let mut payload = Vec::new();
    put_u32(&mut payload, tab.strings.len() as u32);
    for s in &tab.strings {
        put_u32(&mut payload, s.len() as u32);
        payload.extend_from_slice(s.as_bytes());
    }
    put_u32(&mut payload, key);
    put_u32(&mut payload, root);
    put_u64(&mut payload, entry.paths_pruned);
    put_u64(&mut payload, entry.events_truncated);
    put_u64(&mut payload, entry.traces);
    put_u32(&mut payload, entry.warnings.len() as u32);
    for (w, &(file, function, wroot, message)) in entry.warnings.iter().zip(&warn_refs) {
        put_u32(&mut payload, file);
        put_u32(&mut payload, w.line);
        put_u32(&mut payload, function);
        put_u32(&mut payload, wroot);
        put_u32(&mut payload, message);
        let class = BugClass::ALL
            .iter()
            .position(|c| *c == w.class)
            .expect("BugClass::ALL covers every class") as u8;
        let model = PersistencyModel::ALL
            .iter()
            .position(|m| *m == w.model)
            .expect("PersistencyModel::ALL covers every model") as u8;
        let (tag, a, b) = fix_code(w.fix.as_ref());
        payload.push(class);
        payload.push(model);
        payload.push(w.dynamic as u8);
        payload.push(tag);
        put_u32(&mut payload, a);
        put_u32(&mut payload, b);
    }

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&ENTRY_MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.push(ENDIAN_MARK);
    out.push(0); // reserved
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Bounds-checked cursor over the payload byte slice; all reads are
/// in-place (no copies until final `String` materialization).
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], &'static str> {
        if self.buf.len() < n {
            return Err("truncated payload");
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, &'static str> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, &'static str> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, &'static str> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn decode_entry(bytes: &[u8]) -> Result<CacheEntry, DecodeFail> {
    use DecodeFail::{Corrupt, VersionMiss};
    if bytes.len() < HEADER_LEN {
        return Err(Corrupt("truncated header"));
    }
    if bytes[0..4] != ENTRY_MAGIC {
        return Err(Corrupt("bad magic"));
    }
    // Version and endianness are checked before the checksum: a
    // foreign-schema file is not ours to validate, let alone quarantine.
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != SCHEMA_VERSION {
        return Err(VersionMiss("schema version mismatch"));
    }
    if bytes[6] != ENDIAN_MARK {
        return Err(VersionMiss("foreign endianness"));
    }
    let sum = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let payload = &bytes[HEADER_LEN..];
    if sum != fnv1a(payload) {
        return Err(Corrupt("checksum mismatch"));
    }
    parse_payload(payload).map_err(Corrupt)
}

fn parse_payload(payload: &[u8]) -> Result<CacheEntry, &'static str> {
    let mut r = Reader { buf: payload };
    let n_strings = r.u32()? as usize;
    // Each string costs at least its 4-byte length prefix; a count the
    // payload can't possibly hold is rejected before any preallocation.
    if n_strings > payload.len() / 4 {
        return Err("string table overruns payload");
    }
    let mut strings: Vec<&str> = Vec::with_capacity(n_strings);
    for _ in 0..n_strings {
        let len = r.u32()? as usize;
        let raw = r.take(len)?;
        strings.push(std::str::from_utf8(raw).map_err(|_| "non-UTF-8 string")?);
    }
    let resolve = |i: u32| -> Result<&str, &'static str> {
        strings.get(i as usize).copied().ok_or("string index out of range")
    };

    let key = resolve(r.u32()?)?;
    let root = resolve(r.u32()?)?;
    let paths_pruned = r.u64()?;
    let events_truncated = r.u64()?;
    let traces = r.u64()?;
    let n_warnings = r.u32()? as usize;
    // 32 bytes per packed warning record.
    if n_warnings > payload.len() / 32 {
        return Err("warning table overruns payload");
    }
    let mut warnings = Vec::with_capacity(n_warnings);
    for _ in 0..n_warnings {
        let file = resolve(r.u32()?)?;
        let line = r.u32()?;
        let function = resolve(r.u32()?)?;
        let wroot = resolve(r.u32()?)?;
        let message = resolve(r.u32()?)?;
        let class = *BugClass::ALL.get(r.u8()? as usize).ok_or("unknown bug-class code")?;
        let model =
            *PersistencyModel::ALL.get(r.u8()? as usize).ok_or("unknown persistency-model code")?;
        let dynamic = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err("bad boolean"),
        };
        let tag = r.u8()?;
        let a = r.u32()?;
        let b = r.u32()?;
        warnings.push(Warning {
            file: file.to_string(),
            line,
            class,
            function: function.to_string(),
            root: wroot.to_string(),
            message: message.to_string(),
            model,
            dynamic,
            fix: fix_from_code(tag, a, b)?,
        });
    }
    if !r.buf.is_empty() {
        return Err("trailing bytes after entry");
    }
    Ok(CacheEntry {
        key: key.to_string(),
        root: root.to_string(),
        warnings,
        paths_pruned,
        events_truncated,
        traces,
    })
}

/// Background mtime-bumper for a held claim file.
#[derive(Debug)]
struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    fn spawn(path: PathBuf, interval: Duration) -> Option<Heartbeat> {
        let interval = interval.max(Duration::from_millis(10));
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("deepmc-claim-heartbeat".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    if let Ok(f) = fs::OpenOptions::new().write(true).open(&path) {
                        let _ = f.set_modified(SystemTime::now());
                    }
                    std::thread::park_timeout(interval);
                }
            })
            .ok()?;
        Some(Heartbeat { stop, handle: Some(handle) })
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

/// RAII release of a [`AnalysisCache::claim`]; removing the claim file
/// wakes waiters whether or not an entry was stored. The heartbeat stops
/// first so a final mtime bump can't resurrect the removed file.
#[derive(Debug)]
pub struct ClaimGuard {
    path: Option<PathBuf>,
    heartbeat: Option<Heartbeat>,
}

impl Drop for ClaimGuard {
    fn drop(&mut self) {
        drop(self.heartbeat.take());
        if let Some(path) = &self.path {
            let _ = fs::remove_file(path);
        }
    }
}

/// FNV-1a 64-bit (no external hasher dependencies; stability across runs
/// and platforms matters more than collision resistance, and collisions
/// are verified away by storing the key text).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FnvWriter::new();
    h.update(bytes);
    h.0
}

/// Incremental FNV-1a sink; implements [`std::fmt::Write`] so `Debug`
/// output can be digested without materializing the string.
struct FnvWriter(u64);

impl FnvWriter {
    fn new() -> FnvWriter {
        FnvWriter(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.update(s.as_bytes());
        Ok(())
    }
}

/// Per-run key construction context.
///
/// The expensive part of a key is digesting function bodies; reachable
/// sets of different roots overlap heavily, so the builder digests every
/// defined function (and every module's struct table) exactly once, up
/// front, into a program-wide line map that [`KeyBuilder::root_key`]
/// merely slices per root. A warm `deepmc check` therefore pays one body
/// hash per function, not one per (root, reachable function) pair —
/// without this, key construction can cost more than the analysis it
/// saves on small programs. Precomputing (instead of filling a lazy
/// `RefCell` map) also makes the builder `Sync`, so a worker pool can
/// build all root keys concurrently.
pub struct KeyBuilder<'a> {
    program: &'a Program,
    dsa: &'a DsaResult,
    cg: &'a CallGraph,
    config_line: String,
    /// Pre-rendered digest line per defined function:
    /// `file|name|body-digest|module-digest`.
    fn_line: HashMap<FuncRef, String>,
}

impl<'a> KeyBuilder<'a> {
    pub fn new(
        config: &DeepMcConfig,
        program: &'a Program,
        dsa: &'a DsaResult,
        cg: &'a CallGraph,
    ) -> Self {
        let mut mod_hash: HashMap<u32, u64> = HashMap::new();
        let mut fn_line = HashMap::new();
        for fr in program.defined_funcs() {
            let mod_digest = *mod_hash.entry(fr.module).or_insert_with(|| {
                let m = &program.modules[fr.module as usize];
                let mut h = FnvWriter::new();
                let _ = write!(h, "{:?}", m.structs);
                // Call operands are interned handles, so a body digest
                // alone can't tell `call ext_a` from `call ext_b`: both
                // print as the same symbol index. The table that gives
                // those indices meaning must be part of the digest.
                let _ = write!(h, "{:?}", m.symbols.strings());
                h.0
            });
            let mut h = FnvWriter::new();
            let _ = write!(h, "{:?}", program.func(fr));
            let m = program.module_of(fr);
            fn_line.insert(
                fr,
                format!("{}|{}|{:016x}|{:016x}", m.file, program.func(fr).name, h.0, mod_digest),
            );
        }
        KeyBuilder { program, dsa, cg, config_line: format!("{config:?}"), fn_line }
    }

    /// Build the content key for one analysis root: checker config, the
    /// DSG's persistence classification of the root's parameters, and a
    /// digest of every transitively reachable defined function's body plus
    /// its module's file name, struct table, and symbol table.
    pub fn root_key(&self, root: FuncRef) -> String {
        let program = self.program;
        let mut s = String::new();
        let f = program.func(root);
        // v3: call operands are interned symbols, so function-body digests
        // changed shape and module digests now fold the symbol table; v2
        // (string-callee) entries must not satisfy v3 lookups.
        let _ = writeln!(s, "deepmc-cache-v3");
        let _ = writeln!(s, "config {}", self.config_line);
        let _ = writeln!(s, "root {}", f.name);

        // The only DSA facts trace collection reads: the persistence class
        // of each pointer parameter of the root.
        let g = self.dsa.graph(root);
        for (i, p) in f.params().iter().enumerate() {
            let kind = if let deepmc_pir::Ty::Ptr(_) = p.ty {
                g.param_node(i)
                    .map(|n| g.node(n).persist.unwrap_or(PersistKind::Unknown))
                    .unwrap_or(PersistKind::Unknown)
            } else {
                PersistKind::Unknown
            };
            let _ = writeln!(s, "param {i} {kind:?}");
        }

        // Transitively reachable defined functions, folded into one digest
        // in deterministic order. Each function contributes its module's
        // file name (appears in warning locations), its body digest, and
        // its module's struct- and symbol-table digest (field counts feed
        // the field-sensitive unmodified-writeback rule; symbols resolve
        // call operands).
        let mut reach = self.reachable(root);
        reach.sort();
        let mut fold = FnvWriter::new();
        for fr in reach.iter() {
            let line = self.fn_line.get(fr).expect("reachable functions are defined");
            let _ = writeln!(fold, "{line}");
        }
        let _ = writeln!(s, "reach n={} digest={:016x}", reach.len(), fold.0);
        s
    }

    /// Defined functions reachable from `root` through resolvable calls
    /// (including `root` itself), off the prebuilt call-graph adjacency.
    /// Membership goes through a `HashSet` — a `Vec::contains` scan here
    /// is quadratic on wide call graphs.
    fn reachable(&self, root: FuncRef) -> Vec<FuncRef> {
        let mut seen: HashSet<FuncRef> = HashSet::from([root]);
        let mut work = vec![root];
        let mut order = vec![root];
        while let Some(fr) = work.pop() {
            for &t in self.cg.callees_of(fr) {
                if seen.insert(t) {
                    order.push(t);
                    work.push(t);
                }
            }
        }
        order
    }
}

/// One-shot [`KeyBuilder::root_key`] (per-run digest sharing thrown away).
pub fn root_key(
    config: &DeepMcConfig,
    program: &Program,
    dsa: &DsaResult,
    root: FuncRef,
) -> String {
    let cg = CallGraph::build(program);
    KeyBuilder::new(config, program, dsa, &cg).root_key(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmc_models::PersistencyModel;
    use deepmc_pir::parse;

    fn program(src: &str) -> Program {
        Program::single(parse(src).unwrap())
    }

    const BASE: &str = r#"
module m
struct s { a: i64 }
fn leaf(%q: ptr s) {
entry:
  store %q.a, 1
  ret
}
fn main() {
entry:
  %x = palloc s
  call leaf(%x)
  fence
  ret
}
"#;

    fn key_of(src: &str) -> String {
        let p = program(src);
        let cg = CallGraph::build(&p);
        let dsa = DsaResult::analyze(&p, &cg);
        let config = DeepMcConfig::new(PersistencyModel::Strict);
        let root = p.resolve("main").unwrap();
        root_key(&config, &p, &dsa, root)
    }

    /// An entry exercising every packed field: shared strings, all three
    /// scalar deltas, and warnings with and without fix hints.
    fn rich_entry(key: &str) -> CacheEntry {
        let warning = |line: u32, class: BugClass, fix: Option<FixHint>| Warning {
            file: "a.c".into(),
            line,
            class,
            function: "f".into(),
            root: "main".into(),
            message: format!("warning at line {line}"),
            model: PersistencyModel::Epoch,
            dynamic: line % 2 == 0,
            fix,
        };
        CacheEntry {
            key: key.into(),
            root: "main".into(),
            warnings: vec![
                warning(1, BugClass::UnflushedWrite, None),
                warning(
                    2,
                    BugClass::UnflushedWrite,
                    Some(FixHint::FlushAndFenceStore { store_line: 2 }),
                ),
                warning(
                    3,
                    BugClass::UnflushedWrite,
                    Some(FixHint::LogObjectBeforeStore { store_line: 3 }),
                ),
                warning(
                    4,
                    BugClass::MissingPersistBarrier,
                    Some(FixHint::InsertFenceAfter { line: 4 }),
                ),
                warning(
                    5,
                    BugClass::MissingBarrierNestedTx,
                    Some(FixHint::InsertFenceBefore { line: 5 }),
                ),
                warning(
                    6,
                    BugClass::RedundantWriteback,
                    Some(FixHint::RemoveWriteback { line: 6 }),
                ),
                warning(
                    7,
                    BugClass::SemanticMismatch,
                    Some(FixHint::MovePersistToStore { store_line: 7, flush_line: 9 }),
                ),
                warning(
                    8,
                    BugClass::UnmodifiedWriteback,
                    Some(FixHint::NarrowWriteback { line: 8 }),
                ),
            ],
            paths_pruned: 2,
            events_truncated: 1,
            traces: 5,
        }
    }

    #[test]
    fn key_is_stable_across_runs() {
        assert_eq!(key_of(BASE), key_of(BASE));
    }

    #[test]
    fn key_changes_when_a_callee_changes() {
        let changed = BASE.replace("store %q.a, 1", "store %q.a, 2");
        assert_ne!(key_of(BASE), key_of(&changed));
    }

    #[test]
    fn key_changes_when_an_extern_callee_is_renamed() {
        // The two programs' defined bodies print identically — the call
        // stores a symbol index, and the extern is not a defined function
        // — so only the symbol-table fold in the module digest can tell
        // them apart.
        let a = BASE.replace("fence", "call ext_a(%x)") + "extern fn ext_a(%p: ptr s)\n";
        let b = BASE.replace("fence", "call ext_b(%x)") + "extern fn ext_b(%p: ptr s)\n";
        assert_ne!(key_of(&a), key_of(&b));
    }

    #[test]
    fn key_changes_with_config() {
        let p = program(BASE);
        let cg = CallGraph::build(&p);
        let dsa = DsaResult::analyze(&p, &cg);
        let root = p.resolve("main").unwrap();
        let strict = DeepMcConfig::new(PersistencyModel::Strict);
        let epoch = DeepMcConfig::new(PersistencyModel::Epoch);
        assert_ne!(root_key(&strict, &p, &dsa, root), root_key(&epoch, &p, &dsa, root));
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        let entry = rich_entry("k1");
        assert!(cache.lookup("k1").is_none(), "cold cache misses");
        cache.store(&entry);
        assert_eq!(cache.lookup("k1"), Some(entry));
        assert!(cache.lookup("k2").is_none(), "different key misses");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn claim_excludes_second_claimer_until_released() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-claim-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        let guard = cache.claim("k").expect("first claim wins");
        assert!(cache.claim("k").is_none(), "held claim must exclude");
        drop(guard);
        let again = cache.claim("k");
        assert!(again.is_some(), "released claim is re-claimable");
        drop(again);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn waiter_sees_entry_stored_by_claim_holder() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-wait-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        let entry = CacheEntry {
            key: "k".into(),
            root: "main".into(),
            warnings: Vec::new(),
            paths_pruned: 0,
            events_truncated: 0,
            traces: 1,
        };
        let guard = cache.claim("k").expect("claim");
        let got = std::thread::scope(|s| {
            let waiter = s.spawn(|| cache.wait_for("k"));
            std::thread::sleep(Duration::from_millis(10));
            cache.store(&entry);
            drop(guard);
            waiter.join().unwrap()
        });
        assert_eq!(got, Some(entry));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_claim_without_entry_is_broken() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-stale-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir).with_staleness(Duration::from_millis(100));
        // Simulate a dead holder: the claim file exists but nothing
        // heartbeats it, as if the holding process was killed. Age the
        // mtime past the cutoff so the test doesn't sleep for it.
        fs::create_dir_all(&dir).unwrap();
        let claim = cache.claim_path("k");
        fs::write(&claim, b"").unwrap();
        let aged = SystemTime::now() - Duration::from_secs(5);
        fs::OpenOptions::new().write(true).open(&claim).unwrap().set_modified(aged).unwrap();
        assert_eq!(cache.wait_for("k"), None, "no entry ever appears");
        assert!(cache.claim("k").is_some(), "stale claim was broken");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_but_alive_holder_is_not_declared_dead() {
        // Regression: wait_for used to break any claim older than a fixed
        // ~1s, double-computing behind every legitimately slow holder.
        // With heartbeating, a holder that takes many times the staleness
        // cutoff must still win the wait.
        let dir = std::env::temp_dir().join(format!("deepmc-cache-slow-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir).with_staleness(Duration::from_millis(80));
        let entry = CacheEntry {
            key: "k".into(),
            root: "main".into(),
            warnings: Vec::new(),
            paths_pruned: 0,
            events_truncated: 0,
            traces: 3,
        };
        let guard = cache.claim("k").expect("claim");
        let got = std::thread::scope(|s| {
            let waiter = s.spawn(|| cache.wait_for("k"));
            // Holder "computes" for 5x the staleness cutoff.
            std::thread::sleep(Duration::from_millis(400));
            cache.store(&entry);
            drop(guard);
            waiter.join().unwrap()
        });
        assert_eq!(got, Some(entry), "waiter must get the slow holder's entry, not None");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_once() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-quar-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        let entry = rich_entry("k");
        cache.store(&entry);
        let path = cache.path_for("k");
        // Flip a payload byte without updating the header checksum.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.lookup("k").is_none(), "corrupt entry is a miss");
        assert_eq!(cache.quarantined_count(), 1);
        assert!(!path.exists(), "corrupt file was moved out of the way");
        let quarantined: Vec<_> =
            fs::read_dir(dir.join(QUARANTINE_DIR)).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(quarantined.len(), 1, "the bad entry landed in quarantine/");
        // Self-healing: the key is now a clean miss and can be re-stored.
        assert!(cache.lookup("k").is_none());
        assert_eq!(cache.quarantined_count(), 1, "a clean miss quarantines nothing");
        cache.store(&entry);
        assert_eq!(cache.lookup("k"), Some(entry));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unparsable_entry_is_quarantined() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-garbage-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(cache.path_for("k"), b"not a cache entry at all").unwrap();
        assert!(cache.lookup("k").is_none());
        assert_eq!(cache.quarantined_count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bumped_schema_version_is_a_clean_miss() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-ver-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        cache.store(&rich_entry("k"));
        let path = cache.path_for("k");
        // A future writer's entry: same magic, schema version + 1.
        let mut bytes = fs::read(&path).unwrap();
        let bumped = (SCHEMA_VERSION + 1).to_le_bytes();
        bytes[4] = bumped[0];
        bytes[5] = bumped[1];
        fs::write(&path, &bytes).unwrap();
        assert!(cache.lookup("k").is_none(), "foreign-version entry misses");
        assert_eq!(cache.quarantined_count(), 0, "a version miss is clean, not quarantine");
        assert_eq!(cache.version_miss_count(), 1);
        assert!(path.exists(), "the foreign entry is left for its owner (or our overwrite)");
        // This run's store overwrites it and the key works again.
        cache.store(&rich_entry("k"));
        assert_eq!(cache.lookup("k"), Some(rich_entry("k")));
        assert_eq!(cache.version_miss_count(), 1, "a valid entry is not a version miss");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_endianness_is_a_clean_miss() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-end-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        cache.store(&rich_entry("k"));
        let path = cache.path_for("k");
        let mut bytes = fs::read(&path).unwrap();
        bytes[6] = 0x02; // a big-endian writer's marker
        fs::write(&path, &bytes).unwrap();
        assert!(cache.lookup("k").is_none(), "foreign-endian entry misses");
        assert_eq!(cache.quarantined_count(), 0);
        assert_eq!(cache.version_miss_count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_json_entry_is_quarantined_on_miss() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-json-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        fs::create_dir_all(&dir).unwrap();
        let legacy = cache.legacy_path_for("k");
        fs::write(&legacy, b"{\"key\":\"k\"}\ndeepmc-entry-fnv1a:0000000000000000\n").unwrap();
        assert!(cache.lookup("k").is_none(), "JSON-era entry can't serve a binary lookup");
        assert_eq!(cache.quarantined_count(), 1, "the stale format is quarantined once");
        assert!(!legacy.exists());
        // The key is now an ordinary cold key.
        assert!(cache.lookup("k").is_none());
        assert_eq!(cache.quarantined_count(), 1);
        cache.store(&rich_entry("k"));
        assert_eq!(cache.lookup("k"), Some(rich_entry("k")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn collision_with_wrong_key_is_a_miss_and_quarantined() {
        let dir = std::env::temp_dir().join(format!("deepmc-cache-coll-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = AnalysisCache::open(&dir);
        // Simulate a colliding file: write `other`'s (well-formed) entry
        // where `mine` would hash.
        fs::create_dir_all(&dir).unwrap();
        let mine_path = dir.join(format!("{:016x}.bin", fnv1a(b"mine")));
        fs::write(&mine_path, encode_entry(&rich_entry("other"))).unwrap();
        assert!(cache.lookup("mine").is_none(), "key text mismatch rejects the entry");
        assert_eq!(cache.quarantined_count(), 1, "mismatched entry is quarantined, not re-missed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_checksum_roundtrip_and_rejection() {
        let entry = rich_entry("k");
        let encoded = encode_entry(&entry);
        assert_eq!(encoded[0..4], ENTRY_MAGIC);
        assert!(matches!(decode_entry(&encoded), Ok(e) if e == entry));
        let torn = &encoded[..encoded.len() / 2];
        assert!(
            matches!(decode_entry(torn), Err(DecodeFail::Corrupt(_))),
            "torn file rejected as corrupt"
        );
        assert!(
            matches!(decode_entry(&encoded[HEADER_LEN..]), Err(DecodeFail::Corrupt(_))),
            "headerless payload rejected"
        );
    }

    #[test]
    fn string_table_deduplicates_repeated_strings() {
        let entry = rich_entry("k");
        let encoded = encode_entry(&entry);
        // The 8 warnings share file/function/root strings and each adds a
        // distinct message: key, "main", "a.c", "f", plus 8 messages = 12.
        let n = u32::from_le_bytes(encoded[HEADER_LEN..HEADER_LEN + 4].try_into().unwrap());
        assert_eq!(n, 12, "repeated strings must be interned once");
    }
}
