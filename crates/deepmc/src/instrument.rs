//! The program instrumenter (paper §4.4, Fig. 8 step ⑤).
//!
//! "Unlike existing dynamic analysis tools that annotate all memory
//! accesses in a program, DeepMC annotates only the essential memory
//! accesses for persistency": (1) DSA screens out objects that never live
//! in NVM, and (2) only accesses inside programmer-annotated strand/epoch
//! regions are tracked.
//!
//! This module computes the *instrumentation plan*: the exact set of
//! store/load sites whose execution must invoke the runtime library. The
//! interpreter applies the equivalent selection at runtime through
//! [`deepmc_interp::InstrumentScope`]; the plan makes the selection a
//! first-class, testable artifact and feeds the instrumentation-cost
//! ablation bench (how many sites each strategy instruments).

use deepmc_analysis::dsa::PersistKind;
use deepmc_analysis::{CallGraph, DsaResult, FuncRef, Program};
use deepmc_pir::{Inst, Terminator};
use std::collections::{HashMap, HashSet};

/// Which accesses the instrumenter selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanScope {
    /// Persistent accesses inside annotated strand regions (DeepMC).
    AnnotatedRegions,
    /// Every persistent access (what a non-selective NVM checker pays).
    AllPersistent,
    /// Every memory access (what a stock ThreadSanitizer pays).
    Everything,
}

/// One instrumented site: function, block index, instruction index.
pub type Site = (FuncRef, u32, u32);

/// The computed plan.
#[derive(Debug, Clone)]
pub struct InstrumentationPlan {
    pub scope: PlanScope,
    pub sites: HashSet<Site>,
    /// Total store/load instructions inspected (the denominator for the
    /// selectivity ratio).
    pub total_mem_ops: usize,
}

impl InstrumentationPlan {
    /// Fraction of memory operations instrumented.
    pub fn selectivity(&self) -> f64 {
        if self.total_mem_ops == 0 {
            0.0
        } else {
            self.sites.len() as f64 / self.total_mem_ops as f64
        }
    }

    /// Build the plan for `program` under `scope`.
    pub fn build(program: &Program, dsa: &DsaResult, scope: PlanScope) -> InstrumentationPlan {
        let mut sites = HashSet::new();
        let mut total = 0usize;
        for fr in program.defined_funcs() {
            let f = program.func(fr);
            let g = dsa.graph(fr);
            let in_region = strand_region_blocks(f);
            for bi in 0..f.blocks.len() {
                // Track the strand depth as it evolves *within* the block:
                // entry depth comes from the fixpoint, markers adjust it.
                let mut depth = in_region.get(&(bi as u32)).copied().unwrap_or(0);
                for (ii, si) in f.block_insts(bi).iter().enumerate() {
                    match &si.inst {
                        Inst::StrandBegin => depth += 1,
                        Inst::StrandEnd => depth = depth.saturating_sub(1),
                        Inst::Store { place, .. } | Inst::Load { place, .. } => {
                            total += 1;
                            let persistent = matches!(
                                g.local_persist(place.base),
                                PersistKind::Persistent | PersistKind::Unknown
                            );
                            let selected = match scope {
                                PlanScope::Everything => true,
                                PlanScope::AllPersistent => persistent,
                                PlanScope::AnnotatedRegions => persistent && depth > 0,
                            };
                            if selected {
                                sites.insert((fr, bi as u32, ii as u32));
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        InstrumentationPlan { scope, sites, total_mem_ops: total }
    }
}

/// Strand-region depth at each block's *entry*, by fixpoint over the CFG
/// (the verifier guarantees consistent depths across joins).
fn strand_region_blocks(f: &deepmc_pir::Function) -> HashMap<u32, u32> {
    let mut depth_at: HashMap<u32, u32> = HashMap::new();
    let mut work = vec![(0u32, 0u32)];
    while let Some((bi, depth)) = work.pop() {
        if let Some(&d) = depth_at.get(&bi) {
            if d >= depth {
                continue;
            }
        }
        depth_at.insert(bi, depth);
        let b = &f.blocks[bi as usize];
        let mut d = depth;
        for si in f.insts_of(b) {
            match si.inst {
                Inst::StrandBegin => d += 1,
                Inst::StrandEnd => d = d.saturating_sub(1),
                _ => {}
            }
        }
        match &b.term.inst {
            Terminator::Ret { .. } => {}
            t => {
                for s in t.successors() {
                    work.push((s.0, d));
                }
            }
        }
    }
    depth_at
}

/// Summary line for reports: how selective each strategy is on `program`.
pub fn selectivity_report(program: &Program) -> Vec<(PlanScope, usize, usize)> {
    let cg = CallGraph::build(program);
    let dsa = DsaResult::analyze(program, &cg);
    [PlanScope::AnnotatedRegions, PlanScope::AllPersistent, PlanScope::Everything]
        .into_iter()
        .map(|scope| {
            let plan = InstrumentationPlan::build(program, &dsa, scope);
            (scope, plan.sites.len(), plan.total_mem_ops)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmc_pir::parse;

    fn plan(src: &str, scope: PlanScope) -> InstrumentationPlan {
        let p = Program::single(parse(src).unwrap());
        let cg = CallGraph::build(&p);
        let dsa = DsaResult::analyze(&p, &cg);
        InstrumentationPlan::build(&p, &dsa, scope)
    }

    const SRC: &str = r#"
module m
struct s { a: i64, b: i64 }
fn main() {
entry:
  %x = palloc s
  %y = valloc s
  store %y.a, 1
  store %x.a, 1
  strand_begin
  store %x.b, 2
  %v = load %x.b
  store %y.b, 3
  strand_end
  ret
}
"#;

    #[test]
    fn annotated_regions_is_most_selective() {
        let annotated = plan(SRC, PlanScope::AnnotatedRegions);
        let persistent = plan(SRC, PlanScope::AllPersistent);
        let everything = plan(SRC, PlanScope::Everything);
        assert_eq!(everything.total_mem_ops, 5);
        assert_eq!(everything.sites.len(), 5);
        // Persistent: 3 accesses through %x (volatile %y excluded).
        assert_eq!(persistent.sites.len(), 3);
        // Annotated: only the two %x accesses inside the strand.
        assert_eq!(annotated.sites.len(), 2);
        assert!(annotated.selectivity() < persistent.selectivity());
        assert!(persistent.selectivity() < everything.selectivity());
    }

    #[test]
    fn region_depth_propagates_across_blocks() {
        let src = r#"
module m
struct s { a: i64 }
fn main(%c: i64) {
entry:
  %x = palloc s
  strand_begin
  br %c, inside, out
inside:
  store %x.a, 1
  jmp out
out:
  strand_end
  store %x.a, 2
  ret
}
"#;
        let p = plan(src, PlanScope::AnnotatedRegions);
        // Only the store in `inside` is within the region.
        assert_eq!(p.sites.len(), 1);
    }

    #[test]
    fn selectivity_of_empty_program_is_zero() {
        let p = plan("module m\nfn main() {\nentry:\n  ret\n}\n", PlanScope::Everything);
        assert_eq!(p.selectivity(), 0.0);
        assert_eq!(p.total_mem_ops, 0);
    }
}
