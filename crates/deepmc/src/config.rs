//! Checker configuration.
//!
//! "DeepMC only requires users to specify the implemented model with
//! -strict, -epoch or -strand flag at compilation" (paper §4.5). Everything
//! else has sensible defaults matching the paper's bounds.

use deepmc_analysis::TraceConfig;
use deepmc_models::PersistencyModel;

/// Configuration of a DeepMC run.
#[derive(Debug, Clone)]
pub struct DeepMcConfig {
    /// The persistency model the program claims to implement — the single
    /// flag the user must provide.
    pub model: PersistencyModel,
    /// Trace-collection bounds (paper defaults: loop 10, recursion 5).
    pub trace: TraceConfig,
    /// Run the model-violation rules (Table 4).
    pub check_violations: bool,
    /// Run the performance rules (Table 5).
    pub check_performance: bool,
    /// Use the DSA's field-sensitive addresses (the default). Disabling
    /// degrades every address to whole-object granularity — the ablation
    /// for the paper's §5.1 claim that field sensitivity is what avoids
    /// false negatives on "flush an unmodified object" bugs.
    pub field_sensitive: bool,
    /// Chaos injection: analysis roots (by function name) whose check
    /// deliberately panics. Exercises the panic-isolation path in tests
    /// and CI; the injected panic degrades the root to a `RootFailure`
    /// instead of aborting the run.
    pub chaos_panic_roots: Vec<String>,
}

impl DeepMcConfig {
    /// Defaults for `model`: both rule families on, paper trace bounds.
    pub fn new(model: PersistencyModel) -> Self {
        DeepMcConfig {
            model,
            trace: TraceConfig::default(),
            check_violations: true,
            check_performance: true,
            field_sensitive: true,
            chaos_panic_roots: Vec::new(),
        }
    }

    /// Parse from the command-line flag spelling (`-strict` / `-epoch` /
    /// `-strand`).
    pub fn from_flag(flag: &str) -> Result<Self, String> {
        Ok(DeepMcConfig::new(flag.parse()?))
    }

    /// Builder-style: disable performance rules.
    pub fn violations_only(mut self) -> Self {
        self.check_performance = false;
        self
    }

    /// Builder-style: disable violation rules.
    pub fn performance_only(mut self) -> Self {
        self.check_violations = false;
        self
    }

    /// Builder-style: degrade to object-granularity addresses (ablation).
    pub fn field_insensitive(mut self) -> Self {
        self.field_sensitive = false;
        self
    }

    /// Builder-style: inject a deliberate panic into `root`'s check
    /// (chaos testing of the panic-isolation path).
    pub fn with_chaos_panic(mut self, root: impl Into<String>) -> Self {
        self.chaos_panic_roots.push(root.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_flag_parses_all_models() {
        for flag in ["-strict", "-epoch", "-strand"] {
            let c = DeepMcConfig::from_flag(flag).unwrap();
            assert_eq!(c.model.flag(), flag);
            assert!(c.check_violations && c.check_performance);
        }
        assert!(DeepMcConfig::from_flag("-eager").is_err());
    }

    #[test]
    fn builders_toggle_rule_families() {
        let c = DeepMcConfig::new(PersistencyModel::Strict).violations_only();
        assert!(c.check_violations && !c.check_performance);
        let c = DeepMcConfig::new(PersistencyModel::Strict).performance_only();
        assert!(!c.check_violations && c.check_performance);
    }
}
