//! # DeepMC — detecting deep memory persistency bugs in NVM programs
//!
//! This crate is the toolkit of the paper (PPoPP'22): given an NVM program
//! (as PIR modules) and the persistency model its developers intend to
//! implement (a single `-strict`/`-epoch`/`-strand` flag), DeepMC reports
//! *persistency model violations* (crash-consistency risks) and
//! *performance bugs* (unnecessary persistent operations).
//!
//! ## Pipeline (paper Fig. 8)
//!
//! 1. Offline: build CFGs and the call graph (step ①), collect bounded
//!    program-order traces (step ②), run Data Structure Analysis for
//!    field-sensitive memory disambiguation (step ③), and apply the
//!    checking rules of Tables 4 and 5 to every trace (step ④) — see
//!    [`static_checker`].
//! 2. Online: instrument persistent operations inside annotated regions
//!    (step ⑤) and check strand dependences with happens-before race
//!    detection over shadow memory at runtime (step ⑥) — see [`dynamic`].
//!
//! ## Quick start
//!
//! ```
//! use deepmc::{check_source, DeepMcConfig};
//! use deepmc_models::PersistencyModel;
//!
//! let src = r#"
//! module demo
//! file "demo.c"
//! struct rec { a: i64, b: i64 }
//! fn main() {
//! entry:
//!   %r = palloc rec
//!   store %r.a, 1
//!   // BUG: %r.a is never flushed
//!   ret
//! }
//! "#;
//! let report = check_source(src, &DeepMcConfig::new(PersistencyModel::Strict)).unwrap();
//! assert_eq!(report.warnings.len(), 1);
//! assert_eq!(report.warnings[0].class, deepmc_models::BugClass::UnflushedWrite);
//! ```

pub mod cache;
pub mod config;
pub mod dynamic;
pub mod fixer;
pub mod instrument;
pub mod pool;
pub mod report;
pub mod static_checker;
pub mod stats;
pub mod suppress;

pub use cache::{AnalysisCache, CacheRunStats};
pub use config::DeepMcConfig;
pub use report::{FixHint, Report, RootFailure, Warning};
pub use static_checker::StaticChecker;

use deepmc_analysis::Program;
use deepmc_pir::{parse, ParseError};

/// Errors from the one-call driver APIs.
#[derive(Debug)]
pub enum CheckError {
    Parse(ParseError),
    Verify(deepmc_pir::verify::VerifyError),
    Link(deepmc_analysis::program::DuplicateFunction),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Parse(e) => write!(f, "{e}"),
            CheckError::Verify(e) => write!(f, "{e}"),
            CheckError::Link(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Parse, verify, link, and statically check one PIR source text.
pub fn check_source(src: &str, config: &DeepMcConfig) -> Result<Report, CheckError> {
    let module = parse(src).map_err(CheckError::Parse)?;
    deepmc_pir::verify::verify_module(&module).map_err(CheckError::Verify)?;
    Ok(StaticChecker::new(config.clone()).check_program(&Program::single(module)))
}

/// Parse, verify, link, and statically check several PIR sources as one
/// program.
pub fn check_sources(srcs: &[&str], config: &DeepMcConfig) -> Result<Report, CheckError> {
    let mut modules = Vec::with_capacity(srcs.len());
    for s in srcs {
        let m = parse(s).map_err(CheckError::Parse)?;
        deepmc_pir::verify::verify_module(&m).map_err(CheckError::Verify)?;
        modules.push(m);
    }
    let program = Program::new(modules).map_err(CheckError::Link)?;
    Ok(StaticChecker::new(config.clone()).check_program(&program))
}
