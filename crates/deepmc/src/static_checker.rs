//! The static checker (paper §4.3, Fig. 8 step ④).
//!
//! The checker scans every collected trace in program order and applies the
//! checking rules of Tables 4 and 5. A trace is already address-resolved
//! (every event names an abstract object + field, courtesy of the DSG-backed
//! trace collector), so rules reduce to overlap/coverage tests.
//!
//! Rule timing, as implemented:
//!
//! * **UnflushedWrite** fires at the point durability is due: transaction
//!   commit (for unlogged in-transaction writes, Fig. 2), epoch end (for
//!   epoch-model writes), or end of trace.
//! * **MultipleWritesAtOnce** fires at a fence preceded by ≥2 distinct,
//!   all-flushed writes outside any transaction/epoch (batching inside a
//!   transaction is the framework's job; unflushed writes are reported by
//!   other rules instead).
//! * **MissingPersistBarrier** fires when a flush is still unfenced at the
//!   next persistent write or `tx_begin` (strict, Fig. 3), when a new epoch
//!   begins without a barrier since the previous epoch ended (epoch), and
//!   for a trailing unfenced flush under strict.
//! * **MissingBarrierNestedTx** fires when a nested epoch/transaction that
//!   performed persistent work ends without a barrier in tail position
//!   (Fig. 4).
//! * **SemanticMismatch** fires when a write becomes durable only in a
//!   later fence-delimited persist unit (Fig. 1: `nbuckets` persisted after
//!   the buckets' barrier), and, under epoch models, when two consecutive
//!   epochs write the same object (atomicity split across epochs).
//! * **InterStrandDependency** has a static variant here (overlapping
//!   sibling-strand address sets with a write involved); the authoritative
//!   check is the dynamic one.
//! * **UnmodifiedWriteback** fires for a flush with no dirty data under it,
//!   and — field-sensitively — for a whole-object flush when only a proper
//!   subset of fields is dirty (Fig. 5).
//! * **RedundantWriteback / RedundantPersistInTx** fire for re-flushes of
//!   clean data (Fig. 6), resp. repeated persists of one object inside a
//!   transaction.
//! * **EmptyDurableTx** fires at commit of a transaction that performed no
//!   persistent write on this path (Fig. 7).

use crate::cache::{self, AnalysisCache, CacheEntry, CacheRunStats};
use crate::config::DeepMcConfig;
use crate::report::{FixHint, Report, RootFailure, Warning};
use deepmc_analysis::trace::{EvKind, EvLoc};
use deepmc_analysis::{
    pool, Addr, CallGraph, DsaResult, FieldSel, FuncRef, ObjId, Program, Trace, TraceCollector,
    TraceEvent,
};
use deepmc_models::{BugClass, PersistencyModel};
use deepmc_obs as obs;
use std::collections::BTreeSet;

/// Span/event annotation naming an analysis root. Only called when a
/// recorder is active (the `to_string` allocates).
fn root_arg(program: &Program, root: FuncRef) -> Vec<(&'static str, String)> {
    vec![("root", program.func(root).name.clone())]
}

/// What one analysis root contributed to a run; produced by one worker,
/// merged in root order by [`StaticChecker::check_program_with_jobs`].
struct RootOutcome {
    /// Raw (pre-dedup) warnings from this root's traces.
    raw: Vec<Warning>,
    traces: u64,
    paths_pruned: u64,
    events_truncated: u64,
    /// The root's walk hit its wall-clock or step budget; the warnings are
    /// from a partial trace set and the result is never cached.
    timed_out: bool,
    source: RootSource,
}

enum RootSource {
    CacheHit,
    Computed { stored: bool },
}

impl RootOutcome {
    fn from_entry(entry: CacheEntry) -> RootOutcome {
        RootOutcome {
            raw: entry.warnings,
            traces: entry.traces,
            paths_pruned: entry.paths_pruned,
            events_truncated: entry.events_truncated,
            timed_out: false,
            source: RootSource::CacheHit,
        }
    }
}

/// The static checker. Create one per configuration and feed it programs or
/// traces.
#[derive(Debug, Clone)]
pub struct StaticChecker {
    config: DeepMcConfig,
}

impl StaticChecker {
    pub fn new(config: DeepMcConfig) -> Self {
        StaticChecker { config }
    }

    /// Full pipeline: call graph → DSA → traces → rules → deduplicated
    /// report.
    ///
    /// Mixed-model programs (the paper's §4.5 limitation, lifted here):
    /// a root function carrying a `model_strict`/`model_epoch`/
    /// `model_strand` attribute is checked under that model instead of the
    /// global flag.
    pub fn check_program(&self, program: &Program) -> Report {
        self.check_program_cached(program, None).0
    }

    /// [`StaticChecker::check_program`], optionally backed by an on-disk
    /// incremental cache. Worker count comes from `DEEPMC_JOBS` /
    /// available cores; see [`StaticChecker::check_program_with_jobs`].
    pub fn check_program_cached(
        &self,
        program: &Program,
        cache: Option<&AnalysisCache>,
    ) -> (Report, CacheRunStats) {
        self.check_program_with_jobs(program, cache, 0)
    }

    /// [`StaticChecker::check_program_cached`] with an explicit worker
    /// count: `0` resolves `DEEPMC_JOBS` / available cores, `1` forces the
    /// sequential pipeline, `n > 1` fans the analysis roots over a
    /// work-stealing pool of `n` workers sharing one trace collector (and
    /// therefore one callee-summary memo table).
    ///
    /// The pipeline runs root by root. With a cache, each root's content
    /// key ([`cache::root_key`]) is looked up first; a hit replays the
    /// stored raw warnings and pruning/truncation deltas instead of
    /// collecting and scanning traces, so the report — notes included —
    /// is byte-identical to a cold run. Cold roots are *claimed*
    /// ([`AnalysisCache::claim`]) so two workers never double-compute one.
    /// CFG, call-graph, and DSA construction always run (they are cheap
    /// and the key depends on DSA facts).
    ///
    /// Determinism: per-root results are merged in root order and
    /// [`Report::from_raw`] fully sorts before deduplicating, so the
    /// report and the cache contents are byte-identical for every worker
    /// count.
    pub fn check_program_with_jobs(
        &self,
        program: &Program,
        cache: Option<&AnalysisCache>,
        jobs: usize,
    ) -> (Report, CacheRunStats) {
        let jobs = pool::resolve_jobs_request(jobs);
        let cg = {
            let _s = obs::span("cfg");
            CallGraph::build(program)
        };
        let dsa = {
            let _s = obs::span("dsa");
            DsaResult::analyze(program, &cg)
        };
        let collector = TraceCollector::new(program, &dsa, self.config.trace.clone());
        let keys = cache.map(|_| {
            let _s = obs::span("cache.keys");
            cache::KeyBuilder::new(&self.config, program, &dsa, &cg)
        });
        let roots = collector.analysis_roots(&cg);
        obs::counter("check.roots", roots.len() as u64);
        let quarantined_before = cache.map(|c| c.quarantined_count()).unwrap_or(0);
        let outcomes = {
            // One driver-side span over the whole fan-out, so the
            // top-level phases partition the wall clock even when the
            // per-root traces/rules spans land on worker threads.
            let _s = obs::span_lazy("roots", || vec![("jobs", jobs.to_string())]);
            // Panic isolation: a panicking root (pathological input, or
            // injected chaos) becomes an Err slot here and a RootFailure
            // below, instead of aborting the whole run.
            pool::run_indexed_caught(jobs, roots.clone(), |_, root| {
                self.check_root(program, &collector, cache, keys.as_ref(), root)
            })
        };
        let memo = collector.memo_stats();
        obs::counter("trace.memo.hits", memo.hits);
        obs::counter("trace.memo.misses", memo.misses);
        obs::counter("trace.memo.skips", memo.skips);
        obs::counter("trace.memo.summaries", memo.summaries);

        // Deterministic merge: outcomes arrive in root order regardless of
        // scheduling, and every aggregate below is associative.
        let mut raw = Vec::new();
        let mut stats = CacheRunStats::default();
        let mut paths_pruned = 0u64;
        let mut events_truncated = 0u64;
        let mut timeouts = 0u64;
        let mut failures: Vec<RootFailure> = Vec::new();
        for (i, result) in outcomes.into_iter().enumerate() {
            let o = match result {
                Ok(o) => o,
                Err(panic) => {
                    failures.push(RootFailure { root: program.func(roots[i]).name.clone(), panic });
                    continue;
                }
            };
            match o.source {
                RootSource::CacheHit => stats.hits += 1,
                RootSource::Computed { stored } => {
                    if cache.is_some() {
                        stats.misses += 1;
                    }
                    if stored {
                        stats.stores += 1;
                    }
                }
            }
            if o.timed_out {
                timeouts += 1;
            }
            stats.traces += o.traces;
            paths_pruned += o.paths_pruned;
            events_truncated += o.events_truncated;
            raw.extend(o.raw);
        }
        if !failures.is_empty() {
            obs::counter("robust.panics", failures.len() as u64);
        }
        if timeouts > 0 {
            obs::counter("robust.timeouts", timeouts);
        }
        stats.quarantined = cache.map(|c| c.quarantined_count() - quarantined_before).unwrap_or(0);
        obs::counter("check.traces", stats.traces);
        obs::counter("check.paths_pruned", paths_pruned);
        obs::counter("check.events_truncated", events_truncated);
        obs::counter("check.warnings_raw", raw.len() as u64);
        if cache.is_some() {
            obs::counter("cache.hits", stats.hits);
            obs::counter("cache.misses", stats.misses);
            obs::counter("cache.stores", stats.stores);
        }
        let _report_span = obs::span("report");
        let mut report = Report::from_raw(raw);
        if paths_pruned > 0 {
            report.push_note(format!(
                "path budget exhausted: {paths_pruned} branch fork(s) explored one \
                 successor only (max_paths = {}); coverage is incomplete",
                self.config.trace.max_paths
            ));
        }
        if events_truncated > 0 {
            report.push_note(format!(
                "trace length cap hit: {events_truncated} event(s) dropped \
                 (max_trace_len = {}); coverage is incomplete",
                self.config.trace.max_trace_len
            ));
        }
        if timeouts > 0 {
            report.push_note(format!(
                "analysis budget exceeded: {timeouts} root(s) stopped early \
                 and contributed partial results"
            ));
            report.mark_degraded();
        }
        // Failures arrive in root order (the merge above walks outcomes by
        // index), so the degraded report is schedule-independent too.
        for failure in failures {
            report.push_failure(failure);
        }
        (report, stats)
    }

    /// One worker's unit of work: produce everything root `root`
    /// contributes to the run. Pure function of (checker, program, root)
    /// plus cache state, so workers can run it in any order.
    fn check_root(
        &self,
        program: &Program,
        collector: &TraceCollector<'_>,
        cache: Option<&AnalysisCache>,
        keys: Option<&cache::KeyBuilder<'_>>,
        root: FuncRef,
    ) -> RootOutcome {
        let key = keys.map(|kb| kb.root_key(root));
        if let (Some(c), Some(k)) = (cache, key.as_deref()) {
            if let Some(entry) = c.lookup(k) {
                if obs::active() {
                    obs::instant_args("cache.hit", root_arg(program, root));
                }
                return RootOutcome::from_entry(entry);
            }
            // Cold root. Claim it so a concurrent worker — here or in
            // another process sharing the directory — doesn't recompute.
            if let Some(_guard) = c.claim(k) {
                let mut out = self.compute_root(program, collector, root);
                self.store_root(c, k.to_string(), program, root, &mut out);
                return out;
            }
            // Claim lost: the holder is computing. Wait for its entry;
            // if the claim turns out stale (holder died), compute here.
            obs::counter("cache.claim_waits", 1);
            let waited = {
                let _s = obs::span_lazy("cache.wait", || root_arg(program, root));
                c.wait_for(k)
            };
            if let Some(entry) = waited {
                return RootOutcome::from_entry(entry);
            }
            let mut out = self.compute_root(program, collector, root);
            self.store_root(c, k.to_string(), program, root, &mut out);
            return out;
        }
        self.compute_root(program, collector, root)
    }

    /// Collect and scan one root's traces (the uncached path).
    fn compute_root(
        &self,
        program: &Program,
        collector: &TraceCollector<'_>,
        root: FuncRef,
    ) -> RootOutcome {
        let name = &program.func(root).name;
        if self.config.chaos_panic_roots.iter().any(|r| r == name) {
            panic!("chaos: injected panic in root `{name}`");
        }
        let (traces, trunc) = {
            let _s = obs::span_lazy("traces", || root_arg(program, root));
            collector.collect_root_counted(root)
        };
        let model = model_override(program.func(root)).unwrap_or(self.config.model);
        let mut config = self.config.clone();
        config.model = model;
        let _s = obs::span_lazy("rules", || root_arg(program, root));
        let mut raw = Vec::new();
        for t in &traces {
            let mut scan = Scan::new(&config, t);
            for ev in &t.events {
                scan.step(ev);
            }
            raw.extend(scan.finish());
        }
        RootOutcome {
            raw,
            traces: traces.len() as u64,
            paths_pruned: trunc.paths_pruned,
            events_truncated: trunc.events_truncated,
            timed_out: trunc.timed_out,
            source: RootSource::Computed { stored: false },
        }
    }

    fn store_root(
        &self,
        c: &AnalysisCache,
        key: String,
        program: &Program,
        root: FuncRef,
        out: &mut RootOutcome,
    ) {
        // A budget-truncated result is not the root's true analysis:
        // caching it would replay the partial warning set on runs that
        // have no (or a larger) budget. Leave the root cold instead.
        if out.timed_out {
            return;
        }
        c.store(&CacheEntry {
            key,
            root: program.func(root).name.clone(),
            warnings: out.raw.clone(),
            paths_pruned: out.paths_pruned,
            events_truncated: out.events_truncated,
            traces: out.traces,
        });
        out.source = RootSource::Computed { stored: true };
    }

    /// Apply the rules to pre-collected traces.
    pub fn check_traces(&self, traces: &[Trace]) -> Report {
        let mut raw = Vec::new();
        for t in traces {
            raw.extend(self.check_trace(t));
        }
        Report::from_raw(raw)
    }

    /// Apply the rules to one trace; returns raw (non-deduplicated)
    /// warnings.
    pub fn check_trace(&self, trace: &Trace) -> Vec<Warning> {
        let mut scan = Scan::new(&self.config, trace);
        for ev in &trace.events {
            scan.step(ev);
        }
        scan.finish()
    }
}

/// A persistent write awaiting durability.
#[derive(Debug, Clone)]
struct PendingWrite {
    addr: Addr,
    loc: EvLoc,
    /// Fence-interval at write time (for the delayed-persist mismatch).
    interval: u32,
    /// Innermost transaction id at write time, if any.
    tx: Option<u64>,
    /// Innermost epoch id at write time, if any.
    epoch: Option<u64>,
}

#[derive(Debug, Clone)]
struct TxFrame {
    id: u64,
    commit_pending_writes: usize,
    /// Addresses undo-logged so far in this transaction.
    logged: Vec<Addr>,
    /// Objects flushed in this transaction (for RedundantPersistInTx).
    flushed_objs: Vec<(ObjId, EvLoc)>,
}

#[derive(Debug, Clone)]
struct EpochFrame {
    id: u64,
    /// Objects written inside this epoch.
    written_objs: BTreeSet<ObjId>,
    /// Persistent work (write or flush) happened in this epoch.
    did_work: bool,
    /// The epoch's tail currently ends with a fence.
    fence_at_tail: bool,
    begin_loc: EvLoc,
}

/// Addresses a strand touched, split by access kind.
#[derive(Debug, Clone, Default)]
struct StrandSet {
    writes: Vec<Addr>,
    reads: Vec<Addr>,
}

struct Scan<'a> {
    model: PersistencyModel,
    check_violations: bool,
    check_performance: bool,
    field_sensitive: bool,
    trace: &'a Trace,
    warnings: Vec<Warning>,

    pending: Vec<PendingWrite>,
    /// Flushed-but-unfenced addresses.
    unfenced_flushes: Vec<(Addr, EvLoc)>,
    /// Written-and-not-yet-flushed addresses (performance dirty set).
    dirty: Vec<Addr>,
    /// Flushed addresses not re-written since (redundant-flush detection).
    clean: Vec<Addr>,
    /// Distinct write addresses since the last fence, with flush status.
    writes_since_fence: Vec<(Addr, bool)>,
    fence_interval: u32,
    next_region_id: u64,
    tx_stack: Vec<TxFrame>,
    epoch_stack: Vec<EpochFrame>,
    /// Objects written by the most recently closed epoch.
    prev_epoch_objs: Option<(BTreeSet<ObjId>, EvLoc)>,
    /// A fence has been seen since the last epoch closed.
    fence_since_epoch_end: bool,
    /// Open strand accumulation, and closed sibling strands since the last
    /// fence.
    current_strand: Option<(StrandSet, EvLoc)>,
    sibling_strands: Vec<(StrandSet, EvLoc)>,
}

impl<'a> Scan<'a> {
    fn new(config: &DeepMcConfig, trace: &'a Trace) -> Scan<'a> {
        Scan {
            model: config.model,
            check_violations: config.check_violations,
            check_performance: config.check_performance,
            field_sensitive: config.field_sensitive,
            trace,
            warnings: Vec::new(),
            pending: Vec::new(),
            unfenced_flushes: Vec::new(),
            dirty: Vec::new(),
            clean: Vec::new(),
            writes_since_fence: Vec::new(),
            fence_interval: 0,
            next_region_id: 0,
            tx_stack: Vec::new(),
            epoch_stack: Vec::new(),
            prev_epoch_objs: None,
            fence_since_epoch_end: true,
            current_strand: None,
            sibling_strands: Vec::new(),
        }
    }

    fn warn(&mut self, class: BugClass, loc: &EvLoc, message: String) {
        self.warn_fix(class, loc, message, None);
    }

    fn warn_fix(
        &mut self,
        class: BugClass,
        loc: &EvLoc,
        message: String,
        fix: Option<crate::report::FixHint>,
    ) {
        let is_violation = class.severity() == deepmc_models::Severity::Violation;
        if (is_violation && !self.check_violations) || (!is_violation && !self.check_performance) {
            return;
        }
        // Report rendering is the only place dense function indices are
        // resolved back to strings; catch a stale or cross-program index
        // here rather than rendering the wrong attribution.
        debug_assert!(
            (loc.func as usize) < self.trace.locs.len(),
            "event function index {} outside the trace's location table ({} entries)",
            loc.func,
            self.trace.locs.len()
        );
        self.warnings.push(Warning {
            file: self.trace.locs.file(loc.func).to_string(),
            line: loc.line,
            class,
            function: self.trace.locs.name(loc.func).to_string(),
            root: self.trace.root.to_string(),
            message,
            model: self.model,
            dynamic: false,
            fix,
        });
    }

    fn obj_name(&self, obj: ObjId) -> String {
        self.trace.object_name(obj).to_string()
    }

    fn in_tx(&self) -> bool {
        !self.tx_stack.is_empty()
    }

    fn in_epoch(&self) -> bool {
        !self.epoch_stack.is_empty()
    }

    /// Degrade an address to whole-object granularity when the
    /// field-sensitivity ablation is active.
    fn granulate(&self, addr: Addr) -> Addr {
        if self.field_sensitive {
            addr
        } else {
            Addr::whole(addr.obj)
        }
    }

    fn step(&mut self, ev: &TraceEvent) {
        // Packed events are a plain struct copy; the object-granularity
        // ablation rewrites the address field in place.
        let mut ev = *ev;
        if !self.field_sensitive {
            if let Some(addr) = ev.addr() {
                ev.set_addr(self.granulate(addr));
            }
        }
        let loc = ev.loc();
        match ev.kind {
            EvKind::Write => {
                let addr = ev.addr().expect("write carries an address");
                self.on_write(addr, &loc)
            }
            EvKind::Read => {
                if let Some((set, _)) = &mut self.current_strand {
                    set.reads.push(ev.addr().expect("read carries an address"));
                }
            }
            EvKind::Flush => {
                let addr = ev.addr().expect("flush carries an address");
                self.on_flush(addr, &loc)
            }
            EvKind::Fence => self.on_fence(&loc),
            EvKind::TxBegin => self.on_tx_begin(&loc),
            EvKind::TxCommit => self.on_tx_commit(&loc),
            EvKind::TxAbort => self.on_tx_abort(),
            EvKind::TxAdd => {
                if let Some(frame) = self.tx_stack.last_mut() {
                    frame.logged.push(ev.addr().expect("tx_add carries an address"));
                }
            }
            EvKind::EpochBegin => self.on_epoch_begin(&loc),
            EvKind::EpochEnd => self.on_epoch_end(&loc),
            EvKind::StrandBegin => {
                self.current_strand = Some((StrandSet::default(), loc));
            }
            EvKind::StrandEnd => self.on_strand_end(&loc),
        }
    }

    fn on_write(&mut self, addr: Addr, loc: &EvLoc) {
        // Strict: an unfenced flush followed by another persistent write
        // breaks program-order durability (Fig. 3 shape).
        if self.model == PersistencyModel::Strict && !self.unfenced_flushes.is_empty() {
            let (f_addr, f_loc) = self.unfenced_flushes[0];
            // A rewrite of the very address that was just flushed is a
            // flush-then-modify pattern, not a missing barrier.
            if !f_addr.overlaps(&addr) {
                self.warn_fix(
                    BugClass::MissingPersistBarrier,
                    &f_loc,
                    format!(
                        "flush at line {} is not followed by a persist barrier before \
                         the next persistent write (line {})",
                        f_loc.line, loc.line
                    ),
                    Some(FixHint::InsertFenceAfter { line: f_loc.line }),
                );
                // The unfenced flushes' writes are accounted for by this
                // report; do not re-report them as batched durability at
                // the eventual fence.
                let cleared: Vec<Addr> = self.unfenced_flushes.iter().map(|(a, _)| *a).collect();
                self.unfenced_flushes.clear();
                self.writes_since_fence.retain(|(a, _)| !cleared.iter().any(|f| f.covers(a)));
            }
        }

        // Epoch-frame bookkeeping.
        if let Some(frame) = self.epoch_stack.last_mut() {
            frame.written_objs.insert(addr.obj);
            frame.did_work = true;
            frame.fence_at_tail = false;
        }
        // Transaction bookkeeping (a write counts for every enclosing tx).
        let logged =
            self.tx_stack.last().map(|f| f.logged.iter().any(|l| l.covers(&addr))).unwrap_or(false);
        for frame in &mut self.tx_stack {
            frame.commit_pending_writes += 1;
        }

        // Performance dirty set.
        self.clean.retain(|c| !c.overlaps(&addr));
        if !self.dirty.iter().any(|d| d.covers(&addr)) {
            self.dirty.push(addr);
        }

        // Strict-model batching set.
        if !self.writes_since_fence.iter().any(|(a, _)| a.overlaps(&addr)) {
            self.writes_since_fence.push((addr, false));
        }

        // Strand tracking.
        if let Some((set, _)) = &mut self.current_strand {
            set.writes.push(addr);
        }

        // Durability obligation, unless the enclosing transaction's undo
        // log already guarantees persistence at commit.
        if !logged {
            self.pending.push(PendingWrite {
                addr,
                loc: *loc,
                interval: self.fence_interval,
                tx: self.tx_stack.last().map(|f| f.id),
                epoch: self.epoch_stack.last().map(|f| f.id),
            });
        }
    }

    fn on_flush(&mut self, addr: Addr, loc: &EvLoc) {
        // --- performance rules -------------------------------------------
        let dirty_hits: Vec<Addr> =
            self.dirty.iter().copied().filter(|d| d.overlaps(&addr)).collect();
        let clean_hit = self.clean.iter().any(|c| c.overlaps(&addr));
        if dirty_hits.is_empty() {
            // Re-flushing recently flushed data is owned by the
            // redundant-writeback rules below; flushing data that was
            // *never* written is the unmodified-data bug (Table 5 row 1).
            if !clean_hit {
                self.warn_fix(
                    BugClass::UnmodifiedWriteback,
                    loc,
                    format!("flushing `{}` which was never modified", self.obj_name(addr.obj)),
                    Some(FixHint::RemoveWriteback { line: loc.line }),
                );
            }
        } else if addr.sel == FieldSel::Whole {
            // Field-sensitive partial-modification check (Fig. 5): flushing
            // a whole object while only a proper subset of fields is dirty.
            let whole_dirty = dirty_hits.iter().any(|d| d.sel == FieldSel::Whole);
            if !whole_dirty {
                let dirty_fields: BTreeSet<u32> = dirty_hits
                    .iter()
                    .filter_map(|d| match d.sel {
                        FieldSel::Field(f) | FieldSel::Elem { field: f, .. } => Some(f),
                        FieldSel::Whole => None,
                    })
                    .collect();
                if let Some(total) = self.trace.object_field_count(addr.obj) {
                    if (dirty_fields.len() as u32) < total {
                        self.warn_fix(
                            BugClass::UnmodifiedWriteback,
                            loc,
                            format!(
                                "persisting entire object `{}` ({} fields) though only \
                                 {} field(s) were modified",
                                self.obj_name(addr.obj),
                                total,
                                dirty_fields.len()
                            ),
                            Some(FixHint::NarrowWriteback { line: loc.line }),
                        );
                    }
                }
            }
        }

        // Redundant write-backs: re-flushing clean data (Fig. 6), or
        // persisting the same object repeatedly inside one transaction.
        let mut fired_redundant = false;
        if let Some(frame) = self.tx_stack.last_mut() {
            if let Some((_, first_loc)) = frame.flushed_objs.iter().find(|(o, _)| *o == addr.obj) {
                let first_line = first_loc.line;
                self.warn_fix(
                    BugClass::RedundantPersistInTx,
                    loc,
                    format!(
                        "object `{}` persisted multiple times in one transaction \
                         (first at line {first_line})",
                        self.obj_name(addr.obj)
                    ),
                    Some(FixHint::RemoveWriteback { line: loc.line }),
                );
                fired_redundant = true;
            } else {
                frame.flushed_objs.push((addr.obj, *loc));
            }
        }
        if !fired_redundant && clean_hit {
            self.warn_fix(
                BugClass::RedundantWriteback,
                loc,
                format!(
                    "redundant write-back of `{}`: already flushed and not modified since",
                    self.obj_name(addr.obj)
                ),
                Some(FixHint::RemoveWriteback { line: loc.line }),
            );
        }

        // --- violation-rule bookkeeping ----------------------------------
        // Writes covered by this flush have met their durability
        // obligation; a covering flush in a *later* fence interval means
        // the program's persist unit did not match its atomic intent
        // (Fig. 1), except inside transactions where the framework defines
        // the unit.
        let interval = self.fence_interval;
        let in_tx = self.in_tx();
        let mut mismatches: Vec<(EvLoc, u32)> = Vec::new();
        self.pending.retain(|p| {
            if addr.covers(&p.addr) {
                if !in_tx && p.tx.is_none() && p.interval < interval {
                    mismatches.push((p.loc, p.interval));
                }
                false
            } else {
                true
            }
        });
        for (w_loc, _) in mismatches {
            self.warn_fix(
                BugClass::SemanticMismatch,
                loc,
                format!(
                    "write at line {} is made durable only after an intervening persist \
                     barrier — the implementation does not persist it in the unit the \
                     program treats as atomic",
                    w_loc.line
                ),
                Some(FixHint::MovePersistToStore { store_line: w_loc.line, flush_line: loc.line }),
            );
        }

        self.dirty.retain(|d| !addr.covers(d));
        self.clean.retain(|c| !addr.covers(c));
        self.clean.push(addr);
        self.unfenced_flushes.push((addr, *loc));
        for (a, flushed) in &mut self.writes_since_fence {
            if addr.covers(a) {
                *flushed = true;
            }
        }
        if let Some(frame) = self.epoch_stack.last_mut() {
            frame.did_work = true;
            frame.fence_at_tail = false;
        }
    }

    fn on_fence(&mut self, loc: &EvLoc) {
        // Strict: a barrier should make exactly one write durable. Fires
        // only when every preceding write was actually flushed (otherwise
        // the unflushed/mismatch rules own the report) and outside
        // transactions/epochs, whose frameworks batch legitimately.
        if (self.model == PersistencyModel::Strict || (self.model.has_epochs() && !self.in_epoch()))
            && !self.in_tx()
            && !self.in_epoch()
            && self.writes_since_fence.len() >= 2
            && self.writes_since_fence.iter().all(|(_, flushed)| *flushed)
        {
            let n = self.writes_since_fence.len();
            self.warn(
                BugClass::MultipleWritesAtOnce,
                loc,
                format!(
                    "{n} distinct writes are made durable by a single persist \
                     barrier; the declared model requires per-unit durability"
                ),
            );
        }
        self.writes_since_fence.clear();
        self.unfenced_flushes.clear();
        self.fence_interval += 1;
        self.fence_since_epoch_end = true;
        if let Some(frame) = self.epoch_stack.last_mut() {
            frame.fence_at_tail = true;
        }
        // A barrier issued between strands orders them: siblings before it
        // cannot race with strands after it. A fence *inside* a strand only
        // orders that strand's own persists.
        if self.current_strand.is_none() {
            self.sibling_strands.clear();
        }
    }

    fn on_tx_begin(&mut self, loc: &EvLoc) {
        if self.model == PersistencyModel::Strict && !self.unfenced_flushes.is_empty() {
            let (_, f_loc) = self.unfenced_flushes[0];
            self.warn_fix(
                BugClass::MissingPersistBarrier,
                &f_loc,
                format!(
                    "flush at line {} has no persist barrier before the transaction \
                     beginning at line {} — operations of the two transactions may \
                     interleave",
                    f_loc.line, loc.line
                ),
                Some(FixHint::InsertFenceAfter { line: f_loc.line }),
            );
            self.unfenced_flushes.clear();
        }
        let id = self.next_region_id;
        self.next_region_id += 1;
        self.tx_stack.push(TxFrame {
            id,
            commit_pending_writes: 0,
            logged: Vec::new(),
            flushed_objs: Vec::new(),
        });
    }

    fn on_tx_commit(&mut self, loc: &EvLoc) {
        let Some(frame) = self.tx_stack.pop() else { return };

        // Unlogged, unflushed writes made inside this transaction are not
        // durable after commit (Fig. 2).
        let mut missed: Vec<(Addr, EvLoc)> = Vec::new();
        self.pending.retain(|p| {
            if p.tx == Some(frame.id) {
                missed.push((p.addr, p.loc));
                false
            } else {
                true
            }
        });
        for (addr, w_loc) in missed {
            let name = self.obj_name(addr.obj);
            self.warn_fix(
                BugClass::UnflushedWrite,
                &w_loc,
                format!(
                    "`{name}` is modified at line {} inside a transaction without being \
                     undo-logged (tx_add) or flushed; the update is not durable at commit",
                    w_loc.line
                ),
                Some(FixHint::LogObjectBeforeStore { store_line: w_loc.line }),
            );
        }

        // Commit persists the logged objects.
        let logged = frame.logged.clone();
        self.dirty.retain(|d| !logged.iter().any(|l| l.covers(d)));

        // A synthetic ambient transaction (wrapped around `tx_context`
        // roots, recognizable by its unknown location) provides logging
        // context for the callee but is the *caller's* durable unit — only
        // explicit transactions assert durability of their own.
        if frame.commit_pending_writes == 0 && loc.line != 0 {
            self.warn(
                BugClass::EmptyDurableTx,
                loc,
                "durable transaction commits without any persistent write on this path".to_string(),
            );
        }

        // Commit drains the persistence queue: an implicit barrier.
        self.writes_since_fence.clear();
        self.unfenced_flushes.clear();
        self.fence_interval += 1;
        self.fence_since_epoch_end = true;
    }

    fn on_tx_abort(&mut self) {
        if let Some(frame) = self.tx_stack.pop() {
            // Rolled-back writes carry no durability obligation.
            self.pending.retain(|p| p.tx != Some(frame.id));
        }
    }

    fn on_epoch_begin(&mut self, loc: &EvLoc) {
        if self.model.has_epochs()
            && self.prev_epoch_objs.is_some()
            && !self.fence_since_epoch_end
            && self.epoch_stack.is_empty()
        {
            let prev_loc = self.prev_epoch_objs.as_ref().unwrap().1;
            self.warn_fix(
                BugClass::MissingPersistBarrier,
                &prev_loc,
                format!(
                    "no persist barrier between the epoch ending at line {} and the \
                     epoch beginning at line {}",
                    prev_loc.line, loc.line
                ),
                Some(FixHint::InsertFenceAfter { line: prev_loc.line }),
            );
        }
        let id = self.next_region_id;
        self.next_region_id += 1;
        self.epoch_stack.push(EpochFrame {
            id,
            written_objs: BTreeSet::new(),
            did_work: false,
            fence_at_tail: false,
            begin_loc: *loc,
        });
    }

    fn on_epoch_end(&mut self, loc: &EvLoc) {
        let Some(frame) = self.epoch_stack.pop() else { return };

        // Epoch-model writes must be flushed before their epoch closes.
        if self.model.has_epochs() {
            let mut missed: Vec<(Addr, EvLoc)> = Vec::new();
            self.pending.retain(|p| {
                if p.epoch == Some(frame.id) {
                    missed.push((p.addr, p.loc));
                    false
                } else {
                    true
                }
            });
            for (addr, w_loc) in missed {
                let name = self.obj_name(addr.obj);
                self.warn_fix(
                    BugClass::UnflushedWrite,
                    &w_loc,
                    format!(
                        "write to `{name}` at line {} is never flushed within its epoch",
                        w_loc.line
                    ),
                    Some(FixHint::FlushAndFenceStore { store_line: w_loc.line }),
                );
            }
        }

        // Nested region: the inner epoch must end with a barrier so its
        // persists are ordered before the outer region's (Fig. 4).
        let nested = self.in_epoch() || self.in_tx();
        if self.model.has_epochs() && nested && frame.did_work && !frame.fence_at_tail {
            self.warn_fix(
                BugClass::MissingBarrierNestedTx,
                loc,
                format!(
                    "nested transaction/epoch beginning at line {} performs persistent \
                     work but ends without a persist barrier",
                    frame.begin_loc.line
                ),
                Some(FixHint::InsertFenceBefore { line: loc.line }),
            );
        }

        // Consecutive epochs splitting one object's fields (Table 4 epoch
        // mismatch rule).
        if self.model.has_epochs() && self.epoch_stack.is_empty() {
            if let Some((prev_objs, _)) = &self.prev_epoch_objs {
                let shared: Vec<ObjId> =
                    frame.written_objs.intersection(prev_objs).copied().collect();
                for obj in shared {
                    let name = self.obj_name(obj);
                    self.warn(
                        BugClass::SemanticMismatch,
                        loc,
                        format!(
                            "consecutive epochs write to fields of the same object \
                             `{name}`; the object's update is split across persist units"
                        ),
                    );
                }
            }
            self.prev_epoch_objs = Some((frame.written_objs.clone(), *loc));
            self.fence_since_epoch_end = frame.fence_at_tail;
        }
    }

    fn on_strand_end(&mut self, loc: &EvLoc) {
        let Some((set, _begin)) = self.current_strand.take() else { return };
        if self.model.has_strands() {
            for (sib, sib_loc) in &self.sibling_strands {
                if strands_conflict(&set, sib) {
                    let line = sib_loc.line;
                    self.warn(
                        BugClass::InterStrandDependency,
                        loc,
                        format!(
                            "strand ending at line {} has a data dependence (WAW/RAW) \
                             with the concurrent strand ending at line {line}; dependent \
                             persists must share a strand or be ordered by a barrier",
                            loc.line
                        ),
                    );
                    break;
                }
            }
        }
        self.sibling_strands.push((set, *loc));
    }

    fn finish(mut self) -> Vec<Warning> {
        // Writes never made durable.
        let pending = std::mem::take(&mut self.pending);
        for p in pending {
            let name = self.obj_name(p.addr.obj);
            let line = p.loc.line;
            self.warn_fix(
                BugClass::UnflushedWrite,
                &p.loc,
                format!("write to `{name}` at line {line} is never flushed"),
                Some(FixHint::FlushAndFenceStore { store_line: line }),
            );
        }
        // Trailing unfenced flush breaks strict ordering.
        if self.model == PersistencyModel::Strict {
            if let Some((_, f_loc)) = self.unfenced_flushes.first().cloned() {
                self.warn_fix(
                    BugClass::MissingPersistBarrier,
                    &f_loc,
                    format!("flush at line {} is never followed by a persist barrier", f_loc.line),
                    Some(FixHint::InsertFenceAfter { line: f_loc.line }),
                );
            }
        }
        self.warnings
    }
}

/// Per-function model override from attributes (mixed-model support).
fn model_override(f: &deepmc_pir::Function) -> Option<PersistencyModel> {
    use deepmc_pir::FuncAttr;
    if f.has_attr(FuncAttr::ModelStrict) {
        Some(PersistencyModel::Strict)
    } else if f.has_attr(FuncAttr::ModelEpoch) {
        Some(PersistencyModel::Epoch)
    } else if f.has_attr(FuncAttr::ModelStrand) {
        Some(PersistencyModel::Strand)
    } else {
        None
    }
}

/// WAW or RAW dependence between two strands' access sets.
fn strands_conflict(a: &StrandSet, b: &StrandSet) -> bool {
    let waw = a.writes.iter().any(|wa| b.writes.iter().any(|wb| wa.overlaps(wb)));
    let raw = a.writes.iter().any(|w| b.reads.iter().any(|r| w.overlaps(r)))
        || b.writes.iter().any(|w| a.reads.iter().any(|r| w.overlaps(r)));
    waw || raw
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmc_models::PersistencyModel::{Epoch, Strand, Strict};

    fn check(model: PersistencyModel, src: &str) -> Report {
        crate::check_source(src, &DeepMcConfig::new(model)).expect("source must check")
    }

    fn classes(r: &Report) -> Vec<BugClass> {
        r.warnings.iter().map(|w| w.class).collect()
    }

    // --- root attribution -------------------------------------------------

    #[test]
    fn two_roots_sharing_a_buggy_callee_get_separate_warnings() {
        // Regression for the dedup key: `writer` leaves %q.a unflushed; it
        // is reachable from BOTH roots, so the report must carry one
        // warning per (root, site), not collapse them into one.
        let r = check(
            Strict,
            r#"
module m
file "m.c"
struct s { a: i64 }
fn writer(%q: ptr s) {
entry:
  store %q.a, 1
  ret
}
fn root_a() {
entry:
  %x = palloc s
  call writer(%x)
  ret
}
fn root_b() {
entry:
  %y = palloc s
  call writer(%y)
  ret
}
"#,
        );
        let unflushed: Vec<&Warning> = r.of_class(BugClass::UnflushedWrite).collect();
        assert_eq!(unflushed.len(), 2, "one warning per root: {r}");
        let mut roots: Vec<&str> = unflushed.iter().map(|w| w.root.as_str()).collect();
        roots.sort_unstable();
        assert_eq!(roots, vec!["root_a", "root_b"]);
        for w in &unflushed {
            assert_eq!(w.function, "writer", "site attribution unchanged");
        }
    }

    // --- clean programs ---------------------------------------------------

    #[test]
    fn clean_strict_program_no_warnings() {
        let r = check(
            Strict,
            r#"
module m
struct s { a: i64, b: i64 }
fn main() {
entry:
  %x = palloc s
  store %x.a, 1
  flush %x.a
  fence
  store %x.b, 2
  flush %x.b
  fence
  ret
}
"#,
        );
        assert!(r.warnings.is_empty(), "{r}");
    }

    #[test]
    fn clean_epoch_program_no_warnings() {
        let r = check(
            Epoch,
            r#"
module m
struct s { a: i64, b: i64 }
struct t { c: i64 }
fn main() {
entry:
  %x = palloc s
  %y = palloc t
  epoch_begin
  store %x.a, 1
  store %x.b, 2
  flush %x.a
  flush %x.b
  fence
  epoch_end
  epoch_begin
  store %y.c, 3
  flush %y.c
  fence
  epoch_end
  ret
}
"#,
        );
        assert!(r.warnings.is_empty(), "{r}");
    }

    #[test]
    fn clean_transactional_program_no_warnings() {
        let r = check(
            Strict,
            r#"
module m
struct s { a: i64, b: i64 }
fn main() {
entry:
  %x = palloc s
  tx_begin
  tx_add %x
  store %x.a, 1
  store %x.b, 2
  tx_commit
  ret
}
"#,
        );
        assert!(r.warnings.is_empty(), "{r}");
    }

    // --- Table 4: model violations ----------------------------------------

    #[test]
    fn unflushed_write_detected() {
        let r = check(
            Strict,
            r#"
module m
struct s { a: i64 }
fn main() {
entry:
  %x = palloc s
  loc 201
  store %x.a, 1
  ret
}
"#,
        );
        assert_eq!(classes(&r), vec![BugClass::UnflushedWrite]);
        assert_eq!(r.warnings[0].line, 201);
    }

    #[test]
    fn unlogged_write_in_tx_detected() {
        // Fig. 2: modify inside a transaction without TX_ADD.
        let r = check(
            Strict,
            r#"
module m
struct s { items: [i64; 8], n: i64 }
fn split(%node: ptr s) attrs(tx_context) {
entry:
  loc 206
  store %node.items[2], 0
  ret
}
"#,
        );
        assert_eq!(classes(&r), vec![BugClass::UnflushedWrite]);
        assert_eq!(r.warnings[0].line, 206);
    }

    #[test]
    fn logged_write_in_tx_ok() {
        let r = check(
            Strict,
            r#"
module m
struct s { items: [i64; 8] }
fn split(%node: ptr s) attrs(tx_context) {
entry:
  tx_add %node
  store %node.items[2], 0
  ret
}
"#,
        );
        assert!(r.warnings.is_empty(), "{r}");
    }

    #[test]
    fn missing_barrier_write_variant_does_not_double_report() {
        // flush-then-write with a trailing fence: one MissingPersistBarrier
        // at the flush, and no MultipleWritesAtOnce at the fence (the
        // first write's durability problem is already reported).
        let r = check(
            Strict,
            r#"
module m
struct h { off: i64, len: i64 }
fn main(%cap: i64) {
entry:
  %x = palloc h
  store %x.off, 0
  loc 60
  flush %x.off
  store %x.len, %cap
  flush %x.len
  fence
  ret
}
"#,
        );
        assert_eq!(classes(&r), vec![BugClass::MissingPersistBarrier], "{r}");
        assert_eq!(r.warnings[0].line, 60);
    }

    #[test]
    fn missing_barrier_before_tx_detected() {
        // Fig. 3: nvm_flush then nvm_txbegin with no barrier.
        let r = check(
            Strict,
            r#"
module m
struct region { hdr: i64 }
fn create_region() {
entry:
  %r = palloc region
  store %r.hdr, 1
  loc 614
  flush %r
  tx_begin
  tx_add %r
  store %r.hdr, 2
  tx_commit
  ret
}
"#,
        );
        assert!(r.contains(BugClass::MissingPersistBarrier, "m.c", 614), "{r}");
    }

    #[test]
    fn missing_barrier_between_epochs_detected() {
        let r = check(
            Epoch,
            r#"
module m
struct s { a: i64 }
struct t { b: i64 }
fn main() {
entry:
  %x = palloc s
  %y = palloc t
  epoch_begin
  store %x.a, 1
  flush %x.a
  loc 100
  epoch_end
  epoch_begin
  store %y.b, 2
  flush %y.b
  fence
  epoch_end
  ret
}
"#,
        );
        assert!(r.contains(BugClass::MissingPersistBarrier, "m.c", 100), "{r}");
    }

    #[test]
    fn missing_barrier_in_nested_tx_detected() {
        // Fig. 4: the inner transaction flushes but never fences.
        let r = check(
            Epoch,
            r#"
module m
struct blk { data: i64 }
fn block_symlink(%b: ptr blk) {
entry:
  store %b.data, 7
  loc 38
  flush %b.data
  ret
}
fn symlink() {
entry:
  %b = palloc blk
  epoch_begin
  epoch_begin
  call block_symlink(%b)
  loc 50
  epoch_end
  fence
  epoch_end
  fence
  ret
}
"#,
        );
        assert!(r.contains(BugClass::MissingBarrierNestedTx, "m.c", 50), "{r}");
    }

    #[test]
    fn nested_epoch_with_tail_fence_ok() {
        let r = check(
            Epoch,
            r#"
module m
struct blk { data: i64 }
fn symlink() {
entry:
  %b = palloc blk
  epoch_begin
  epoch_begin
  store %b.data, 7
  flush %b.data
  fence
  epoch_end
  epoch_end
  fence
  ret
}
"#,
        );
        assert!(r.warnings.is_empty(), "{r}");
    }

    #[test]
    fn semantic_mismatch_delayed_persist_detected() {
        // Fig. 1: nbuckets written, buckets memset+persisted, nbuckets
        // persisted only afterwards.
        let r = check(
            Strict,
            r#"
module m
struct hashmap { nbuckets: i64, seed: i64 }
struct buckets { arr: [i64; 16] }
fn hm_create() {
entry:
  %h = palloc hashmap
  %b = palloc buckets
  loc 3
  store %h.nbuckets, 16
  loc 4
  memset_persist %b, 0
  loc 6
  persist %h.nbuckets
  ret
}
"#,
        );
        assert!(r.contains(BugClass::SemanticMismatch, "m.c", 6), "{r}");
    }

    #[test]
    fn semantic_mismatch_epochs_splitting_object_detected() {
        let r = check(
            Epoch,
            r#"
module m
struct obj { a: i64, b: i64 }
fn main() {
entry:
  %x = palloc obj
  epoch_begin
  store %x.a, 1
  flush %x.a
  fence
  epoch_end
  epoch_begin
  store %x.b, 2
  flush %x.b
  fence
  loc 120
  epoch_end
  ret
}
"#,
        );
        assert!(r.contains(BugClass::SemanticMismatch, "m.c", 120), "{r}");
    }

    #[test]
    fn multiple_writes_at_once_detected() {
        let r = check(
            Strict,
            r#"
module m
struct s { a: i64, b: i64 }
fn main() {
entry:
  %x = palloc s
  store %x.a, 1
  store %x.b, 2
  flush %x.a
  flush %x.b
  loc 77
  fence
  ret
}
"#,
        );
        assert!(r.contains(BugClass::MultipleWritesAtOnce, "m.c", 77), "{r}");
    }

    #[test]
    fn strand_dependence_detected_statically() {
        let r = check(
            Strand,
            r#"
module m
struct s { a: i64, b: i64 }
fn main() {
entry:
  %x = palloc s
  strand_begin
  store %x.a, 1
  flush %x.a
  fence
  strand_end
  strand_begin
  store %x.a, 2
  flush %x.a
  fence
  loc 90
  strand_end
  ret
}
"#,
        );
        assert!(r.contains(BugClass::InterStrandDependency, "m.c", 90), "{r}");
    }

    #[test]
    fn independent_strands_ok() {
        let r = check(
            Strand,
            r#"
module m
struct s { a: i64, b: i64 }
fn main() {
entry:
  %x = palloc s
  strand_begin
  store %x.a, 1
  flush %x.a
  fence
  strand_end
  strand_begin
  store %x.b, 2
  flush %x.b
  fence
  strand_end
  ret
}
"#,
        );
        assert!(r.warnings.is_empty(), "{r}");
    }

    // --- Table 5: performance bugs -----------------------------------------

    #[test]
    fn unmodified_flush_detected() {
        // Flushing data that was never written (files.c:232 shape).
        let r = check(
            Strict,
            r#"
module m
struct s { a: i64, b: i64 }
fn main() {
entry:
  %x = palloc s
  store %x.a, 1
  flush %x.a
  fence
  loc 232
  flush %x.b
  fence
  ret
}
"#,
        );
        assert_eq!(classes(&r), vec![BugClass::UnmodifiedWriteback], "{r}");
        assert_eq!(r.warnings[0].line, 232);
    }

    #[test]
    fn reflush_of_clean_data_is_redundant_not_unmodified() {
        let r = check(
            Strict,
            r#"
module m
struct s { a: i64 }
fn main() {
entry:
  %x = palloc s
  store %x.a, 1
  flush %x.a
  fence
  loc 232
  flush %x.a
  fence
  ret
}
"#,
        );
        assert_eq!(classes(&r), vec![BugClass::RedundantWriteback], "{r}");
    }

    #[test]
    fn whole_object_flush_with_one_dirty_field_detected() {
        // Fig. 5: one field assigned, whole object persisted.
        let r = check(
            Strict,
            r#"
module m
struct pi_task { proto: i64, next: ptr pi_task, prev: ptr pi_task }
fn pi_task_construct(%t: ptr pi_task) {
entry:
  store %t.proto, 42
  loc 6
  persist %t
  ret
}
"#,
        );
        assert!(r.contains(BugClass::UnmodifiedWriteback, "m.c", 6), "{r}");
    }

    #[test]
    fn whole_object_flush_with_all_fields_dirty_ok() {
        let r = check(
            Strict,
            r#"
module m
struct pair { a: i64, b: i64 }
fn main() {
entry:
  %x = palloc pair
  store %x.a, 1
  store %x.b, 2
  persist %x
  ret
}
"#,
        );
        assert!(!r.warnings.iter().any(|w| w.class == BugClass::UnmodifiedWriteback), "{r}");
    }

    #[test]
    fn redundant_writeback_detected() {
        // Fig. 6: flush, then flush the same object again with no new write.
        let r = check(
            Strict,
            r#"
module m
struct blk { data: i64 }
fn free_blk(%b: ptr blk) {
entry:
  store %b.data, 0
  flush %b.data
  fence
  ret
}
fn free_callback() {
entry:
  %b = palloc blk
  call free_blk(%b)
  loc 1965
  flush %b.data
  fence
  ret
}
"#,
        );
        assert!(r.contains(BugClass::RedundantWriteback, "m.c", 1965), "{r}");
    }

    #[test]
    fn rewritten_data_reflush_is_not_redundant() {
        let r = check(
            Strict,
            r#"
module m
struct blk { data: i64 }
fn main() {
entry:
  %b = palloc blk
  store %b.data, 1
  flush %b.data
  fence
  store %b.data, 2
  flush %b.data
  fence
  ret
}
"#,
        );
        assert!(r.warnings.is_empty(), "{r}");
    }

    #[test]
    fn redundant_persist_in_tx_detected() {
        let r = check(
            Epoch,
            r#"
module m
struct rec { a: i64 }
fn main() {
entry:
  %x = palloc rec
  tx_begin
  store %x.a, 1
  flush %x.a
  fence
  store %x.a, 2
  loc 150
  flush %x.a
  fence
  tx_commit
  ret
}
"#,
        );
        assert!(r.contains(BugClass::RedundantPersistInTx, "m.c", 150), "{r}");
    }

    #[test]
    fn exhausted_path_budget_is_noted_in_the_report() {
        let src = r#"
module m
struct s { a: i64 }
fn main(%c1: i64, %c2: i64, %c3: i64) {
entry:
  %x = palloc s
  br %c1, a1, a2
a1:
  jmp m1
a2:
  jmp m1
m1:
  br %c2, b1, b2
b1:
  jmp m2
b2:
  jmp m2
m2:
  br %c3, c1b, c2b
c1b:
  jmp done
c2b:
  jmp done
done:
  store %x.a, 1
  persist %x.a
  ret
}
"#;
        let mut config = DeepMcConfig::new(Strict);
        config.trace.max_paths = 2;
        let r = crate::check_source(src, &config).unwrap();
        assert!(
            r.notes.iter().any(|n| n.contains("path budget exhausted")),
            "pruned forks must be disclosed: {r}"
        );
        // With the default budget the same program explores everything and
        // carries no caveat.
        let clean = check(Strict, src);
        assert!(clean.notes.is_empty(), "{clean}");
    }

    #[test]
    fn empty_durable_tx_detected() {
        // Fig. 7 shape: on the path where the condition fails, the
        // transaction persists nothing.
        let r = check(
            Strict,
            r#"
module m
struct alien { timer: i64, y: i64 }
fn process_aliens(%cond: i64) {
entry:
  %a = palloc alien
  tx_begin
  tx_add %a
  br %cond, update, skip
update:
  store %a.timer, 9
  store %a.y, 1
  jmp done
skip:
  jmp done
done:
  loc 256
  tx_commit
  ret
}
"#,
        );
        assert!(r.contains(BugClass::EmptyDurableTx, "m.c", 256), "{r}");
        // And the taken-update path produces no such warning — exactly one
        // deduplicated entry.
        assert_eq!(r.of_class(BugClass::EmptyDurableTx).count(), 1);
    }

    #[test]
    fn aborted_tx_carries_no_obligations() {
        let r = check(
            Strict,
            r#"
module m
struct rec { a: i64 }
fn main() {
entry:
  %x = palloc rec
  tx_begin
  store %x.a, 1
  tx_abort
  ret
}
"#,
        );
        assert!(
            !r.warnings.iter().any(|w| w.class == BugClass::UnflushedWrite),
            "aborted writes are rolled back: {r}"
        );
    }

    #[test]
    fn semantic_mismatch_suppressed_inside_transactions() {
        // Inside a transaction the framework defines the persist unit:
        // a cross-fence flush of an in-tx write is not a mismatch.
        let r = check(
            Strict,
            r#"
module m
struct s { a: i64, b: i64 }
fn main() {
entry:
  %x = palloc s
  tx_begin
  store %x.a, 1
  flush %x.a
  fence
  store %x.b, 2
  flush %x.b
  fence
  flush %x.a
  fence
  tx_commit
  ret
}
"#,
        );
        assert_eq!(
            r.of_class(BugClass::SemanticMismatch).count(),
            0,
            "transactions own their persist units: {r}"
        );
    }

    #[test]
    fn raw_dependence_between_strands_detected_statically() {
        let r = check(
            Strand,
            r#"
module m
struct s { a: i64 }
fn main() {
entry:
  %x = palloc s
  strand_begin
  store %x.a, 1
  flush %x.a
  fence
  strand_end
  strand_begin
  %v = load %x.a
  loc 55
  strand_end
  ret
}
"#,
        );
        assert!(r.contains(BugClass::InterStrandDependency, "m.c", 55), "{r}");
    }

    #[test]
    fn epoch_model_write_outside_any_epoch_still_checked() {
        // Epoch-model code outside epochs degenerates to per-store
        // durability; an unflushed write is still a violation.
        let r = check(
            Epoch,
            r#"
module m
struct s { a: i64 }
fn main() {
entry:
  %x = palloc s
  loc 12
  store %x.a, 1
  ret
}
"#,
        );
        assert!(r.contains(BugClass::UnflushedWrite, "m.c", 12), "{r}");
    }

    #[test]
    fn unknown_external_callee_is_opaque_not_fatal() {
        let r = check(
            Strict,
            r#"
module m
struct s { a: i64 }
fn main() {
entry:
  %x = palloc s
  store %x.a, 1
  call pmem_msync_region(7)
  persist %x.a
  ret
}
"#,
        );
        assert!(r.warnings.is_empty(), "{r}");
    }

    #[test]
    fn warnings_deduplicate_across_paths() {
        // The buggy write sits before the branch: both paths traverse it,
        // yet one warning results.
        let r = check(
            Strict,
            r#"
module m
struct s { a: i64, b: i64 }
fn main(%c: i64) {
entry:
  %x = palloc s
  loc 30
  store %x.a, 1
  br %c, l, rgt
l:
  jmp done
rgt:
  jmp done
done:
  ret
}
"#,
        );
        assert_eq!(r.warnings.len(), 1, "{r}");
        assert_eq!(r.warnings[0].line, 30);
    }

    #[test]
    fn memset_persist_counts_as_full_modification() {
        let r = check(
            Strict,
            r#"
module m
struct s { a: i64, b: i64, c: i64 }
fn main() {
entry:
  %x = palloc s
  memset_persist %x, 0
  ret
}
"#,
        );
        assert!(r.warnings.is_empty(), "whole-object memset covers all fields: {r}");
    }

    #[test]
    fn rewrite_of_flushed_addr_before_fence_is_not_missing_barrier() {
        // flush-then-modify of the SAME address is a data update pattern,
        // not a transaction-ordering break.
        let r = check(
            Strict,
            r#"
module m
struct s { a: i64 }
fn main() {
entry:
  %x = palloc s
  store %x.a, 1
  flush %x.a
  store %x.a, 2
  flush %x.a
  fence
  ret
}
"#,
        );
        assert_eq!(r.of_class(BugClass::MissingPersistBarrier).count(), 0, "{r}");
    }

    #[test]
    fn mixed_model_program_checked_per_function() {
        // One module, two entry points: a strict path and an epoch path.
        // Under the global -epoch flag, the strict-annotated function is
        // still held to strict persistency (and vice versa).
        let r = check(
            Epoch,
            r#"
module m
struct s { a: i64, b: i64 }
struct t { c: i64, d: i64 }
fn strict_path() attrs(model_strict) {
entry:
  %x = palloc s
  store %x.a, 1
  store %x.b, 2
  flush %x.a
  flush %x.b
  loc 44
  fence
  ret
}
fn epoch_path() {
entry:
  %y = palloc t
  epoch_begin
  store %y.c, 1
  store %y.d, 2
  flush %y.c
  flush %y.d
  fence
  epoch_end
  ret
}
"#,
        );
        // The strict function batches two writes on one fence: a
        // MultipleWritesAtOnce under ITS model; the epoch function is
        // clean under its own.
        assert!(r.contains(BugClass::MultipleWritesAtOnce, "m.c", 44), "{r}");
        assert_eq!(r.warnings.len(), 1, "{r}");
    }

    #[test]
    fn model_override_roundtrips_through_text() {
        let src = "module m
fn f() attrs(model_strand) {
entry:
  ret
}
";
        let m = crate::check_source(src, &DeepMcConfig::new(Strict)).unwrap();
        assert!(m.warnings.is_empty());
        let parsed = deepmc_pir::parse(src).unwrap();
        let text = deepmc_pir::print(&parsed);
        assert!(text.contains("model_strand"), "{text}");
        assert_eq!(deepmc_pir::parse(&text).unwrap(), parsed);
    }

    #[test]
    fn performance_only_config_filters_violations() {
        let src = r#"
module m
struct s { a: i64 }
fn main() {
entry:
  %x = palloc s
  store %x.a, 1
  ret
}
"#;
        let r = crate::check_source(src, &DeepMcConfig::new(Strict).performance_only()).unwrap();
        assert!(r.warnings.is_empty());
        let r = crate::check_source(src, &DeepMcConfig::new(Strict).violations_only()).unwrap();
        assert_eq!(r.warnings.len(), 1);
    }
}
