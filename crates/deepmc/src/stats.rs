//! `deepmc stats` — the regression observatory over the run ledger.
//!
//! The ledger ([`deepmc_obs::ledger`]) gives every instrumented run a
//! durable, fingerprinted record: counters, per-phase latency
//! percentiles, folded flamegraph stacks, exit code. This module is the
//! query side:
//!
//! * [`render_show`] — a percentile table for one record;
//! * [`render_diff`] — counter and percentile deltas between two
//!   records, with over-threshold rows marked;
//! * [`regress`] — the CI gate: compares per-phase p50/p99 (and wall)
//!   against a baseline record under a [`RegressPolicy`], reporting
//!   every regression beyond the thresholds;
//! * [`select`] — record selection by index (negative = from the end)
//!   or build id.
//!
//! All rendering is pure string building over already-loaded records, so
//! the golden-file tests in `tests/stats_golden.rs` pin the exact output
//! byte-for-byte.

use deepmc_obs::ledger::LedgerRecord;
use deepmc_obs::PhaseMetric;
use std::fmt::Write as _;

/// Pick a record from a loaded ledger: non-negative `sel` is an index
/// from the start, negative counts from the end (`-1` = latest).
pub fn select(records: &[LedgerRecord], sel: i64) -> Result<&LedgerRecord, String> {
    let n = records.len() as i64;
    if n == 0 {
        return Err("ledger has no records".into());
    }
    let idx = if sel < 0 { n + sel } else { sel };
    if idx < 0 || idx >= n {
        return Err(format!("record {sel} out of range (ledger has {n} record(s))"));
    }
    Ok(&records[idx as usize])
}

/// The latest record whose tool matches, if a filter is given.
pub fn filter_tool<'a>(records: &'a [LedgerRecord], tool: Option<&str>) -> Vec<&'a LedgerRecord> {
    records.iter().filter(|r| tool.is_none_or(|t| r.tool == t)).collect()
}

fn fmt_ms(us: u64) -> String {
    format!("{:.3}", us as f64 / 1000.0)
}

/// Percentile table for one record.
pub fn render_show(r: &LedgerRecord) -> String {
    let mut out = String::new();
    writeln!(out, "== {} run ==", r.tool).unwrap();
    writeln!(out, "build: {}  config: {}  exit: {}", r.build_id, r.config_digest, r.exit_code)
        .unwrap();
    writeln!(out, "wall: {} ms, workers: {}", fmt_ms(r.wall_us), r.workers).unwrap();
    writeln!(
        out,
        "{:<18} {:>7} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "phase", "count", "total ms", "p50 us", "p90 us", "p99 us", "max us"
    )
    .unwrap();
    for p in &r.phases {
        writeln!(
            out,
            "{:<18} {:>7} {:>10} {:>8} {:>8} {:>8} {:>8}",
            p.name,
            p.count,
            fmt_ms(p.total_us),
            p.p50_us,
            p.p90_us,
            p.p99_us,
            p.max_us
        )
        .unwrap();
    }
    if !r.counters.is_empty() {
        writeln!(out, "counters:").unwrap();
        for c in &r.counters {
            writeln!(out, "  {:<28} {}", c.name, c.value).unwrap();
        }
    }
    out
}

/// Signed percentage change from `from` to `to` (0 when both are 0).
fn pct_delta(from: u64, to: u64) -> f64 {
    if from == 0 {
        if to == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (to as f64 - from as f64) / from as f64
    }
}

fn fmt_pct(p: f64) -> String {
    if p.is_infinite() {
        "new".to_string()
    } else {
        format!("{p:+.1}%")
    }
}

/// Counter and percentile deltas between two records. Rows whose
/// absolute percentile change exceeds `threshold_pct` are marked `!`.
pub fn render_diff(a: &LedgerRecord, b: &LedgerRecord, threshold_pct: f64) -> String {
    let mut out = String::new();
    writeln!(out, "== stats diff: {} ({}) -> {} ({}) ==", a.build_id, a.tool, b.build_id, b.tool)
        .unwrap();
    if a.config_digest != b.config_digest {
        writeln!(
            out,
            "note: config digests differ ({} vs {}) — timings may not be comparable",
            a.config_digest, b.config_digest
        )
        .unwrap();
    }
    writeln!(
        out,
        "wall: {} ms -> {} ms ({})",
        fmt_ms(a.wall_us),
        fmt_ms(b.wall_us),
        fmt_pct(pct_delta(a.wall_us, b.wall_us))
    )
    .unwrap();
    writeln!(
        out,
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "phase", "p50 us", "Δp50", "p99 us", "Δp99"
    )
    .unwrap();
    let mut names: Vec<&str> = a.phases.iter().chain(&b.phases).map(|p| p.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    for name in names {
        let pa = a.phase(name);
        let pb = b.phase(name);
        let (p50a, p99a) = pa.map(|p| (p.p50_us, p.p99_us)).unwrap_or((0, 0));
        let (p50b, p99b) = pb.map(|p| (p.p50_us, p.p99_us)).unwrap_or((0, 0));
        let d50 = pct_delta(p50a, p50b);
        let d99 = pct_delta(p99a, p99b);
        let hot = d50.abs() > threshold_pct || d99.abs() > threshold_pct;
        writeln!(
            out,
            "{:<18} {:>5} -> {:>4} {:>12} {:>5} -> {:>4} {:>12}{}",
            name,
            p50a,
            p50b,
            fmt_pct(d50),
            p99a,
            p99b,
            fmt_pct(d99),
            if hot { "  !" } else { "" }
        )
        .unwrap();
    }
    let mut cnames: Vec<&str> =
        a.counters.iter().chain(&b.counters).map(|c| c.name.as_str()).collect();
    cnames.sort_unstable();
    cnames.dedup();
    let mut changed = 0usize;
    let mut counter_rows = String::new();
    for name in cnames {
        let va = a.counter(name);
        let vb = b.counter(name);
        if va != vb {
            changed += 1;
            writeln!(
                counter_rows,
                "  {:<28} {} -> {} ({})",
                name,
                va,
                vb,
                fmt_pct(pct_delta(va, vb))
            )
            .unwrap();
        }
    }
    if changed > 0 {
        writeln!(out, "counters changed ({changed}):").unwrap();
        out.push_str(&counter_rows);
    } else {
        writeln!(out, "counters: identical").unwrap();
    }
    out
}

/// Regression thresholds for [`regress`]. A phase regresses when its
/// p50 grows more than `max_p50_pct` percent or its p99 more than
/// `max_p99_pct` percent over the baseline. Phases whose baseline p50 is
/// under `min_us` are ignored — microsecond-scale phases jitter by whole
/// buckets and would gate on noise.
#[derive(Debug, Clone, Copy)]
pub struct RegressPolicy {
    pub max_p50_pct: f64,
    pub max_p99_pct: f64,
    pub min_us: u64,
}

impl Default for RegressPolicy {
    fn default() -> Self {
        RegressPolicy { max_p50_pct: 25.0, max_p99_pct: 50.0, min_us: 200 }
    }
}

/// Outcome of a regression check: the rendered report and whether any
/// phase regressed beyond the policy.
pub struct RegressOutcome {
    pub report: String,
    pub failed: bool,
}

fn check_phase(
    name: &str,
    base: &PhaseMetric,
    cur: &PhaseMetric,
    policy: &RegressPolicy,
    out: &mut String,
    failed: &mut bool,
) {
    let d50 = pct_delta(base.p50_us, cur.p50_us);
    let d99 = pct_delta(base.p99_us, cur.p99_us);
    let bad50 = d50 > policy.max_p50_pct;
    let bad99 = d99 > policy.max_p99_pct;
    if bad50 || bad99 {
        *failed = true;
        writeln!(
            out,
            "REGRESSION {name}: p50 {} -> {} us ({}), p99 {} -> {} us ({})",
            base.p50_us,
            cur.p50_us,
            fmt_pct(d50),
            base.p99_us,
            cur.p99_us,
            fmt_pct(d99)
        )
        .unwrap();
    } else {
        writeln!(
            out,
            "ok         {name}: p50 {} -> {} us ({}), p99 {} -> {} us ({})",
            base.p50_us,
            cur.p50_us,
            fmt_pct(d50),
            base.p99_us,
            cur.p99_us,
            fmt_pct(d99)
        )
        .unwrap();
    }
}

/// Gate `current` against `baseline` under `policy`.
///
/// Verdicts depend only on the two records and the policy — a run's
/// record is identical at `--jobs 1` and `--jobs 4` for a deterministic
/// workload's structure, and percentile *comparisons* are pure
/// arithmetic, so the gate is reproducible.
pub fn regress(
    baseline: &LedgerRecord,
    current: &LedgerRecord,
    policy: &RegressPolicy,
) -> RegressOutcome {
    let mut out = String::new();
    let mut failed = false;
    writeln!(
        out,
        "== stats regress: baseline {} vs current {} (p50 +{:.0}%, p99 +{:.0}%, floor {} us) ==",
        baseline.build_id, current.build_id, policy.max_p50_pct, policy.max_p99_pct, policy.min_us
    )
    .unwrap();
    if baseline.tool != current.tool {
        failed = true;
        writeln!(
            out,
            "REGRESSION tool mismatch: baseline is {}, current is {}",
            baseline.tool, current.tool
        )
        .unwrap();
    }
    let mut compared = 0usize;
    for base in &baseline.phases {
        if base.p50_us < policy.min_us {
            continue;
        }
        match current.phase(&base.name) {
            Some(cur) => {
                compared += 1;
                check_phase(&base.name, base, cur, policy, &mut out, &mut failed);
            }
            None => {
                failed = true;
                writeln!(out, "REGRESSION {}: phase missing from current run", base.name).unwrap();
            }
        }
    }
    if compared == 0 && !failed {
        writeln!(out, "note: no phase at or above the {} us floor; nothing gated", policy.min_us)
            .unwrap();
    }
    writeln!(out, "{}", if failed { "verdict: REGRESSED" } else { "verdict: ok" }).unwrap();
    RegressOutcome { report: out, failed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmc_obs::{CounterMetric, PhaseMetric};

    pub(crate) fn record(build: &str, phases: &[(&str, u64, u64, u64, u64)]) -> LedgerRecord {
        LedgerRecord {
            schema_version: deepmc_obs::LEDGER_SCHEMA_VERSION,
            tool: "deepmc check".into(),
            build_id: build.into(),
            config_digest: "0123456789abcdef".into(),
            exit_code: 0,
            wall_us: phases.iter().map(|p| p.2).sum(),
            workers: 1,
            counters: vec![CounterMetric { name: "check.roots".into(), value: 2 }],
            phases: phases
                .iter()
                .map(|(name, count, total, p50, p99)| PhaseMetric {
                    name: (*name).into(),
                    count: *count,
                    total_us: *total,
                    p50_us: *p50,
                    p90_us: (*p50 + *p99) / 2,
                    p99_us: *p99,
                    max_us: *p99,
                })
                .collect(),
            stacks: Vec::new(),
        }
    }

    #[test]
    fn identical_records_pass() {
        let r = record("a", &[("traces", 4, 4000, 900, 1400)]);
        let out = regress(&r, &r, &RegressPolicy::default());
        assert!(!out.failed, "{}", out.report);
        assert!(out.report.contains("verdict: ok"));
    }

    #[test]
    fn planted_2x_slowdown_fails() {
        let base = record("a", &[("traces", 4, 4000, 900, 1400)]);
        let slow = record("b", &[("traces", 4, 8000, 1800, 2800)]);
        let out = regress(&base, &slow, &RegressPolicy::default());
        assert!(out.failed);
        assert!(out.report.contains("REGRESSION traces"));
        assert!(out.report.contains("verdict: REGRESSED"));
    }

    #[test]
    fn sub_floor_phases_do_not_gate() {
        let base = record("a", &[("report", 1, 50, 50, 50)]);
        let slow = record("b", &[("report", 1, 500, 500, 500)]);
        let out = regress(&base, &slow, &RegressPolicy::default());
        assert!(!out.failed, "sub-floor phase must not gate: {}", out.report);
    }

    #[test]
    fn missing_phase_is_a_regression() {
        let base = record("a", &[("traces", 4, 4000, 900, 1400)]);
        let cur = record("b", &[("other", 4, 4000, 900, 1400)]);
        let out = regress(&base, &cur, &RegressPolicy::default());
        assert!(out.failed);
        assert!(out.report.contains("phase missing"));
    }

    #[test]
    fn improvement_passes() {
        let base = record("a", &[("traces", 4, 4000, 900, 1400)]);
        let fast = record("b", &[("traces", 4, 2000, 450, 700)]);
        assert!(!regress(&base, &fast, &RegressPolicy::default()).failed);
    }

    #[test]
    fn select_supports_negative_indices() {
        let recs = vec![record("a", &[]), record("b", &[]), record("c", &[])];
        assert_eq!(select(&recs, 0).unwrap().build_id, "a");
        assert_eq!(select(&recs, -1).unwrap().build_id, "c");
        assert_eq!(select(&recs, -3).unwrap().build_id, "a");
        assert!(select(&recs, 3).is_err());
        assert!(select(&recs, -4).is_err());
        assert!(select(&[], -1).is_err());
    }

    #[test]
    fn diff_marks_over_threshold_rows() {
        let a = record("a", &[("traces", 4, 4000, 900, 1400), ("cfg", 1, 100, 100, 100)]);
        let b = record("b", &[("traces", 4, 8000, 1800, 2800), ("cfg", 1, 100, 100, 100)]);
        let out = render_diff(&a, &b, 25.0);
        let traces_line = out.lines().find(|l| l.starts_with("traces")).unwrap();
        assert!(traces_line.ends_with('!'), "over-threshold row marked: {traces_line}");
        let cfg_line = out.lines().find(|l| l.starts_with("cfg")).unwrap();
        assert!(!cfg_line.ends_with('!'), "unchanged row unmarked: {cfg_line}");
    }
}
