//! Worker-pool plumbing for parallel checking.
//!
//! The pool itself lives in [`deepmc_analysis::pool`] (so `nvm-apps`,
//! which this crate depends on, can reuse it for the crash sweep without
//! a dependency cycle); this module re-exports it under the `deepmc`
//! namespace the CLI and external callers use.
//!
//! Worker count resolution, everywhere a pool is spawned:
//!
//! 1. an explicit `--jobs N` / API argument (`n > 0`),
//! 2. the `DEEPMC_JOBS` environment variable,
//! 3. the machine's available parallelism.
//!
//! Parallel runs are deterministic: results merge in work-item order, and
//! every consumer's merge is order-insensitive beyond that, so reports
//! and cache contents are byte-identical for any worker count.

pub use deepmc_analysis::pool::{resolve_jobs, resolve_jobs_request, run_indexed};
