//! The `deepmc` command-line tool.
//!
//! ```text
//! deepmc check  -strict|-epoch|-strand [--json] [--violations-only|--performance-only]
//!               [--no-cache] [--cache-dir DIR] [--cache-staleness-ms MS] [--jobs N]
//!               [--root-timeout SECS] [--max-walk-steps N] [--chaos-panic ROOT]
//!               [--profile] [--verbose] [--trace-out FILE] [--metrics-out FILE] FILE...
//! deepmc check  --ds STRUCTURE|all [--steps N] [--jobs N] [--profile] [--progress]
//!               [--trace-out FILE] [--metrics-out FILE] [--ledger FILE] [--build-id ID]
//! deepmc dynamic -strand ENTRY FILE...
//! deepmc run     ENTRY FILE...            # execute on the simulated NVM runtime
//! deepmc crash   ENTRY FILE... [--steps N] [--seeds N]
//! deepmc crashsweep [--app NAME] [--steps N] [--seeds N] [--seed S]
//!                   [--torn R] [--drop-flush R] [--poison R] [--inject-bug] [--jobs N]
//!                   [--prune] [--oracle] [--journal FILE] [--resume]
//!                   [--profile] [--trace-out FILE] [--metrics-out FILE]
//! deepmc rules                            # print the checking-rule catalog
//! ```
//!
//! `--jobs N` (or `DEEPMC_JOBS`) sizes the worker pool for `check` and
//! `crashsweep`; `--jobs 0` (the default) means all available cores.
//! Reports are byte-identical for any worker count.
//!
//! `crashsweep --prune` collapses crash states with identical persisted
//! images (and identical oracle-relevant history) into equivalence
//! classes and validates one representative each; the report is
//! identical to the exhaustive sweep's, with an explored/pruned split.
//! `--oracle` adds the output-equivalence oracles (rollback-past-ack and
//! prefix-cut) on top of the base invariants.
//!
//! Observability (`check` and `crashsweep`): `--profile` prints a
//! per-phase breakdown and counter summary to stderr, `--trace-out FILE`
//! writes a Chrome-trace JSON (load in Perfetto or `chrome://tracing`;
//! spans carry worker ids), `--metrics-out FILE` writes a versioned JSON
//! metrics snapshot (schema v2: per-phase p50/p90/p99/max latency
//! percentiles), `--ledger FILE` appends one fingerprinted
//! [`deepmc_obs::LedgerRecord`] per run (config digest, `--build-id`,
//! counters, percentiles, folded stacks, exit code) to an append-only
//! JSONL ledger, and `--progress` renders a throttled heartbeat on
//! stderr (steps done/total, classes pruned, ETA). All observability
//! output goes to stderr or the named files — the report on stdout is
//! byte-identical with or without instrumentation. `deepmc stats`
//! queries the ledger: `show`/`diff`/`regress` (the CI gate)/`flame`.
//!
//! Exit code is 0 when no warnings (or for `run`/`crash` on success), 1
//! when warnings were reported, 2 on usage or input errors, and 3 when
//! the run *completed but degraded*: some analysis roots panicked or ran
//! over their `--root-timeout`/`--max-walk-steps` budget (the report
//! carries the surviving warnings plus a `FAILED root` line per lost
//! root), or a crash sweep was interrupted before finishing (rerun with
//! `--resume` to pick up from the journal). Exit 3 takes precedence over
//! exit 1 so CI can distinguish "complete verdict" from "partial
//! verdict".

use deepmc::{DeepMcConfig, Report, StaticChecker};
use deepmc_analysis::Program;
use deepmc_interp::{InterpConfig, NoHooks, Outcome, Session};
use deepmc_models::PersistencyModel;
use deepmc_obs as obs;
use nvm_runtime::{CrashPolicy, PmemHeap, PmemPool, PoolConfig, TxManager};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "deepmc — detect deep memory persistency bugs in NVM programs\n\n\
         USAGE:\n  \
         deepmc check  (-strict|-epoch|-strand) [--json] [--violations-only|--performance-only] [--suppress DB.json] [--no-cache] [--cache-dir DIR] [--cache-staleness-ms MS] [--jobs N] [--root-timeout SECS] [--max-walk-steps N] [--chaos-panic ROOT] [--profile] [--verbose] [--progress] [--trace-out FILE] [--metrics-out FILE] [--ledger FILE] [--build-id ID] FILE...\n  \
         deepmc check  --ds STRUCTURE|all [--steps N] [--jobs N] [--profile] [--progress] [--trace-out FILE] [--metrics-out FILE] [--ledger FILE] [--build-id ID]   # DS-corpus detection matrix\n  \
         deepmc fix    (-strict|-epoch|-strand) FILE... [-o DIR]\n  \
         deepmc dynamic ENTRY FILE...\n  \
         deepmc run ENTRY FILE...\n  \
         deepmc crash ENTRY FILE... [--steps N] [--seeds N]\n  \
         deepmc crashsweep [--app all|memcached|redis|nstore] [--steps N] [--seeds N] [--seed S] [--torn R] [--drop-flush R] [--poison R] [--inject-bug] [--jobs N] [--prune] [--oracle] [--journal FILE] [--resume] [--profile] [--progress] [--trace-out FILE] [--metrics-out FILE] [--ledger FILE] [--build-id ID]\n  \
         deepmc stats show    [--ledger FILE] [--tool NAME] [N]              # percentile table (default: latest record)\n  \
         deepmc stats diff    [--ledger FILE] [--threshold PCT] [A B]        # deltas between two records (default: last two)\n  \
         deepmc stats regress --baseline FILE [--ledger FILE] [--max-p50-pct N] [--max-p99-pct N] [--min-us N]  # CI gate, exit 1 on regression\n  \
         deepmc stats flame   [--ledger FILE] [--out FILE] [N]               # collapsed stacks (inferno/flamegraph.pl format)\n  \
         deepmc dsg FUNCTION FILE...          # Graphviz of the function's data structure graph\n  \
         deepmc rules"
    );
    ExitCode::from(2)
}

/// Observability flags shared by every long-running subcommand
/// (`check`, `crashsweep` and its `--prune` exploration paths). The CLI
/// matrix test in `tests/cli_matrix.rs` fails when a subcommand forgets
/// one of these.
#[derive(Default)]
struct ObsOpts {
    profile: bool,
    verbose: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    progress: bool,
    ledger: Option<String>,
    build_id: Option<String>,
}

impl ObsOpts {
    fn enabled(&self) -> bool {
        self.profile
            || self.trace_out.is_some()
            || self.metrics_out.is_some()
            || self.ledger.is_some()
    }

    /// Consume one flag if it belongs to this group. `Ok(true)` if
    /// consumed, `Ok(false)` if not ours, `Err(())` on a missing value.
    fn parse(&mut self, a: &str, it: &mut std::slice::Iter<'_, String>) -> Result<bool, ()> {
        match a {
            "--profile" => self.profile = true,
            "--verbose" => self.verbose = true,
            "--progress" => self.progress = true,
            "--trace-out" => self.trace_out = Some(it.next().ok_or(())?.clone()),
            "--metrics-out" => self.metrics_out = Some(it.next().ok_or(())?.clone()),
            "--ledger" => self.ledger = Some(it.next().ok_or(())?.clone()),
            "--build-id" => self.build_id = Some(it.next().ok_or(())?.clone()),
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn recorder(&self) -> Option<obs::Recorder> {
        self.enabled().then(obs::Recorder::new)
    }

    /// Install the live-progress heartbeat when `--progress` was given.
    /// Strictly stderr presentation — reports, journals, and cache dirs
    /// are byte-identical with it on or off.
    fn progress_guard(&self, label: &'static str) -> Option<obs::progress::ProgressGuard> {
        self.progress.then(|| obs::progress::install(label))
    }

    /// The build id recorded in ledger entries: `--build-id`, then the
    /// `DEEPMC_BUILD_ID` environment (CI sets it to a git describe), then
    /// `"dev"`.
    fn build_id(&self) -> String {
        self.build_id
            .clone()
            .or_else(|| std::env::var("DEEPMC_BUILD_ID").ok())
            .unwrap_or_else(|| "dev".to_string())
    }

    /// Finish the recorder and write every requested output. Profile
    /// summaries go to stderr and machine output to the named files
    /// (plus the append-only ledger), so the report on stdout is
    /// untouched. `exit_code` is the code the process is about to exit
    /// with — compute it *before* calling this so the ledger records it.
    fn emit(
        &self,
        recorder: Option<obs::Recorder>,
        tool: &str,
        config_digest: &str,
        exit_code: i32,
    ) -> Result<(), String> {
        let Some(rec) = recorder else { return Ok(()) };
        let data = rec.finish();
        if self.profile {
            eprint!("{}", data.profile_summary(tool));
        }
        if let Some(path) = &self.trace_out {
            std::fs::write(path, data.chrome_trace())
                .map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, data.metrics_snapshot(tool).to_json())
                .map_err(|e| format!("cannot write metrics `{path}`: {e}"))?;
        }
        if let Some(path) = &self.ledger {
            let record = obs::LedgerRecord::from_data(
                tool,
                &self.build_id(),
                config_digest,
                exit_code,
                &data,
            );
            obs::ledger::append(std::path::Path::new(path), &record)
                .map_err(|e| format!("cannot append to ledger `{path}`: {e}"))?;
        }
        Ok(())
    }
}

/// Digest of the run configuration recorded in ledger entries, so
/// `stats` can refuse to compare runs with different configs. FNV-1a
/// over the argv, NUL-separated.
fn config_digest(cmd: &str, args: &[String]) -> String {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(cmd.as_bytes());
    for a in args {
        // Ledger/build-id plumbing must not change the digest: the same
        // analysis config recorded into two different ledgers is still
        // the same run configuration.
        bytes.push(0);
        bytes.extend_from_slice(a.as_bytes());
    }
    format!("{:016x}", obs::ledger::fnv1a(&bytes))
}

/// Strip flags that only steer telemetry output from a digest argv.
fn digest_args(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ledger" | "--build-id" | "--trace-out" | "--metrics-out" => {
                let _ = it.next();
            }
            "--profile" | "--verbose" | "--progress" => {}
            other => out.push(other.to_string()),
        }
    }
    out
}

fn load_modules(paths: &[String]) -> Result<Vec<deepmc_pir::Module>, String> {
    if paths.is_empty() {
        return Err("no input files".into());
    }
    paths
        .iter()
        .map(|p| {
            let src = std::fs::read_to_string(p).map_err(|e| format!("cannot read `{p}`: {e}"))?;
            let m = deepmc_pir::parse(&src).map_err(|e| format!("{p}: {e}"))?;
            deepmc_pir::verify::verify_module(&m).map_err(|e| format!("{p}: {e}"))?;
            Ok(m)
        })
        .collect()
}

/// The exit code a report maps to, computed separately from printing so
/// the ledger can record it before the report is emitted.
fn report_code(report: &Report) -> u8 {
    if report.degraded {
        // "Completed but partial" outranks "has warnings": a degraded
        // report may be missing warnings, so CI must not read exit 0/1 as
        // a complete verdict.
        3
    } else if report.warnings.is_empty() {
        0
    } else {
        1
    }
}

fn print_report(report: &Report, json: bool) {
    if json {
        println!("{}", serde_json::to_string_pretty(report).expect("report serializes"));
    } else {
        print!("{report}");
    }
}

fn report_exit(report: &Report, json: bool) -> ExitCode {
    print_report(report, json);
    ExitCode::from(report_code(report))
}

/// Silence the default panic banner for `--chaos-panic`-injected panics.
/// The pool's `catch_unwind` already converts them into `RootFailure`s;
/// without this, each injected panic would still splat a backtrace notice
/// on stderr and drown the real diagnostics.
fn quiet_chaos_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&'static str>().copied());
        if msg.is_some_and(|m| m.contains("chaos:")) {
            return;
        }
        prev(info);
    }));
}

/// `deepmc check --ds STRUCTURE|all` — run the concurrent persistent
/// data-structure corpus through all three validators and compare every
/// cell against the registered ground truth:
///
/// * **static**: the variant's PIR protocol model under the Epoch-model
///   static checker (one operation is one epoch — see
///   `nvm_apps::ds::pir`);
/// * **dynamic**: the same model executed under the Strand model with
///   the happens-before detector;
/// * **crash**: the pruned crash sweep (`--prune --oracle` semantics)
///   over the Rust implementation's canonical operation script.
///
/// The verdict table on stdout is deterministic for any `--jobs` value.
/// Exit 0 when every cell matches the expected matrix, 1 on any
/// mismatch, 2 on usage errors.
fn cmd_check_ds(args: &[String]) -> ExitCode {
    use nvm_apps::ds::{self, DsKind, DsSweepConfig};
    let mut target: Option<String> = None;
    let mut steps = 24u64;
    let mut jobs = 0usize;
    let mut obs_opts = ObsOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match obs_opts.parse(a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(()) => return usage(),
        }
        match a.as_str() {
            "--ds" => match it.next() {
                Some(t) => target = Some(t.clone()),
                None => return usage(),
            },
            "--steps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => steps = n,
                _ => return usage(),
            },
            // 0 is a valid request: "use all cores" (resolve_jobs_request).
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage(),
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let kinds: Vec<DsKind> = match target.as_deref() {
        Some("all") => DsKind::ALL.to_vec(),
        Some(name) => match DsKind::from_name(name) {
            Some(k) => vec![k],
            None => {
                eprintln!(
                    "unknown structure `{name}` (expected all, {})",
                    DsKind::ALL.map(DsKind::name).join(", ")
                );
                return ExitCode::from(2);
            }
        },
        None => return usage(),
    };
    let recorder = obs_opts.recorder();
    let attach = recorder.as_ref().map(|r| r.attach(0));
    let progress = obs_opts.progress_guard("ds");
    let total_span = obs::span("total");
    let hit = |b: bool| if b { "hit" } else { "clean" };
    let static_config = DeepMcConfig::new(PersistencyModel::Epoch);
    let mut lines = Vec::new();
    let mut cells = 0u64;
    let mut mismatches = 0u64;
    for &kind in &kinds {
        for bug in kind.variants() {
            let src = ds::pir::pir_model(kind, bug);

            let static_span = obs::span("ds.static");
            let got_static = match deepmc::check_source(&src, &static_config) {
                Ok(r) => r
                    .warnings
                    .iter()
                    .any(|w| w.class.severity() == deepmc_models::Severity::Violation),
                Err(e) => {
                    eprintln!(
                        "{}/{}: static check failed: {e}",
                        kind.name(),
                        ds::variant_name(bug)
                    );
                    return ExitCode::from(2);
                }
            };
            drop(static_span);

            let dynamic_span = obs::span("ds.dynamic");
            let module = match deepmc_pir::parse(&src) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{}/{}: model parse failed: {e}", kind.name(), ds::variant_name(bug));
                    return ExitCode::from(2);
                }
            };
            let got_dynamic = match deepmc::dynamic::check_dynamic(
                std::slice::from_ref(&module),
                "main",
                PersistencyModel::Strand,
            ) {
                Ok(r) => !r.warnings.is_empty(),
                Err(e) => {
                    eprintln!(
                        "{}/{}: dynamic check failed: {e}",
                        kind.name(),
                        ds::variant_name(bug)
                    );
                    return ExitCode::from(2);
                }
            };
            drop(dynamic_span);

            let crash_span = obs::span("ds.crash");
            let mut cfg = DsSweepConfig::new(kind, bug);
            cfg.steps = steps;
            cfg.prune = true;
            cfg.oracle = true;
            cfg.jobs = jobs;
            let sweep = ds::ds_sweep(&cfg);
            let got_crash = !sweep.violations.is_empty();
            drop(crash_span);

            let e = ds::expected(bug);
            let ok = got_static == e.static_ && got_dynamic == e.dynamic && got_crash == e.crash;
            cells += 1;
            if !ok {
                mismatches += 1;
            }
            lines.push(format!(
                "{}/{}: static={} dynamic={} crash={} {}",
                kind.name(),
                ds::variant_name(bug),
                hit(got_static),
                hit(got_dynamic),
                hit(got_crash),
                if ok {
                    "ok".to_string()
                } else {
                    format!(
                        "MISMATCH (expected static={} dynamic={} crash={})",
                        hit(e.static_),
                        hit(e.dynamic),
                        hit(e.crash)
                    )
                },
            ));
        }
    }
    drop(total_span);
    drop(progress);
    drop(attach);
    let code: u8 = if mismatches > 0 { 1 } else { 0 };
    let digest = config_digest("check-ds", &digest_args(args));
    if let Err(e) = obs_opts.emit(recorder, "deepmc check --ds", &digest, i32::from(code)) {
        eprintln!("{e}");
        return ExitCode::from(2);
    }
    println!(
        "ds corpus: {} structure(s), {} cell(s), steps={steps}, pruned sweep with oracle",
        kinds.len(),
        cells
    );
    for line in &lines {
        println!("{line}");
    }
    println!("ds corpus verdict: {} cell(s), {} mismatch(es)", cells, mismatches);
    ExitCode::from(code)
}

fn cmd_check(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--ds") {
        return cmd_check_ds(args);
    }
    let mut model: Option<PersistencyModel> = None;
    let mut json = false;
    let mut violations_only = false;
    let mut performance_only = false;
    let mut suppress_db: Option<String> = None;
    let mut no_cache = false;
    let mut cache_dir = deepmc::cache::DEFAULT_CACHE_DIR.to_string();
    let mut cache_staleness_ms: Option<u64> = None;
    let mut jobs = 0usize;
    let mut root_timeout_secs: Option<u64> = None;
    let mut max_walk_steps: Option<u64> = None;
    let mut chaos_roots: Vec<String> = Vec::new();
    let mut obs_opts = ObsOpts::default();
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match obs_opts.parse(a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(()) => return usage(),
        }
        match a.as_str() {
            "--suppress" => match it.next() {
                Some(path) => suppress_db = Some(path.clone()),
                None => return usage(),
            },
            "--no-cache" => no_cache = true,
            "--cache-dir" => match it.next() {
                Some(dir) => cache_dir = dir.clone(),
                None => return usage(),
            },
            "--cache-staleness-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => cache_staleness_ms = Some(n),
                _ => return usage(),
            },
            // 0 is a valid request: "use all cores" (resolve_jobs_request).
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage(),
            },
            "--root-timeout" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => root_timeout_secs = Some(n),
                _ => return usage(),
            },
            "--max-walk-steps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => max_walk_steps = Some(n),
                _ => return usage(),
            },
            "--chaos-panic" => match it.next() {
                Some(root) => chaos_roots.push(root.clone()),
                None => return usage(),
            },
            "-strict" | "-epoch" | "-strand" => match a.parse() {
                Ok(m) => model = Some(m),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--violations-only" => violations_only = true,
            "--performance-only" => performance_only = true,
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                return usage();
            }
            file => files.push(file.to_string()),
        }
    }
    let Some(model) = model else {
        eprintln!("specify the intended persistency model: -strict, -epoch, or -strand");
        return ExitCode::from(2);
    };
    let mut config = DeepMcConfig::new(model);
    if violations_only {
        config = config.violations_only();
    }
    if performance_only {
        config = config.performance_only();
    }
    config.trace.root_timeout = root_timeout_secs.map(std::time::Duration::from_secs);
    config.trace.max_walk_steps = max_walk_steps;
    if !chaos_roots.is_empty() {
        quiet_chaos_panics();
        for root in chaos_roots {
            config = config.with_chaos_panic(root);
        }
    }
    let recorder = obs_opts.recorder();
    let attach = recorder.as_ref().map(|r| r.attach(0));
    let progress = obs_opts.progress_guard("check");
    let total_span = obs::span("total");
    let parse_span = obs::span("parse");
    let modules = match load_modules(&files) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let program = match Program::new(modules) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    drop(parse_span);
    let cache = (!no_cache).then(|| {
        let c = deepmc::AnalysisCache::open(&cache_dir);
        match cache_staleness_ms {
            Some(ms) => c.with_staleness(std::time::Duration::from_millis(ms)),
            None => c,
        }
    });
    let (mut report, stats) =
        StaticChecker::new(config).check_program_with_jobs(&program, cache.as_ref(), jobs);
    if !no_cache && (obs_opts.verbose || obs_opts.profile) {
        // Stats go to stderr so the report on stdout stays byte-identical
        // between cold and warm runs. Routed through the obs note
        // emitter: printed once even if this path re-runs, and recorded
        // as an event when instrumented. (The same numbers are always
        // available as cache.* counters via --metrics-out/--profile.)
        obs::note(
            "cache.stats",
            &format!(
                "cache: {} hit(s), {} miss(es), {} store(s), {} quarantined, {} trace(s) ({} hit rate, dir {})",
                stats.hits,
                stats.misses,
                stats.stores,
                stats.quarantined,
                stats.traces,
                format_args!("{:.0}%", stats.hit_rate() * 100.0),
                cache_dir,
            ),
        );
    }
    if let Some(path) = suppress_db {
        let db = match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| deepmc::suppress::SuppressionDb::from_json(&s).map_err(|e| e.to_string()))
        {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cannot load suppression db `{path}`: {e}");
                return ExitCode::from(2);
            }
        };
        let (surviving, suppressed) = db.apply(&report);
        if !suppressed.is_empty() {
            eprintln!("({} warning(s) suppressed by {path})", suppressed.len());
        }
        report = surviving;
    }
    drop(total_span);
    drop(progress);
    drop(attach);
    // The exit code is part of the ledger record, so compute it before
    // emitting telemetry; the report itself prints after (stdout and
    // stderr are separate channels, so report bytes are unaffected).
    let code = report_code(&report);
    let digest = config_digest("check", &digest_args(args));
    if let Err(e) = obs_opts.emit(recorder, "deepmc check", &digest, i32::from(code)) {
        eprintln!("{e}");
        return ExitCode::from(2);
    }
    print_report(&report, json);
    ExitCode::from(code)
}

fn cmd_fix(args: &[String]) -> ExitCode {
    let mut model: Option<PersistencyModel> = None;
    let mut out_dir: Option<String> = None;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-strict" | "-epoch" | "-strand" => model = a.parse().ok(),
            "-o" => match it.next() {
                Some(d) => out_dir = Some(d.clone()),
                None => return usage(),
            },
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                return usage();
            }
            file => files.push(file.to_string()),
        }
    }
    let Some(model) = model else {
        eprintln!("specify the intended persistency model: -strict, -epoch, or -strand");
        return ExitCode::from(2);
    };
    let modules = match load_modules(&files) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let config = DeepMcConfig::new(model);
    let (fixed, report, applied) = deepmc::fixer::fix_until_stable(modules, &config, 8);
    eprintln!("applied {applied} fix(es); {} warning(s) remain", report.warnings.len());
    for (path, module) in files.iter().zip(&fixed) {
        let text = deepmc_pir::print(module);
        match &out_dir {
            None => {
                println!("// ===== fixed: {path} =====");
                println!("{text}");
            }
            Some(dir) => {
                let name = std::path::Path::new(path)
                    .file_name()
                    .map(|n| n.to_string_lossy().to_string())
                    .unwrap_or_else(|| "out.pir".into());
                let out = std::path::Path::new(dir).join(name);
                if let Err(e) = std::fs::write(&out, text) {
                    eprintln!("cannot write {}: {e}", out.display());
                    return ExitCode::from(2);
                }
                eprintln!("wrote {}", out.display());
            }
        }
    }
    if report.warnings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_dynamic(args: &[String]) -> ExitCode {
    let Some((entry, files)) = args.split_first() else { return usage() };
    let modules = match load_modules(files) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match deepmc::dynamic::check_dynamic(&modules, entry, PersistencyModel::Strand) {
        Ok(report) => report_exit(&report, false),
        Err(e) => {
            eprintln!("execution failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn with_session<T>(
    modules: &[deepmc_pir::Module],
    config: InterpConfig,
    f: impl FnOnce(&Session<'_>) -> T,
) -> (T, PmemPool) {
    let pool = PmemPool::new(PoolConfig { size: 64 << 20, shards: 16, ..Default::default() });
    let out = {
        let heap = PmemHeap::open(&pool);
        let log = heap.alloc(1 << 20);
        let txm = TxManager::new(&pool, log, 1 << 20);
        let session =
            Session { modules, pool: &pool, heap: &heap, txm: &txm, hooks: &NoHooks, config };
        f(&session)
    };
    (out, pool)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some((entry, files)) = args.split_first() else { return usage() };
    let modules = match load_modules(files) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let (result, pool) = with_session(&modules, InterpConfig::default(), |s| s.run(entry, &[]));
    match result {
        Ok(Outcome::Finished(v)) => {
            let stats = pool.stats();
            println!("finished: {v:?}");
            println!(
                "pmem stats: {} stores ({} B), {} loads, {} flushes ({} wasted), \
                 {} fences, {} lines written back, {} lines left non-durable",
                stats.stores,
                stats.bytes_stored,
                stats.loads,
                stats.flushes,
                stats.clean_flushes,
                stats.fences,
                stats.lines_written_back,
                pool.non_durable_lines()
            );
            ExitCode::SUCCESS
        }
        Ok(Outcome::Crashed { step }) => {
            println!("crashed at injected step {step}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("execution failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_crash(args: &[String]) -> ExitCode {
    let mut steps = 64u64;
    let mut seeds = 16u64;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--steps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => steps = n,
                None => return usage(),
            },
            "--seeds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seeds = n,
                None => return usage(),
            },
            other => positional.push(other.to_string()),
        }
    }
    let Some((entry, files)) = positional.split_first() else { return usage() };
    let modules = match load_modules(files) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut crashes = 0u64;
    let mut distinct_images = std::collections::HashSet::new();
    for step in 0..steps {
        let config = InterpConfig { crash_at: Some(step), ..Default::default() };
        let (result, pool) = with_session(&modules, config, |s| s.run(entry, &[]));
        match result {
            Ok(Outcome::Finished(_)) => break, // ran past the last step
            Ok(Outcome::Crashed { .. }) => {
                crashes += 1;
                for seed in 0..seeds {
                    let img = CrashPolicy::Random(seed).apply(&pool);
                    let mut hasher = std::collections::hash_map::DefaultHasher::new();
                    use std::hash::{Hash, Hasher};
                    let mut buf = vec![0u8; img.len().min(1 << 16)];
                    img.read(nvm_runtime::PAddr(0), &mut buf);
                    buf.hash(&mut hasher);
                    distinct_images.insert(hasher.finish());
                }
            }
            Err(e) => {
                eprintln!("execution failed at step {step}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    println!(
        "crash matrix: {crashes} crash points × {seeds} eviction orders → \
         {} distinct durable states",
        distinct_images.len()
    );
    println!("inspect interesting states with `deepmc run` and CrashPolicy in a test");
    ExitCode::SUCCESS
}

fn cmd_crashsweep(args: &[String]) -> ExitCode {
    use nvm_apps::crashsweep::{sweep_session, SweepApp, SweepConfig, SweepJournal, SweepSession};
    let mut cfg = SweepConfig::default();
    let mut apps: Vec<SweepApp> = SweepApp::ALL.to_vec();
    let mut journal_path: Option<String> = None;
    let mut resume = false;
    let mut obs_opts = ObsOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match obs_opts.parse(a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(()) => return usage(),
        }
        let mut numeric = |target: &mut u64| match it.next().and_then(|v| v.parse().ok()) {
            Some(n) => {
                *target = n;
                true
            }
            None => false,
        };
        match a.as_str() {
            "--app" => match it.next().map(String::as_str) {
                Some("all") => apps = SweepApp::ALL.to_vec(),
                Some("memcached") => apps = vec![SweepApp::Memcached],
                Some("redis") => apps = vec![SweepApp::Redis],
                Some("nstore") => apps = vec![SweepApp::NStore],
                _ => return usage(),
            },
            "--steps" => {
                if !numeric(&mut cfg.steps) {
                    return usage();
                }
            }
            "--seeds" => {
                if !numeric(&mut cfg.random_seeds) {
                    return usage();
                }
            }
            "--seed" => {
                if !numeric(&mut cfg.seed) {
                    return usage();
                }
            }
            // 0 is a valid request: "use all cores" (resolve_jobs_request).
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => cfg.jobs = n,
                None => return usage(),
            },
            "--torn" => match it.next().and_then(|v| v.parse().ok()) {
                Some(r) => cfg.fault.torn_store_rate = r,
                None => return usage(),
            },
            "--drop-flush" => match it.next().and_then(|v| v.parse().ok()) {
                Some(r) => cfg.fault.dropped_flush_rate = r,
                None => return usage(),
            },
            "--poison" => match it.next().and_then(|v| v.parse().ok()) {
                Some(r) => cfg.fault.poison_rate = r,
                None => return usage(),
            },
            "--inject-bug" => cfg.inject_bug = true,
            "--prune" => cfg.prune = true,
            "--oracle" => cfg.oracle = true,
            "--journal" => match it.next() {
                Some(p) => journal_path = Some(p.clone()),
                None => return usage(),
            },
            "--resume" => resume = true,
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    cfg.fault.seed = cfg.seed;
    println!(
        "crash sweep: {} step(s), {}+{} eviction policies, faults: torn={} drop-flush={} poison={}{}{}{}",
        cfg.steps,
        3,
        cfg.random_seeds,
        cfg.fault.torn_store_rate,
        cfg.fault.dropped_flush_rate,
        cfg.fault.poison_rate,
        if cfg.inject_bug { ", seeded bugs injected" } else { "" },
        if cfg.prune { ", pruned exploration" } else { "" },
        if cfg.oracle { ", output-equivalence oracles" } else { "" }
    );
    // A cooperative interrupt point for CI and tests: after N freshly
    // journaled steps the session cancels itself, exactly as a Ctrl-C
    // handler would — workers drain, the journal stays flushed, and the
    // run exits 3 with partial results.
    let trip_after =
        std::env::var("DEEPMC_SWEEP_INTERRUPT_AFTER").ok().and_then(|v| v.parse::<u64>().ok());
    let journal = if journal_path.is_some() || resume || trip_after.is_some() {
        let path = journal_path.unwrap_or_else(|| ".deepmc-sweep.journal".to_string());
        match SweepJournal::open(&path, &cfg, &apps, resume) {
            Ok(j) => Some(j),
            Err(e) => {
                eprintln!("cannot open sweep journal `{path}`: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };
    let session = SweepSession::new(journal.as_ref(), trip_after);
    let recorder = obs_opts.recorder();
    let run = {
        let _attach = recorder.as_ref().map(|r| r.attach(0));
        let _progress = obs_opts.progress_guard(if cfg.prune { "explore" } else { "sweep" });
        let _total = obs::span("total");
        sweep_session(&cfg, &apps, &session)
    };
    // Decide the exit code (and the FAIL lines that go with it) before
    // emitting telemetry, so the ledger records the code the process
    // actually exits with.
    let mut failed = false;
    let mut bug_missed: Vec<&str> = Vec::new();
    for outcome in &run.outcomes {
        // With the bug injected the sweep is *supposed* to catch it: the
        // run succeeds only if every loss is attributed. An interrupted
        // (partial) run skips this check — exit 3 already says the
        // verdict is incomplete.
        failed |= !outcome.violations.is_empty();
        if !run.interrupted() && cfg.inject_bug && outcome.bug_attributed == 0 {
            bug_missed.push(outcome.app);
            failed = true;
        }
    }
    let code: u8 = if run.interrupted() {
        3
    } else if failed {
        1
    } else {
        0
    };
    let digest = config_digest("crashsweep", &digest_args(args));
    if let Err(e) = obs_opts.emit(recorder, "deepmc crashsweep", &digest, i32::from(code)) {
        eprintln!("{e}");
        return ExitCode::from(2);
    }
    if run.resumed_steps > 0 {
        eprintln!("resumed: {} step(s) replayed from the journal", run.resumed_steps);
    }
    for outcome in &run.outcomes {
        print!("{outcome}");
        if bug_missed.contains(&outcome.app) {
            println!("  FAIL: injected bug was not observed");
        }
    }
    if run.interrupted() {
        eprintln!(
            "sweep interrupted: {} step(s) not executed; rerun with --resume to continue",
            run.skipped_steps
        );
    }
    ExitCode::from(code)
}

/// `deepmc stats` — query the run ledger: `show` a percentile table,
/// `diff` two records, `regress` against a baseline (the CI gate), or
/// emit a `flame`graph in collapsed-stack format.
fn cmd_stats(args: &[String]) -> ExitCode {
    use deepmc::stats;
    let Some((verb, rest)) = args.split_first() else {
        eprintln!(
            "usage: deepmc stats (show|diff|regress|flame) [--ledger PATH] [--tool NAME] ..."
        );
        return ExitCode::from(2);
    };
    let mut ledger_path = obs::ledger::DEFAULT_LEDGER_PATH.to_string();
    let mut baseline_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut tool: Option<String> = None;
    let mut threshold = 25.0f64;
    let mut policy = stats::RegressPolicy::default();
    let mut selectors: Vec<i64> = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ledger" => match it.next() {
                Some(p) => ledger_path = p.clone(),
                None => return usage(),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(p.clone()),
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => return usage(),
            },
            "--tool" => match it.next() {
                Some(t) => tool = Some(t.clone()),
                None => return usage(),
            },
            "--threshold" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => threshold = t,
                None => return usage(),
            },
            "--max-p50-pct" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => policy.max_p50_pct = t,
                None => return usage(),
            },
            "--max-p99-pct" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => policy.max_p99_pct = t,
                None => return usage(),
            },
            "--min-us" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => policy.min_us = t,
                None => return usage(),
            },
            // Record selectors: integers, negative = from the end
            // (`-1` is the latest record).
            sel if sel.parse::<i64>().is_ok() => selectors.push(sel.parse().unwrap()),
            other => {
                eprintln!("unknown stats argument `{other}`");
                return usage();
            }
        }
    }
    let load = |path: &str| -> Result<Vec<obs::LedgerRecord>, String> {
        let loaded = obs::ledger::load(std::path::Path::new(path))?;
        if loaded.rejected > 0 {
            obs::warning(
                "ledger.rejected",
                &format!(
                    "{}: {} damaged record(s) rejected (fingerprint mismatch or unparsable)",
                    path, loaded.rejected
                ),
            );
        }
        if loaded.torn {
            obs::warning(
                "ledger.torn",
                &format!("{path}: dropped a torn trailing record (interrupted append)"),
            );
        }
        Ok(loaded.records)
    };
    let current = match load(&ledger_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let current: Vec<obs::LedgerRecord> =
        stats::filter_tool(&current, tool.as_deref()).into_iter().cloned().collect();
    let pick = |sel: i64| stats::select(&current, sel).cloned();
    match verb.as_str() {
        "show" => {
            let sel = selectors.first().copied().unwrap_or(-1);
            match pick(sel) {
                Ok(r) => {
                    print!("{}", stats::render_show(&r));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::from(2)
                }
            }
        }
        "diff" => {
            let (sa, sb) = match selectors[..] {
                [a, b] => (a, b),
                [] => (-2, -1),
                _ => {
                    eprintln!("stats diff takes exactly two record selectors (or none for the last two runs)");
                    return ExitCode::from(2);
                }
            };
            match (pick(sa), pick(sb)) {
                (Ok(a), Ok(b)) => {
                    print!("{}", stats::render_diff(&a, &b, threshold));
                    ExitCode::SUCCESS
                }
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("{e}");
                    ExitCode::from(2)
                }
            }
        }
        "regress" => {
            let Some(baseline_path) = baseline_path else {
                eprintln!("stats regress requires --baseline LEDGER");
                return ExitCode::from(2);
            };
            let baseline = match load(&baseline_path) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let baseline: Vec<obs::LedgerRecord> =
                stats::filter_tool(&baseline, tool.as_deref()).into_iter().cloned().collect();
            let base = match stats::select(&baseline, -1) {
                Ok(r) => r.clone(),
                Err(e) => {
                    eprintln!("baseline {baseline_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let cur = match pick(selectors.first().copied().unwrap_or(-1)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let outcome = stats::regress(&base, &cur, &policy);
            print!("{}", outcome.report);
            if outcome.failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        "flame" => {
            let r = match pick(selectors.first().copied().unwrap_or(-1)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let folded = obs::flame::to_folded(&r.stacks);
            match out_path {
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, folded) {
                        eprintln!("cannot write flamegraph `{path}`: {e}");
                        return ExitCode::from(2);
                    }
                    eprintln!("wrote {} stack(s) to {path}", r.stacks.len());
                }
                None => print!("{folded}"),
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown stats verb `{other}` (expected show, diff, regress, or flame)");
            ExitCode::from(2)
        }
    }
}

fn cmd_dsg(args: &[String]) -> ExitCode {
    let Some((func, files)) = args.split_first() else { return usage() };
    let modules = match load_modules(files) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let program = match Program::new(modules) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let Some(fr) = program.resolve(func) else {
        eprintln!("unknown function `{func}`");
        return ExitCode::from(2);
    };
    let cg = deepmc_analysis::CallGraph::build(&program);
    let dsa = deepmc_analysis::DsaResult::analyze(&program, &cg);
    print!("{}", dsa.graph(fr).to_dot(&program, fr, func));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "check" => cmd_check(rest),
            "fix" => cmd_fix(rest),
            "dynamic" => cmd_dynamic(rest),
            "run" => cmd_run(rest),
            "crash" => cmd_crash(rest),
            "crashsweep" => cmd_crashsweep(rest),
            "stats" => cmd_stats(rest),
            "dsg" => cmd_dsg(rest),
            "rules" => {
                for rule in deepmc_models::RULES {
                    println!(
                        "[{:?}] {} — {}",
                        rule.analysis,
                        rule.class.table1_label(),
                        rule.statement
                    );
                }
                ExitCode::SUCCESS
            }
            _ => usage(),
        },
        None => usage(),
    }
}
