//! User-specified suppression database — the paper's §5.4 future work:
//! "To further reduce false positives, we could maintain a database of
//! user-specified rules to filter out some warnings. The database can be
//! updated with the learned experiences of previously validated false
//! positives."
//!
//! A [`SuppressionDb`] holds validated-false-positive records; applying it
//! to a report splits the warnings into surviving and suppressed. The
//! database serializes to JSON so teams can commit it next to their code,
//! and it can be *learned*: feed it the warnings a reviewer marked as
//! false positives and it remembers them.

use crate::report::{Report, Warning};
use deepmc_models::BugClass;
use serde::{Deserialize, Serialize};

/// One suppression record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Suppression {
    /// Bug class to suppress; `None` matches any class.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub class: Option<BugClass>,
    /// File the warning must be in (exact match).
    pub file: String,
    /// Line the warning must be at; `None` matches the whole file.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub line: Option<u32>,
    /// Why this is a false positive (the reviewer's note).
    pub reason: String,
}

impl Suppression {
    /// Does this record match `w`?
    pub fn matches(&self, w: &Warning) -> bool {
        self.file == w.file
            && self.line.is_none_or(|l| l == w.line)
            && self.class.is_none_or(|c| c == w.class)
    }
}

/// The database.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuppressionDb {
    pub suppressions: Vec<Suppression>,
}

impl SuppressionDb {
    pub fn new() -> SuppressionDb {
        SuppressionDb::default()
    }

    /// Learn from a reviewer's verdicts: record each warning validated as
    /// a false positive.
    pub fn learn(&mut self, false_positive: &Warning, reason: impl Into<String>) {
        let record = Suppression {
            class: Some(false_positive.class),
            file: false_positive.file.clone(),
            line: Some(false_positive.line),
            reason: reason.into(),
        };
        if !self.suppressions.contains(&record) {
            self.suppressions.push(record);
        }
    }

    /// Split a report into (surviving, suppressed).
    pub fn apply(&self, report: &Report) -> (Report, Vec<Warning>) {
        let mut surviving = Vec::new();
        let mut suppressed = Vec::new();
        for w in &report.warnings {
            if self.suppressions.iter().any(|s| s.matches(w)) {
                suppressed.push(w.clone());
            } else {
                surviving.push(w.clone());
            }
        }
        (
            Report {
                warnings: surviving,
                notes: report.notes.clone(),
                failures: report.failures.clone(),
                degraded: report.degraded,
            },
            suppressed,
        )
    }

    /// Serialize to the committed JSON form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("db serializes")
    }

    /// Load from JSON.
    pub fn from_json(s: &str) -> Result<SuppressionDb, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmc_models::PersistencyModel;

    fn warning(class: BugClass, file: &str, line: u32) -> Warning {
        Warning {
            file: file.into(),
            line,
            class,
            function: "f".into(),
            root: "main".into(),
            message: "m".into(),
            model: PersistencyModel::Strict,
            dynamic: false,
            fix: None,
        }
    }

    #[test]
    fn exact_suppression_filters_one_warning() {
        let mut db = SuppressionDb::new();
        let fp = warning(BugClass::UnflushedWrite, "a.c", 10);
        db.learn(&fp, "coverage unprovable; replicas always flush");
        let report =
            Report::from_raw(vec![fp.clone(), warning(BugClass::UnflushedWrite, "a.c", 11)]);
        let (surviving, suppressed) = db.apply(&report);
        assert_eq!(surviving.warnings.len(), 1);
        assert_eq!(surviving.warnings[0].line, 11);
        assert_eq!(suppressed.len(), 1);
    }

    #[test]
    fn file_wide_suppression() {
        let db = SuppressionDb {
            suppressions: vec![Suppression {
                class: None,
                file: "generated.c".into(),
                line: None,
                reason: "generated code audited separately".into(),
            }],
        };
        let report = Report::from_raw(vec![
            warning(BugClass::RedundantWriteback, "generated.c", 1),
            warning(BugClass::UnflushedWrite, "generated.c", 2),
            warning(BugClass::UnflushedWrite, "real.c", 3),
        ]);
        let (surviving, suppressed) = db.apply(&report);
        assert_eq!(surviving.warnings.len(), 1);
        assert_eq!(suppressed.len(), 2);
    }

    #[test]
    fn learn_is_idempotent() {
        let mut db = SuppressionDb::new();
        let fp = warning(BugClass::EmptyDurableTx, "x.c", 5);
        db.learn(&fp, "loop always iterates");
        db.learn(&fp, "loop always iterates");
        assert_eq!(db.suppressions.len(), 1);
    }

    #[test]
    fn json_roundtrip() {
        let mut db = SuppressionDb::new();
        db.learn(&warning(BugClass::SemanticMismatch, "y.c", 207), "dead debug path");
        let back = SuppressionDb::from_json(&db.to_json()).unwrap();
        assert_eq!(db, back);
    }
}
