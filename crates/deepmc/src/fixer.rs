//! Automated bug fixing — the paper's stated future work ("Automated bug
//! fixing is out of the scope of this work, but we wish to explore it as
//! future work", §4.3).
//!
//! The static checker attaches a machine-applicable [`FixHint`] to every
//! warning whose repair is mechanical:
//!
//! | class | fix |
//! |---|---|
//! | UnflushedWrite (in tx) | insert `tx_add` before the store |
//! | UnflushedWrite (elsewhere) | insert `persist` after the store |
//! | MissingPersistBarrier | insert `fence` after the flush |
//! | MissingBarrierNestedTx | insert `fence` before the inner region end |
//! | SemanticMismatch (delayed persist) | persist at the store, drop the late write-back |
//! | UnmodifiedWriteback (never written) | remove the write-back |
//! | UnmodifiedWriteback (whole object) | narrow to the written fields |
//! | RedundantWriteback / RedundantPersistInTx | remove the write-back |
//!
//! [`apply_fixes`] edits the PIR module; the result is made for re-checking
//! (`fix → check → fix …` converges because every applied fix removes its
//! warning without introducing persistent operations the rules reject —
//! property-tested in `tests/`).

use crate::report::{FixHint, Warning};
use deepmc_pir::{Inst, Module, Place, SourceLoc, Spanned};

/// Outcome of attempting one warning's fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixOutcome {
    /// The edit was applied.
    Applied { description: String },
    /// The warning carries no machine-applicable hint.
    NoHint,
    /// The hint's target instruction was not found (e.g. already edited).
    TargetMissing,
}

/// One warning's fix attempt, for reporting.
#[derive(Debug, Clone)]
pub struct AppliedFix {
    pub warning: Warning,
    pub outcome: FixOutcome,
}

/// Location of one instruction in a module.
#[derive(Debug, Clone, Copy)]
struct InstPos {
    func: usize,
    block: usize,
    inst: usize,
}

/// Find the first instruction at `line` satisfying `pred`.
fn find_inst(module: &Module, line: u32, pred: impl Fn(&Inst) -> bool) -> Option<InstPos> {
    for (fi, f) in module.functions.iter().enumerate() {
        for bi in 0..f.blocks.len() {
            for (ii, si) in f.block_insts(bi).iter().enumerate() {
                if si.loc.line == line && pred(&si.inst) {
                    return Some(InstPos { func: fi, block: bi, inst: ii });
                }
            }
        }
    }
    None
}

fn insert_at(module: &mut Module, pos: InstPos, offset: usize, inst: Inst, line: u32) {
    module.functions[pos.func].insert_inst(
        pos.block,
        pos.inst + offset,
        Spanned::new(inst, SourceLoc::new(line)),
    );
}

fn remove_at(module: &mut Module, pos: InstPos) -> Inst {
    module.functions[pos.func].remove_inst(pos.block, pos.inst).inst
}

fn inst_at(module: &Module, pos: InstPos) -> &Inst {
    &module.functions[pos.func].block_insts(pos.block)[pos.inst].inst
}

fn is_store(i: &Inst) -> bool {
    matches!(i, Inst::Store { .. })
}

fn is_writeback(i: &Inst) -> bool {
    matches!(i, Inst::Flush { .. } | Inst::Persist { .. })
}

fn writeback_place(i: &Inst) -> Option<Place> {
    match i {
        Inst::Flush { place } | Inst::Persist { place } => Some(place.clone()),
        _ => None,
    }
}

/// Apply one hint to `module`. The module's `file` must match the
/// warning's (multi-module programs route each warning to its module).
fn apply_one(module: &mut Module, hint: FixHint) -> FixOutcome {
    match hint {
        FixHint::FlushAndFenceStore { store_line } => {
            let Some(pos) = find_inst(module, store_line, is_store) else {
                return FixOutcome::TargetMissing;
            };
            let Inst::Store { place, .. } = inst_at(module, pos).clone() else { unreachable!() };
            insert_at(module, pos, 1, Inst::Persist { place }, store_line);
            FixOutcome::Applied {
                description: format!("inserted `persist` after the store at line {store_line}"),
            }
        }
        FixHint::LogObjectBeforeStore { store_line } => {
            let Some(pos) = find_inst(module, store_line, is_store) else {
                return FixOutcome::TargetMissing;
            };
            let Inst::Store { place, .. } = inst_at(module, pos).clone() else { unreachable!() };
            let obj = Place::local(place.base);
            insert_at(module, pos, 0, Inst::TxAdd { place: obj }, store_line);
            FixOutcome::Applied {
                description: format!(
                    "inserted `tx_add` before the unlogged store at line {store_line}"
                ),
            }
        }
        FixHint::InsertFenceAfter { line } => {
            let Some(pos) = find_inst(module, line, |i| !matches!(i, Inst::Fence)) else {
                return FixOutcome::TargetMissing;
            };
            insert_at(module, pos, 1, Inst::Fence, line);
            FixOutcome::Applied { description: format!("inserted `fence` after line {line}") }
        }
        FixHint::InsertFenceBefore { line } => {
            let Some(pos) = find_inst(module, line, |i| !matches!(i, Inst::Fence)) else {
                return FixOutcome::TargetMissing;
            };
            insert_at(module, pos, 0, Inst::Fence, line);
            FixOutcome::Applied { description: format!("inserted `fence` before line {line}") }
        }
        FixHint::RemoveWriteback { line } => {
            let Some(pos) = find_inst(module, line, is_writeback) else {
                return FixOutcome::TargetMissing;
            };
            let removed = remove_at(module, pos);
            // A companion fence directly after a removed bare flush would
            // now order nothing new, but removing it could widen a later
            // persist unit; keep it (harmless).
            let what = if matches!(removed, Inst::Persist { .. }) { "persist" } else { "flush" };
            FixOutcome::Applied {
                description: format!("removed redundant `{what}` at line {line}"),
            }
        }
        FixHint::MovePersistToStore { store_line, flush_line } => {
            let Some(fpos) = find_inst(module, flush_line, is_writeback) else {
                return FixOutcome::TargetMissing;
            };
            let place = writeback_place(inst_at(module, fpos)).expect("writeback has place");
            let Some(spos) = find_inst(module, store_line, is_store) else {
                return FixOutcome::TargetMissing;
            };
            // If a later store to the same place sits between this store and
            // the late write-back, the write-back is what persists *that*
            // store — removing it would just trade this warning for an
            // unflushed write. Keep it and only add the early persist.
            let reused_later = spos.func == fpos.func && {
                let f = &module.functions[spos.func];
                (0..f.blocks.len()).any(|bi| {
                    f.block_insts(bi).iter().enumerate().any(|(ii, si)| {
                        (bi, ii) > (spos.block, spos.inst)
                            && (bi, ii) < (fpos.block, fpos.inst)
                            && matches!(&si.inst, Inst::Store { place: sp, .. } if *sp == place)
                    })
                })
            };
            if reused_later {
                insert_at(module, spos, 1, Inst::Persist { place }, store_line);
                return FixOutcome::Applied {
                    description: format!(
                        "inserted `persist` after the store at line {store_line} (the \
                         write-back at line {flush_line} persists a later store and stays)"
                    ),
                };
            }
            remove_at(module, fpos);
            let Some(spos) = find_inst(module, store_line, is_store) else {
                return FixOutcome::TargetMissing;
            };
            insert_at(module, spos, 1, Inst::Persist { place }, store_line);
            FixOutcome::Applied {
                description: format!(
                    "moved the persist of line {flush_line} to right after the store at \
                     line {store_line}"
                ),
            }
        }
        FixHint::NarrowWriteback { line } => {
            let Some(pos) = find_inst(module, line, is_writeback) else {
                return FixOutcome::TargetMissing;
            };
            let op = inst_at(module, pos).clone();
            let place = writeback_place(&op).expect("writeback has place");
            if !place.is_whole_object() {
                return FixOutcome::TargetMissing;
            }
            // Collect the field places written to this base before the
            // write-back, in block order within the same function.
            let f = &module.functions[pos.func];
            let mut fields: Vec<Place> = Vec::new();
            'scan: for bi in 0..f.blocks.len() {
                for (ii, si) in f.block_insts(bi).iter().enumerate() {
                    if bi == pos.block && ii == pos.inst {
                        break 'scan;
                    }
                    if let Inst::Store { place: sp, .. } = &si.inst {
                        if sp.base == place.base && !fields.contains(sp) {
                            fields.push(sp.clone());
                        }
                    }
                }
            }
            if fields.is_empty() {
                return FixOutcome::TargetMissing;
            }
            let was_persist = matches!(op, Inst::Persist { .. });
            remove_at(module, pos);
            let n = fields.len();
            for (k, fp) in fields.into_iter().enumerate() {
                let inst = if was_persist {
                    Inst::Persist { place: fp }
                } else {
                    Inst::Flush { place: fp }
                };
                insert_at(module, pos, k, inst, line);
            }
            FixOutcome::Applied {
                description: format!(
                    "narrowed the whole-object write-back at line {line} to {n} written \
                     field(s)"
                ),
            }
        }
    }
}

/// Apply every machine-applicable fix from `warnings` to `modules`
/// (warnings are routed to modules by file name). Returns the per-warning
/// outcomes; `modules` is edited in place.
pub fn apply_fixes(modules: &mut [Module], warnings: &[Warning]) -> Vec<AppliedFix> {
    warnings
        .iter()
        .map(|w| {
            let Some(hint) = w.fix else {
                return AppliedFix { warning: w.clone(), outcome: FixOutcome::NoHint };
            };
            let Some(module) = modules.iter_mut().find(|m| m.file == w.file) else {
                return AppliedFix { warning: w.clone(), outcome: FixOutcome::TargetMissing };
            };
            let outcome = apply_one(module, hint);
            AppliedFix { warning: w.clone(), outcome }
        })
        .collect()
}

/// Fix-check loop: repeatedly check and apply fixes until no applicable
/// hints remain (or `max_rounds`). Returns the fixed modules, the final
/// report, and the number of fixes applied.
pub fn fix_until_stable(
    mut modules: Vec<Module>,
    config: &crate::DeepMcConfig,
    max_rounds: usize,
) -> (Vec<Module>, crate::Report, usize) {
    let check = |modules: &[Module]| -> crate::Report {
        let program = deepmc_analysis::Program::new(modules.to_vec()).expect("modules link");
        crate::StaticChecker::new(config.clone()).check_program(&program)
    };
    let mut applied = 0;
    let mut report = check(&modules);
    for _ in 0..max_rounds {
        let fixable: Vec<Warning> =
            report.warnings.iter().filter(|w| w.fix.is_some()).cloned().collect();
        if fixable.is_empty() {
            return (modules, report, applied);
        }
        // Apply the round on a copy; keep it only if it strictly improves
        // the report (repairs whose targets collide on one source line can
        // otherwise oscillate).
        let mut candidate = modules.clone();
        let outcomes = apply_fixes(&mut candidate, &fixable);
        let round_applied =
            outcomes.iter().filter(|o| matches!(o.outcome, FixOutcome::Applied { .. })).count();
        if round_applied == 0 {
            return (modules, report, applied);
        }
        let candidate_report = check(&candidate);
        if candidate_report.warnings.len() >= report.warnings.len() {
            // Try the fixes one at a time: apply only those that
            // individually improve the report.
            let mut improved = false;
            for w in &fixable {
                let mut single = modules.clone();
                let outcome = apply_fixes(&mut single, std::slice::from_ref(w));
                if !matches!(outcome[0].outcome, FixOutcome::Applied { .. }) {
                    continue;
                }
                let single_report = check(&single);
                if single_report.warnings.len() < report.warnings.len() {
                    modules = single;
                    report = single_report;
                    applied += 1;
                    improved = true;
                    break;
                }
            }
            if !improved {
                return (modules, report, applied);
            }
        } else {
            modules = candidate;
            report = candidate_report;
            applied += round_applied;
        }
    }
    (modules, report, applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_source, DeepMcConfig, StaticChecker};
    use deepmc_models::{BugClass, PersistencyModel};
    use deepmc_pir::parse;

    /// Check, fix, re-check; assert the class disappears and nothing new
    /// of any class appears.
    fn fix_and_recheck(src: &str, model: PersistencyModel, class: BugClass) -> Vec<Module> {
        let config = DeepMcConfig::new(model);
        let before = check_source(src, &config).unwrap();
        assert!(
            before.warnings.iter().any(|w| w.class == class),
            "precondition: {class:?} reported\n{before}"
        );
        let modules = vec![parse(src).unwrap()];
        let (fixed, after, applied) = fix_until_stable(modules, &config, 4);
        assert!(applied > 0, "at least one fix applied");
        assert!(
            !after.warnings.iter().any(|w| w.class == class),
            "{class:?} must be gone after fixing\n{after}"
        );
        // The fixed module still verifies.
        for m in &fixed {
            deepmc_pir::verify::verify_module(m).expect("fixed module verifies");
        }
        fixed
    }

    #[test]
    fn fixes_unflushed_write_outside_tx() {
        fix_and_recheck(
            r#"
module m
struct s { a: i64 }
fn main() {
entry:
  %x = palloc s
  store %x.a, 1
  ret
}
"#,
            PersistencyModel::Strict,
            BugClass::UnflushedWrite,
        );
    }

    #[test]
    fn fixes_unlogged_write_in_tx() {
        let fixed = fix_and_recheck(
            r#"
module m
struct s { items: [i64; 4] }
fn split(%n: ptr s) attrs(tx_context) {
entry:
  store %n.items[2], 0
  ret
}
"#,
            PersistencyModel::Strict,
            BugClass::UnflushedWrite,
        );
        // The fix is a tx_add, not a flush.
        let f = &fixed[0].functions[0];
        assert!(f.block_insts(0).iter().any(|si| matches!(si.inst, Inst::TxAdd { .. })));
    }

    #[test]
    fn fixes_missing_barrier() {
        fix_and_recheck(
            r#"
module m
struct s { a: i64 }
fn main() {
entry:
  %x = palloc s
  store %x.a, 1
  flush %x.a
  tx_begin
  tx_add %x
  store %x.a, 2
  tx_commit
  ret
}
"#,
            PersistencyModel::Strict,
            BugClass::MissingPersistBarrier,
        );
    }

    #[test]
    fn fixes_nested_tx_barrier() {
        fix_and_recheck(
            r#"
module m
struct s { a: i64, b: i64 }
fn main() {
entry:
  %x = palloc s
  epoch_begin
  epoch_begin
  store %x.a, 1
  flush %x.a
  epoch_end
  store %x.b, 2
  flush %x.b
  fence
  epoch_end
  ret
}
"#,
            PersistencyModel::Epoch,
            BugClass::MissingBarrierNestedTx,
        );
    }

    #[test]
    fn fixes_delayed_persist_mismatch() {
        let fixed = fix_and_recheck(
            r#"
module m
struct h { n: i64 }
struct b { arr: [i64; 8] }
fn main() {
entry:
  %x = palloc h
  %y = palloc b
  store %x.n, 8
  memset_persist %y, 0
  persist %x.n
  ret
}
"#,
            PersistencyModel::Strict,
            BugClass::SemanticMismatch,
        );
        // The persist now sits right after the store.
        let insts = fixed[0].functions[0].block_insts(0);
        let store_idx = insts.iter().position(|si| matches!(si.inst, Inst::Store { .. })).unwrap();
        assert!(matches!(insts[store_idx + 1].inst, Inst::Persist { .. }));
    }

    #[test]
    fn fixes_redundant_writeback() {
        fix_and_recheck(
            r#"
module m
struct s { a: i64 }
fn main() {
entry:
  %x = palloc s
  store %x.a, 1
  flush %x.a
  fence
  flush %x.a
  fence
  ret
}
"#,
            PersistencyModel::Strict,
            BugClass::RedundantWriteback,
        );
    }

    #[test]
    fn narrows_whole_object_writeback() {
        let fixed = fix_and_recheck(
            r#"
module m
struct s { a: i64, b: i64, c: i64 }
fn main() {
entry:
  %x = palloc s
  store %x.a, 1
  persist %x
  ret
}
"#,
            PersistencyModel::Strict,
            BugClass::UnmodifiedWriteback,
        );
        // The whole-object persist became a field persist.
        let insts = fixed[0].functions[0].block_insts(0);
        let persists: Vec<&Inst> =
            insts.iter().map(|si| &si.inst).filter(|i| matches!(i, Inst::Persist { .. })).collect();
        assert_eq!(persists.len(), 1);
        let Inst::Persist { place } = persists[0] else { unreachable!() };
        assert!(!place.is_whole_object());
    }

    #[test]
    fn unhinted_warnings_are_reported_as_such() {
        let src = r#"
module m
struct s { a: i64 }
fn main(%c: i64) {
entry:
  %x = palloc s
  tx_begin
  tx_add %x
  br %c, w, skip
w:
  store %x.a, 1
  jmp done
skip:
  jmp done
done:
  tx_commit
  ret
}
"#;
        let config = DeepMcConfig::new(PersistencyModel::Strict);
        let report = check_source(src, &config).unwrap();
        let edt: Vec<_> = report
            .warnings
            .iter()
            .filter(|w| w.class == BugClass::EmptyDurableTx)
            .cloned()
            .collect();
        assert_eq!(edt.len(), 1);
        assert!(edt[0].fix.is_none(), "empty-tx repair is path-dependent: manual");
        let mut modules = vec![parse(src).unwrap()];
        let outcomes = apply_fixes(&mut modules, &edt);
        assert!(matches!(outcomes[0].outcome, FixOutcome::NoHint));
    }

    #[test]
    fn fix_is_idempotent_on_clean_code() {
        let src = r#"
module m
struct s { a: i64 }
fn main() {
entry:
  %x = palloc s
  store %x.a, 1
  persist %x.a
  ret
}
"#;
        let config = DeepMcConfig::new(PersistencyModel::Strict);
        let modules = vec![parse(src).unwrap()];
        let (fixed, report, applied) = fix_until_stable(modules.clone(), &config, 3);
        assert_eq!(applied, 0);
        assert!(report.warnings.is_empty());
        assert_eq!(fixed, modules);
        // Silence the unused-import lint for StaticChecker in this module.
        let _ = StaticChecker::new(config);
    }
}
