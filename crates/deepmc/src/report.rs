//! Warning reports.
//!
//! "DeepMC will create a detailed report of warnings, which shows the line
//! numbers of the bugs" (paper §4.3). Warnings are deduplicated by
//! (class, file, line, root): many traces traverse the same buggy code,
//! but the same buggy line reached from two different analysis roots is
//! two findings — each root is a separate entry point whose persistency
//! contract the fix must satisfy.

use deepmc_models::{BugClass, PersistencyModel, Severity};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A machine-applicable repair suggestion attached to a warning, consumed
/// by [`crate::fixer`] (the paper leaves automated fixing as future work;
/// this is that extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FixHint {
    /// Insert `persist <place>` right after the store at `store_line`.
    FlushAndFenceStore { store_line: u32 },
    /// Insert `tx_add <object>` before the store at `store_line`.
    LogObjectBeforeStore { store_line: u32 },
    /// Insert a `fence` after the instruction at `line`.
    InsertFenceAfter { line: u32 },
    /// Insert a `fence` before the instruction at `line`.
    InsertFenceBefore { line: u32 },
    /// Remove the flush/persist at `line`.
    RemoveWriteback { line: u32 },
    /// Persist right after the store at `store_line` and remove the late
    /// write-back at `flush_line`.
    MovePersistToStore { store_line: u32, flush_line: u32 },
    /// Replace the whole-object write-back at `line` with per-field
    /// write-backs of the fields actually written.
    NarrowWriteback { line: u32 },
}

/// One reported warning.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Warning {
    pub file: String,
    pub line: u32,
    pub class: BugClass,
    pub function: String,
    /// Name of the analysis root whose traces exposed the warning; empty
    /// for warnings not attributable to a root (dynamic checking).
    #[serde(default)]
    pub root: String,
    pub message: String,
    pub model: PersistencyModel,
    /// True when found by the dynamic (online) checker.
    pub dynamic: bool,
    /// Machine-applicable repair, when the checker can compute one.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fix: Option<FixHint>,
}

impl Warning {
    pub fn severity(&self) -> Severity {
        self.class.severity()
    }

    /// Deduplication key: one warning per (class, file, line, root).
    pub fn key(&self) -> (BugClass, &str, u32, &str) {
        (self.class, self.file.as_str(), self.line, self.root.as_str())
    }
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WARNING [{}] {}:{} in `{}` ({} under {} persistency",
            self.severity(),
            self.file,
            self.line,
            self.function,
            self.class,
            self.model,
        )?;
        if !self.root.is_empty() {
            write!(f, ", root `{}`", self.root)?;
        }
        write!(f, "): {}", self.message)
    }
}

/// An analysis root whose check did not complete: its worker panicked and
/// was isolated by the pool. The rest of the report is intact — a failure
/// entry marks exactly which root's findings are missing.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RootFailure {
    /// Name of the analysis root that failed.
    pub root: String,
    /// The panic payload, as a string.
    pub panic: String,
}

impl fmt::Display for RootFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "root `{}` failed: {}", self.root, self.panic)
    }
}

fn is_false(b: &bool) -> bool {
    !*b
}

/// A full DeepMC report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    pub warnings: Vec<Warning>,
    /// Analysis caveats that are not warnings — e.g. the trace collector
    /// hit its path or trace-length budget, so coverage is incomplete and
    /// an empty warning list is not a clean bill of health.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub notes: Vec<String>,
    /// Roots whose analysis panicked (isolated, not aborted). Sorted and
    /// deduplicated so degraded reports are schedule-independent.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub failures: Vec<RootFailure>,
    /// The run completed but produced partial results: some roots failed
    /// or were cut short by a budget. Drives the distinct process exit
    /// code so fleet callers can tell partial results from clean ones.
    #[serde(default, skip_serializing_if = "is_false")]
    pub degraded: bool,
}

impl Report {
    /// Merge raw warnings, deduplicating by (class, file, line, root) and
    /// sorting by file, then line, then class.
    ///
    /// The full sort happens *before* deduplication: two raw warnings can
    /// share the dedup key but differ in message, and the raw order
    /// depends on trace enumeration (and, in a parallel run, on merge
    /// order). Sorting on every field first makes the surviving duplicate
    /// — and therefore the rendered report — a pure function of the
    /// warning *set*, which is what lets worker pools of any size produce
    /// byte-identical reports.
    pub fn from_raw(mut raw: Vec<Warning>) -> Report {
        raw.sort();
        let mut seen = BTreeSet::new();
        let warnings: Vec<Warning> = raw
            .into_iter()
            .filter(|w| seen.insert((w.class, w.file.clone(), w.line, w.root.clone())))
            .collect();
        Report { warnings, notes: Vec::new(), failures: Vec::new(), degraded: false }
    }

    /// Attach an analysis caveat (deduplicated).
    pub fn push_note(&mut self, note: String) {
        if !self.notes.contains(&note) {
            self.notes.push(note);
        }
    }

    /// Record a failed root (deduplicated) and mark the report degraded.
    pub fn push_failure(&mut self, failure: RootFailure) {
        if !self.failures.contains(&failure) {
            self.failures.push(failure);
        }
        self.degraded = true;
    }

    /// Mark the report as carrying partial results.
    pub fn mark_degraded(&mut self) {
        self.degraded = true;
    }

    /// Append another report, re-deduplicating warnings, notes, and
    /// failures.
    pub fn merge(self, other: Report) -> Report {
        let mut raw = self.warnings;
        raw.extend(other.warnings);
        let mut merged = Report::from_raw(raw);
        for note in self.notes.into_iter().chain(other.notes) {
            merged.push_note(note);
        }
        let mut failures: Vec<RootFailure> =
            self.failures.into_iter().chain(other.failures).collect();
        failures.sort();
        for failure in failures {
            merged.push_failure(failure);
        }
        merged.degraded = self.degraded || other.degraded || !merged.failures.is_empty();
        merged
    }

    /// Warnings of one severity.
    pub fn by_severity(&self, severity: Severity) -> impl Iterator<Item = &Warning> {
        self.warnings.iter().filter(move |w| w.severity() == severity)
    }

    /// Count of model-violation warnings.
    pub fn violation_count(&self) -> usize {
        self.by_severity(Severity::Violation).count()
    }

    /// Count of performance warnings.
    pub fn performance_count(&self) -> usize {
        self.by_severity(Severity::Performance).count()
    }

    /// Warnings of one class.
    pub fn of_class(&self, class: BugClass) -> impl Iterator<Item = &Warning> {
        self.warnings.iter().filter(move |w| w.class == class)
    }

    /// Does the report contain a warning of `class` at `file:line`?
    pub fn contains(&self, class: BugClass, file: &str, line: u32) -> bool {
        self.warnings.iter().any(|w| w.class == class && w.file == file && w.line == line)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.warnings.is_empty() {
            writeln!(f, "DeepMC: no warnings.")?;
        } else {
            writeln!(
                f,
                "DeepMC: {} warning(s) ({} model violations, {} performance):",
                self.warnings.len(),
                self.violation_count(),
                self.performance_count()
            )?;
            for w in &self.warnings {
                writeln!(f, "  {w}")?;
            }
        }
        for fail in &self.failures {
            writeln!(f, "  FAILED {fail}")?;
        }
        for note in &self.notes {
            writeln!(f, "  NOTE: {note}")?;
        }
        if self.degraded {
            if self.failures.is_empty() {
                writeln!(f, "DeepMC: DEGRADED — partial results.")?;
            } else {
                writeln!(
                    f,
                    "DeepMC: DEGRADED — partial results ({} failed root(s)).",
                    self.failures.len()
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(class: BugClass, file: &str, line: u32) -> Warning {
        Warning {
            file: file.into(),
            line,
            class,
            function: "f".into(),
            root: "main".into(),
            message: "m".into(),
            model: PersistencyModel::Strict,
            dynamic: false,
            fix: None,
        }
    }

    #[test]
    fn dedup_by_class_file_line() {
        let r = Report::from_raw(vec![
            w(BugClass::UnflushedWrite, "a.c", 10),
            w(BugClass::UnflushedWrite, "a.c", 10),
            w(BugClass::RedundantWriteback, "a.c", 10),
            w(BugClass::UnflushedWrite, "a.c", 11),
        ]);
        assert_eq!(r.warnings.len(), 3);
    }

    #[test]
    fn sorted_by_file_line() {
        let r = Report::from_raw(vec![
            w(BugClass::UnflushedWrite, "b.c", 5),
            w(BugClass::UnflushedWrite, "a.c", 9),
            w(BugClass::UnflushedWrite, "a.c", 2),
        ]);
        let locs: Vec<(String, u32)> =
            r.warnings.iter().map(|w| (w.file.clone(), w.line)).collect();
        assert_eq!(locs, vec![("a.c".into(), 2), ("a.c".into(), 9), ("b.c".into(), 5)]);
    }

    #[test]
    fn same_site_different_roots_stays_distinct() {
        // Regression: the dedup key must include the analysis root —
        // identical findings reached from two entry points are two
        // warnings, not one.
        let mut from_main = w(BugClass::UnflushedWrite, "a.c", 10);
        from_main.root = "main".into();
        let mut from_recover = w(BugClass::UnflushedWrite, "a.c", 10);
        from_recover.root = "recover".into();
        let r = Report::from_raw(vec![from_main, from_recover]);
        assert_eq!(r.warnings.len(), 2);
        let roots: Vec<&str> = r.warnings.iter().map(|w| w.root.as_str()).collect();
        assert_eq!(roots, vec!["main", "recover"]);
    }

    #[test]
    fn rendered_warning_names_its_root() {
        let shown = w(BugClass::UnflushedWrite, "a.c", 10).to_string();
        assert!(shown.contains("root `main`"), "missing root in: {shown}");
        let mut rootless = w(BugClass::UnflushedWrite, "a.c", 10);
        rootless.root = String::new();
        assert!(!rootless.to_string().contains("root `"));
    }

    #[test]
    fn severity_counts() {
        let r = Report::from_raw(vec![
            w(BugClass::UnflushedWrite, "a.c", 1),
            w(BugClass::EmptyDurableTx, "a.c", 2),
            w(BugClass::RedundantWriteback, "a.c", 3),
        ]);
        assert_eq!(r.violation_count(), 1);
        assert_eq!(r.performance_count(), 2);
    }

    #[test]
    fn merge_re_dedups() {
        let a = Report::from_raw(vec![w(BugClass::UnflushedWrite, "a.c", 1)]);
        let b = Report::from_raw(vec![
            w(BugClass::UnflushedWrite, "a.c", 1),
            w(BugClass::UnflushedWrite, "a.c", 2),
        ]);
        assert_eq!(a.merge(b).warnings.len(), 2);
    }

    #[test]
    fn notes_survive_merge_without_duplicates() {
        let mut a = Report::from_raw(vec![w(BugClass::UnflushedWrite, "a.c", 1)]);
        a.push_note("trace budget hit".into());
        a.push_note("trace budget hit".into());
        let mut b = Report::default();
        b.push_note("trace budget hit".into());
        b.push_note("events truncated".into());
        let m = a.merge(b);
        assert_eq!(m.notes, vec!["trace budget hit".to_string(), "events truncated".into()]);
        let shown = format!("{m}");
        assert!(shown.contains("NOTE: trace budget hit"));
    }

    #[test]
    fn dedup_survivor_is_independent_of_insertion_order() {
        // Two warnings share the dedup key (class, file, line) but differ
        // in message: whichever order they arrive in, the same one (the
        // Ord-least) must survive.
        let mut first = w(BugClass::UnflushedWrite, "a.c", 1);
        first.message = "write to `a` never flushed".into();
        let mut second = w(BugClass::UnflushedWrite, "a.c", 1);
        second.message = "write to `b` never flushed".into();

        let forward = Report::from_raw(vec![first.clone(), second.clone()]);
        let backward = Report::from_raw(vec![second, first.clone()]);
        assert_eq!(forward, backward);
        assert_eq!(forward.warnings, vec![first]);
    }

    #[test]
    fn json_roundtrip() {
        let r = Report::from_raw(vec![w(BugClass::EmptyDurableTx, "x.c", 7)]);
        let s = serde_json::to_string(&r).unwrap();
        let back: Report = serde_json::from_str(&s).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn failures_mark_degraded_and_render() {
        let mut r = Report::from_raw(vec![w(BugClass::UnflushedWrite, "a.c", 1)]);
        assert!(!r.degraded);
        r.push_failure(RootFailure { root: "recover".into(), panic: "boom".into() });
        r.push_failure(RootFailure { root: "recover".into(), panic: "boom".into() });
        assert!(r.degraded);
        assert_eq!(r.failures.len(), 1, "failures are deduplicated");
        let shown = r.to_string();
        assert!(shown.contains("FAILED root `recover` failed: boom"), "got: {shown}");
        assert!(shown.contains("DEGRADED"), "got: {shown}");
    }

    #[test]
    fn merge_carries_and_sorts_failures() {
        let mut a = Report::default();
        a.push_failure(RootFailure { root: "z".into(), panic: "p".into() });
        let mut b = Report::default();
        b.push_failure(RootFailure { root: "a".into(), panic: "p".into() });
        b.push_failure(RootFailure { root: "z".into(), panic: "p".into() });
        let m = a.merge(b);
        assert!(m.degraded);
        let roots: Vec<&str> = m.failures.iter().map(|f| f.root.as_str()).collect();
        assert_eq!(roots, vec!["a", "z"], "merged failures are sorted and deduped");
    }

    #[test]
    fn degraded_json_roundtrip_and_clean_reports_omit_fields() {
        let clean = serde_json::to_string(&Report::default()).unwrap();
        assert!(!clean.contains("failures") && !clean.contains("degraded"));
        let mut r = Report::default();
        r.push_failure(RootFailure { root: "m".into(), panic: "chaos".into() });
        let s = serde_json::to_string(&r).unwrap();
        let back: Report = serde_json::from_str(&s).unwrap();
        assert_eq!(r, back);
        let legacy: Report = serde_json::from_str(&clean).unwrap();
        assert!(!legacy.degraded && legacy.failures.is_empty());
    }
}
