//! Detectable Treiber stack.
//!
//! Persist protocol per push (the Memento `treiber_stack` recipe):
//!
//! 1. allocate the node, store `{val, next}`, **persist the node** before
//!    it becomes reachable (link-persist: no durable pointer may ever
//!    reference non-durable content);
//! 2. CAS the top word to publish;
//! 3. flush the top word — the seeded [`DsBug::UnflushedLink`] variant
//!    skips exactly this flush, so the published top can roll back across
//!    a crash even though step 4 acknowledged;
//! 4. record the per-client checkpoint and fence (the fence retires the
//!    top flush too, so one fence acknowledges the whole operation).

use super::{Annot, CheckpointArea, DsBug, Shared, CK_ADD, CK_NOOP, CK_REMOVE};
use crate::tracker::Tracker;
use nvm_runtime::{PAddr, PmemHeap, PmemPool, StrandId};

const MAGIC: u64 = 0x7E1B_E757_AC00_0001;

const OFF_MAGIC: u64 = 0;
const OFF_TOP: u64 = 8;

pub struct TreiberStack<'p> {
    heap: &'p PmemHeap<'p>,
    meta: PAddr,
    bug: Option<DsBug>,
    shared: Shared,
    ck: CheckpointArea,
}

impl<'p> TreiberStack<'p> {
    pub fn create(heap: &'p PmemHeap<'p>, bug: Option<DsBug>) -> TreiberStack<'p> {
        let pool = heap.pool();
        let meta = heap.alloc_zeroed(64 + CheckpointArea::BYTES);
        pool.write_u64(meta.offset(OFF_TOP), 0);
        pool.write_u64(meta.offset(OFF_MAGIC), MAGIC);
        pool.persist(meta, 64 + CheckpointArea::BYTES);
        heap.set_root(meta);
        TreiberStack {
            heap,
            meta,
            bug,
            shared: Shared::new(),
            ck: CheckpointArea::at(meta.offset(64)),
        }
    }

    pub fn recover(heap: &'p PmemHeap<'p>, bug: Option<DsBug>) -> TreiberStack<'p> {
        let meta = heap.root();
        assert_eq!(heap.pool().read_u64(meta.offset(OFF_MAGIC)), MAGIC, "treiber root magic");
        TreiberStack {
            heap,
            meta,
            bug,
            shared: Shared::new(),
            ck: CheckpointArea::at(meta.offset(64)),
        }
    }

    fn pool(&self) -> &'p PmemPool {
        self.heap.pool()
    }

    fn top_addr(&self) -> PAddr {
        self.meta.offset(OFF_TOP)
    }

    pub fn push(&self, v: u64, t: &dyn Tracker, strand: Option<StrandId>, client: u64, seq: u64) {
        let pool = self.pool();
        let a = Annot::new(t, strand, self.bug);
        let n = self.heap.alloc(64);
        assert!(!n.is_null(), "treiber pool exhausted");
        pool.write_u64(n, v);
        a.access(n, 8, true);
        loop {
            let top = self.shared.read(pool, &a, self.top_addr());
            pool.write_u64(n.offset(8), top);
            a.access(n.offset(8), 8, true);
            // Link-persist: the node is durable before it is reachable.
            pool.persist(n, 16);
            if self.shared.cas(pool, &a, self.top_addr(), top, n.0).is_ok() {
                break;
            }
        }
        if self.bug != Some(DsBug::UnflushedLink) {
            pool.flush(self.top_addr(), 8);
        }
        self.ck.record(pool, &a, client, seq, CK_ADD, v, n.0, true);
    }

    pub fn pop(
        &self,
        t: &dyn Tracker,
        strand: Option<StrandId>,
        client: u64,
        seq: u64,
    ) -> Option<u64> {
        let pool = self.pool();
        let a = Annot::new(t, strand, self.bug);
        loop {
            let top = self.shared.read(pool, &a, self.top_addr());
            if top == 0 {
                self.ck.record(pool, &a, client, seq, CK_NOOP, 0, 0, true);
                return None;
            }
            let val = pool.read_u64(PAddr(top));
            let next = pool.read_u64(PAddr(top + 8));
            a.access(PAddr(top), 16, false);
            if self.shared.cas(pool, &a, self.top_addr(), top, next).is_ok() {
                pool.flush(self.top_addr(), 8);
                self.ck.record(pool, &a, client, seq, CK_REMOVE, val, next, true);
                return Some(val);
            }
        }
    }

    /// Bottom→top contents, walked from the (possibly stale) top pointer
    /// with plausibility guards.
    pub fn contents(&self) -> Vec<u64> {
        let pool = self.pool();
        let mut out = Vec::new();
        let mut cur = pool.read_u64(self.top_addr());
        let mut steps = 0u32;
        while super::plausible_node(pool, cur) && steps < 1 << 16 {
            out.push(pool.read_u64(PAddr(cur)));
            cur = pool.read_u64(PAddr(cur + 8));
            steps += 1;
        }
        out.reverse();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::NoopTracker;
    use nvm_runtime::{CrashPolicy, PmemPool, PoolConfig};

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig { size: 1 << 20, shards: 8, ..Default::default() })
    }

    #[test]
    fn push_pop_lifo() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let s = TreiberStack::create(&h, None);
        let t = NoopTracker;
        for (i, v) in [11, 22, 33].iter().enumerate() {
            s.push(*v, &t, None, 0, i as u64 + 1);
        }
        assert_eq!(s.contents(), vec![11, 22, 33]);
        assert_eq!(s.pop(&t, None, 0, 4), Some(33));
        assert_eq!(s.pop(&t, None, 0, 5), Some(22));
        assert_eq!(s.contents(), vec![11]);
        assert_eq!(s.pop(&t, None, 0, 6), Some(11));
        assert_eq!(s.pop(&t, None, 0, 7), None);
    }

    #[test]
    fn clean_push_survives_pessimistic_crash() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let s = TreiberStack::create(&h, None);
        let t = NoopTracker;
        s.push(7, &t, None, 0, 1);
        s.push(9, &t, None, 0, 2);
        let img = CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(8);
        let h2 = PmemHeap::open(&p2);
        let s2 = TreiberStack::recover(&h2, None);
        assert_eq!(s2.contents(), vec![7, 9], "acked pushes are durable");
    }

    #[test]
    fn unflushed_link_loses_acked_push() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let s = TreiberStack::create(&h, Some(DsBug::UnflushedLink));
        let t = NoopTracker;
        s.push(7, &t, None, 0, 1);
        let img = CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(8);
        let h2 = PmemHeap::open(&p2);
        let s2 = TreiberStack::recover(&h2, Some(DsBug::UnflushedLink));
        assert_eq!(s2.contents(), Vec::<u64>::new(), "top word rolled back past the ack");
    }
}
