//! Clevel-style two-level persistent hash set.
//!
//! Two bucket arrays (a small level-0 and a larger level-1, standing in
//! for Clevel's resize levels), four 16-byte slots `{key, val}` per
//! bucket, key 0 meaning empty. An insert CAS-claims an empty slot's key
//! word (the detectable CAS), writes the value, flushes the slot, and
//! fences via the checkpoint. Seeded bugs:
//!
//! * [`DsBug::UnflushedLink`] — the claimed slot is never flushed, so the
//!   checkpoint fence has nothing to retire and the acked key rolls back
//!   on crash.
//! * [`DsBug::DoubleApplyRecovery`] — recovery replays the last
//!   checkpointed insert without a presence check, leaving a duplicate
//!   key that no set state can linearize to.

use super::{Annot, CheckpointArea, CheckpointRec, DsBug, Shared, CK_ADD, CK_NOOP, CK_REMOVE};
use crate::tracker::{NoopTracker, Tracker};
use nvm_runtime::{PAddr, PmemHeap, PmemPool, StrandId};

const MAGIC: u64 = 0xC1E7_E157_AC00_0005;

const OFF_MAGIC: u64 = 0;
const OFF_L0: u64 = 8;
const OFF_L1: u64 = 16;

const SLOTS_PER_BUCKET: u64 = 4;
const SLOT_BYTES: u64 = 16;
const L0_BUCKETS: u64 = 32;
const L1_BUCKETS: u64 = 64;
/// Buckets examined past the home bucket before giving up.
const PROBE: u64 = 4;

pub struct ClevelHash<'p> {
    heap: &'p PmemHeap<'p>,
    levels: [(PAddr, u64); 2],
    bug: Option<DsBug>,
    shared: Shared,
    ck: CheckpointArea,
}

impl<'p> ClevelHash<'p> {
    pub fn create(heap: &'p PmemHeap<'p>, bug: Option<DsBug>) -> ClevelHash<'p> {
        let pool = heap.pool();
        let meta = heap.alloc_zeroed(64 + CheckpointArea::BYTES);
        let l0 = heap.alloc_zeroed(L0_BUCKETS * SLOTS_PER_BUCKET * SLOT_BYTES);
        let l1 = heap.alloc_zeroed(L1_BUCKETS * SLOTS_PER_BUCKET * SLOT_BYTES);
        pool.write_u64(meta.offset(OFF_L0), l0.0);
        pool.write_u64(meta.offset(OFF_L1), l1.0);
        pool.write_u64(meta.offset(OFF_MAGIC), MAGIC);
        pool.persist(meta, 64 + CheckpointArea::BYTES);
        heap.set_root(meta);
        ClevelHash {
            heap,
            levels: [(l1, L1_BUCKETS), (l0, L0_BUCKETS)],
            bug,
            shared: Shared::new(),
            ck: CheckpointArea::at(meta.offset(64)),
        }
    }

    pub fn recover(heap: &'p PmemHeap<'p>, bug: Option<DsBug>) -> ClevelHash<'p> {
        let pool = heap.pool();
        let meta = heap.root();
        assert_eq!(pool.read_u64(meta.offset(OFF_MAGIC)), MAGIC, "clevel root magic");
        let l0 = PAddr(pool.read_u64(meta.offset(OFF_L0)));
        let l1 = PAddr(pool.read_u64(meta.offset(OFF_L1)));
        let h = ClevelHash {
            heap,
            levels: [(l1, L1_BUCKETS), (l0, L0_BUCKETS)],
            bug,
            shared: Shared::new(),
            ck: CheckpointArea::at(meta.offset(64)),
        };
        h.recover_inner();
        h
    }

    fn recover_inner(&self) {
        if self.bug != Some(DsBug::DoubleApplyRecovery) {
            // Clean protocol: the checkpoint fence made every acked insert
            // durable, so there is nothing to replay.
            return;
        }
        let pool = self.pool();
        if let Some(CheckpointRec { kind: CK_ADD, arg: key, .. }) = self.ck.latest(pool) {
            // BUG: replay without a presence check — the insert already
            // took effect, so this plants a duplicate key.
            let t = NoopTracker;
            let a = Annot::new(&t, None, self.bug);
            if let Some(slot) = self.claim_empty_slot(&a, key) {
                pool.write_u64(slot.offset(8), key ^ MAGIC);
                pool.persist(slot, SLOT_BYTES);
            }
        }
    }

    fn pool(&self) -> &'p PmemPool {
        self.heap.pool()
    }

    fn bucket(&self, level: usize, key: u64) -> u64 {
        let (_, nbuckets) = self.levels[level];
        crate::recovery::checksum(0xC1E7 ^ level as u64, &[key]) % nbuckets
    }

    fn slot_addr(&self, level: usize, bucket: u64, slot: u64) -> PAddr {
        let (base, nbuckets) = self.levels[level];
        base.offset(((bucket % nbuckets) * SLOTS_PER_BUCKET + slot) * SLOT_BYTES)
    }

    /// Probe sequence for `key`: level 1 first, then level 0, each the
    /// home bucket plus [`PROBE`] linear-probe successors.
    fn probe_slots(&self, key: u64) -> Vec<(usize, PAddr)> {
        let mut out = Vec::with_capacity(((PROBE + 1) * SLOTS_PER_BUCKET * 2) as usize);
        for level in 0..2 {
            let home = self.bucket(level, key);
            for b in 0..=PROBE {
                for s in 0..SLOTS_PER_BUCKET {
                    out.push((level, self.slot_addr(level, home + b, s)));
                }
            }
        }
        out
    }

    fn find_key(&self, a: &Annot<'_>, key: u64) -> Option<PAddr> {
        let pool = self.pool();
        self.probe_slots(key)
            .into_iter()
            .map(|(_, s)| s)
            .find(|&s| self.shared.read(pool, a, s) == key)
    }

    /// CAS-claim the first empty slot in `key`'s probe sequence.
    fn claim_empty_slot(&self, a: &Annot<'_>, key: u64) -> Option<PAddr> {
        let pool = self.pool();
        self.probe_slots(key)
            .into_iter()
            .map(|(_, s)| s)
            .find(|&s| self.shared.cas(pool, a, s, 0, key).is_ok())
    }

    /// Insert `key` (set semantics); returns true if newly inserted.
    pub fn insert(
        &self,
        key: u64,
        t: &dyn Tracker,
        strand: Option<StrandId>,
        client: u64,
        seq: u64,
    ) -> bool {
        assert!(key >= 1, "key 0 marks an empty slot");
        let pool = self.pool();
        let a = Annot::new(t, strand, self.bug);
        if self.find_key(&a, key).is_some() {
            self.ck.record(pool, &a, client, seq, CK_NOOP, key, 0, true);
            return false;
        }
        let slot = self.claim_empty_slot(&a, key).expect("clevel probe window full");
        // Synchronized store: across slot-reuse cycles, different
        // claimants write this value word, and only a shared lock window
        // gives those writes a happens-before edge.
        self.shared.write(pool, &a, slot.offset(8), key ^ MAGIC);
        if self.bug != Some(DsBug::UnflushedLink) {
            pool.flush(slot, SLOT_BYTES);
        }
        self.ck.record(pool, &a, client, seq, CK_ADD, key, slot.0, true);
        true
    }

    /// Remove `key`; returns true if it was present.
    pub fn remove(
        &self,
        key: u64,
        t: &dyn Tracker,
        strand: Option<StrandId>,
        client: u64,
        seq: u64,
    ) -> bool {
        let pool = self.pool();
        let a = Annot::new(t, strand, self.bug);
        loop {
            let Some(slot) = self.find_key(&a, key) else {
                self.ck.record(pool, &a, client, seq, CK_NOOP, key, 0, true);
                return false;
            };
            if self.shared.cas(pool, &a, slot, key, 0).is_ok() {
                pool.flush(slot, SLOT_BYTES);
                self.ck.record(pool, &a, client, seq, CK_REMOVE, key, slot.0, true);
                return true;
            }
        }
    }

    /// Every non-empty key across both levels, sorted. Duplicates are
    /// reported as-is so recovery bugs that plant a second copy of a key
    /// are visible to the oracle.
    pub fn contents(&self) -> Vec<u64> {
        let pool = self.pool();
        let mut out = Vec::new();
        for &(base, nbuckets) in &self.levels {
            for i in 0..nbuckets * SLOTS_PER_BUCKET {
                let k = pool.read_u64(base.offset(i * SLOT_BYTES));
                if k != 0 {
                    out.push(k);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_runtime::{CrashPolicy, PmemPool, PoolConfig};

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig { size: 1 << 20, shards: 8, ..Default::default() })
    }

    #[test]
    fn set_semantics() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let m = ClevelHash::create(&h, None);
        let t = NoopTracker;
        assert!(m.insert(4, &t, None, 0, 1));
        assert!(m.insert(6, &t, None, 0, 2));
        assert!(!m.insert(4, &t, None, 0, 3), "duplicate insert is a no-op");
        assert_eq!(m.contents(), vec![4, 6]);
        assert!(m.remove(4, &t, None, 0, 4));
        assert!(!m.remove(4, &t, None, 0, 5));
        assert_eq!(m.contents(), vec![6]);
    }

    #[test]
    fn unflushed_slot_loses_acked_insert() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let m = ClevelHash::create(&h, Some(DsBug::UnflushedLink));
        let t = NoopTracker;
        m.insert(4, &t, None, 0, 1);
        let img = CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(8);
        let h2 = PmemHeap::open(&p2);
        let m2 = ClevelHash::recover(&h2, Some(DsBug::UnflushedLink));
        assert_eq!(m2.contents(), Vec::<u64>::new(), "claimed slot rolled back past the ack");
    }

    #[test]
    fn double_apply_recovery_plants_duplicate_key() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let m = ClevelHash::create(&h, Some(DsBug::DoubleApplyRecovery));
        let t = NoopTracker;
        m.insert(4, &t, None, 0, 1);
        let img = CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(8);
        let h2 = PmemHeap::open(&p2);
        let m2 = ClevelHash::recover(&h2, Some(DsBug::DoubleApplyRecovery));
        assert_eq!(m2.contents(), vec![4, 4], "replayed insert duplicated the key");
    }

    #[test]
    fn clean_insert_survives_pessimistic_crash() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let m = ClevelHash::create(&h, None);
        let t = NoopTracker;
        m.insert(4, &t, None, 0, 1);
        m.insert(6, &t, None, 0, 2);
        let img = CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(8);
        let h2 = PmemHeap::open(&p2);
        let m2 = ClevelHash::recover(&h2, None);
        assert_eq!(m2.contents(), vec![4, 6]);
    }
}
