//! Detectable Michael–Scott queue.
//!
//! Standard MSQ with a dummy node, plus the detectable-recoverability
//! protocol: every dequeue checkpoints `{seq, val, head_after}` so a
//! post-crash recovery can tell whether the dequeue took effect and
//! complete it *exactly once*. The seeded bugs:
//!
//! * [`DsBug::SkipCheckpointFence`] — the enqueue's checkpoint is flushed
//!   but never fenced, so the acknowledgement races every write-back of
//!   the operation (link, tail, checkpoint are all still pending).
//! * [`DsBug::DoubleApplyRecovery`] — recovery re-executes the last
//!   checkpointed dequeue without checking `head_after`, dropping one
//!   extra element after a crash (the classic double dequeue).

use super::{Annot, CheckpointArea, CheckpointRec, DsBug, Shared, CK_ADD, CK_NOOP, CK_REMOVE};
#[cfg(test)]
use crate::tracker::NoopTracker;
use crate::tracker::Tracker;
use nvm_runtime::{PAddr, PmemHeap, PmemPool, StrandId};

const MAGIC: u64 = 0x5C07_7107_AC00_0002;

const OFF_MAGIC: u64 = 0;
const OFF_HEAD: u64 = 8;
const OFF_TAIL: u64 = 16;

pub struct MsQueue<'p> {
    heap: &'p PmemHeap<'p>,
    meta: PAddr,
    bug: Option<DsBug>,
    shared: Shared,
    ck: CheckpointArea,
}

impl<'p> MsQueue<'p> {
    pub fn create(heap: &'p PmemHeap<'p>, bug: Option<DsBug>) -> MsQueue<'p> {
        let pool = heap.pool();
        let meta = heap.alloc_zeroed(64 + CheckpointArea::BYTES);
        let dummy = heap.alloc_zeroed(64);
        pool.write_u64(meta.offset(OFF_HEAD), dummy.0);
        pool.write_u64(meta.offset(OFF_TAIL), dummy.0);
        pool.write_u64(meta.offset(OFF_MAGIC), MAGIC);
        pool.persist(meta, 64 + CheckpointArea::BYTES);
        heap.set_root(meta);
        MsQueue { heap, meta, bug, shared: Shared::new(), ck: CheckpointArea::at(meta.offset(64)) }
    }

    pub fn recover(heap: &'p PmemHeap<'p>, bug: Option<DsBug>) -> MsQueue<'p> {
        let pool = heap.pool();
        let meta = heap.root();
        assert_eq!(pool.read_u64(meta.offset(OFF_MAGIC)), MAGIC, "msqueue root magic");
        let q = MsQueue {
            heap,
            meta,
            bug,
            shared: Shared::new(),
            ck: CheckpointArea::at(meta.offset(64)),
        };
        q.recover_inner();
        q
    }

    fn recover_inner(&self) {
        let pool = self.pool();
        // Tail catch-up: a crash between the link CAS and the tail swing
        // leaves the tail one node behind.
        let mut tail = pool.read_u64(self.meta.offset(OFF_TAIL));
        while super::plausible_node(pool, tail) {
            let next = pool.read_u64(PAddr(tail + 8));
            if !super::plausible_node(pool, next) {
                break;
            }
            pool.write_u64(self.meta.offset(OFF_TAIL), next);
            tail = next;
        }
        pool.persist(self.meta.offset(OFF_TAIL), 8);
        // Detectable replay of the last checkpointed dequeue.
        if let Some(CheckpointRec { kind: CK_REMOVE, result: head_after, .. }) =
            self.ck.latest(pool)
        {
            let head = pool.read_u64(self.meta.offset(OFF_HEAD));
            if self.bug == Some(DsBug::DoubleApplyRecovery) {
                // BUG: no "already applied" check — the dequeue re-runs
                // even though `head` already advanced past it.
                let next = pool.read_u64(PAddr(head + 8));
                if super::plausible_node(pool, head) && super::plausible_node(pool, next) {
                    pool.write_u64(self.meta.offset(OFF_HEAD), next);
                    pool.persist(self.meta.offset(OFF_HEAD), 8);
                }
            } else if head != head_after
                && super::plausible_node(pool, head)
                && pool.read_u64(PAddr(head + 8)) == head_after
            {
                // The CAS landed volatile but its flush never retired:
                // complete the dequeue exactly once.
                pool.write_u64(self.meta.offset(OFF_HEAD), head_after);
                pool.persist(self.meta.offset(OFF_HEAD), 8);
            }
        }
    }

    fn pool(&self) -> &'p PmemPool {
        self.heap.pool()
    }

    fn head_addr(&self) -> PAddr {
        self.meta.offset(OFF_HEAD)
    }

    fn tail_addr(&self) -> PAddr {
        self.meta.offset(OFF_TAIL)
    }

    pub fn enqueue(
        &self,
        v: u64,
        t: &dyn Tracker,
        strand: Option<StrandId>,
        client: u64,
        seq: u64,
    ) {
        let pool = self.pool();
        let a = Annot::new(t, strand, self.bug);
        let n = self.heap.alloc(64);
        assert!(!n.is_null(), "msqueue pool exhausted");
        pool.write_u64(n, v);
        pool.write_u64(n.offset(8), 0);
        a.access(n, 16, true);
        pool.persist(n, 16);
        loop {
            let tail = self.shared.read(pool, &a, self.tail_addr());
            let next = self.shared.read(pool, &a, PAddr(tail + 8));
            if next != 0 {
                // Help the lagging tail along.
                let _ = self.shared.cas(pool, &a, self.tail_addr(), tail, next);
                continue;
            }
            if self.shared.cas(pool, &a, PAddr(tail + 8), 0, n.0).is_ok() {
                pool.flush(PAddr(tail + 8), 8);
                let _ = self.shared.cas(pool, &a, self.tail_addr(), tail, n.0);
                pool.flush(self.tail_addr(), 8);
                let fence = self.bug != Some(DsBug::SkipCheckpointFence);
                self.ck.record(pool, &a, client, seq, CK_ADD, v, n.0, fence);
                return;
            }
        }
    }

    pub fn dequeue(
        &self,
        t: &dyn Tracker,
        strand: Option<StrandId>,
        client: u64,
        seq: u64,
    ) -> Option<u64> {
        let pool = self.pool();
        let a = Annot::new(t, strand, self.bug);
        loop {
            let head = self.shared.read(pool, &a, self.head_addr());
            let next = self.shared.read(pool, &a, PAddr(head + 8));
            if next == 0 {
                self.ck.record(pool, &a, client, seq, CK_NOOP, 0, 0, true);
                return None;
            }
            let val = pool.read_u64(PAddr(next));
            a.access(PAddr(next), 8, false);
            if self.shared.cas(pool, &a, self.head_addr(), head, next).is_ok() {
                pool.flush(self.head_addr(), 8);
                self.ck.record(pool, &a, client, seq, CK_REMOVE, val, next, true);
                return Some(val);
            }
        }
    }

    /// Front→back contents from the durable head chain.
    pub fn contents(&self) -> Vec<u64> {
        let pool = self.pool();
        let mut out = Vec::new();
        let head = pool.read_u64(self.head_addr());
        if !super::plausible_node(pool, head) {
            return out;
        }
        let mut cur = pool.read_u64(PAddr(head + 8));
        let mut steps = 0u32;
        while super::plausible_node(pool, cur) && steps < 1 << 16 {
            out.push(pool.read_u64(PAddr(cur)));
            cur = pool.read_u64(PAddr(cur + 8));
            steps += 1;
        }
        out
    }
}

/// Single-threaded convenience used by unit tests.
#[cfg(test)]
fn drain(q: &MsQueue<'_>) -> Vec<u64> {
    let t = NoopTracker;
    let mut out = Vec::new();
    let mut seq = 1000;
    while let Some(v) = q.dequeue(&t, None, 0, seq) {
        out.push(v);
        seq += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_runtime::{CrashPolicy, PmemPool, PoolConfig};

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig { size: 1 << 20, shards: 8, ..Default::default() })
    }

    #[test]
    fn fifo_order() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let q = MsQueue::create(&h, None);
        let t = NoopTracker;
        for (i, v) in [5, 6, 7].iter().enumerate() {
            q.enqueue(*v, &t, None, 0, i as u64 + 1);
        }
        assert_eq!(q.contents(), vec![5, 6, 7]);
        assert_eq!(drain(&q), vec![5, 6, 7]);
    }

    #[test]
    fn fenceless_checkpoint_loses_acked_enqueue() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let q = MsQueue::create(&h, Some(DsBug::SkipCheckpointFence));
        let t = NoopTracker;
        q.enqueue(42, &t, None, 0, 1);
        let img = CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(8);
        let h2 = PmemHeap::open(&p2);
        let q2 = MsQueue::recover(&h2, Some(DsBug::SkipCheckpointFence));
        assert_eq!(q2.contents(), Vec::<u64>::new(), "pending write-backs all dropped");
    }

    #[test]
    fn double_apply_recovery_dequeues_twice() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let q = MsQueue::create(&h, Some(DsBug::DoubleApplyRecovery));
        let t = NoopTracker;
        for (i, v) in [1, 2, 3].iter().enumerate() {
            q.enqueue(*v, &t, None, 0, i as u64 + 1);
        }
        assert_eq!(q.dequeue(&t, None, 0, 4), Some(1));
        let img = CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(8);
        let h2 = PmemHeap::open(&p2);
        let q2 = MsQueue::recover(&h2, Some(DsBug::DoubleApplyRecovery));
        assert_eq!(q2.contents(), vec![3], "recovery replayed the completed dequeue");
    }

    #[test]
    fn clean_recovery_is_exactly_once() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let q = MsQueue::create(&h, None);
        let t = NoopTracker;
        for (i, v) in [1, 2, 3].iter().enumerate() {
            q.enqueue(*v, &t, None, 0, i as u64 + 1);
        }
        assert_eq!(q.dequeue(&t, None, 0, 4), Some(1));
        let img = CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(8);
        let h2 = PmemHeap::open(&p2);
        let q2 = MsQueue::recover(&h2, None);
        assert_eq!(q2.contents(), vec![2, 3], "no element lost, none dequeued twice");
    }
}
