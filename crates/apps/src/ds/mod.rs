//! Concurrent persistent data structures with detectable persist
//! protocols — the Memento-style corpus (PLDI'23) the dynamic checker was
//! built for.
//!
//! Five structures, each expressing its checkpoint / detectable-CAS
//! protocol through the simulated pool's store/flush/fence/CAS API:
//!
//! * [`treiber`] — Treiber stack: link-persist the node, CAS the top,
//!   flush the top word, checkpoint.
//! * [`msqueue`] — Michael–Scott queue: CAS `tail.next`, flush the link,
//!   swing the tail, checkpoint the dequeue head for exactly-once
//!   recovery.
//! * [`harris`] — Harris-style sorted list (set): CAS `pred.next`, flush
//!   the link word.
//! * [`comb`] — flat-combining queue (PBComb-style): operations buffer in
//!   DRAM; the combiner applies a whole batch to the persistent ring with
//!   one flush + fence + checkpoint.
//! * [`clevel`] — Clevel-style two-level hash: CAS-claim an empty slot,
//!   flush the slot, checkpoint the insert for detectable replay.
//!
//! Every structure ships a set of **seeded bug variants** ([`DsBug`]) with
//! ground-truth detection labels ([`expected`]): a missing flush on the
//! link persist, a fence-less checkpoint, a recovery path that re-applies
//! a completed detectable operation, and an unannotated (strand-racy)
//! variant whose WAW/RAW persist dependences only the dynamic checker can
//! see. [`pir`] renders each (structure, variant) as a PIR model for the
//! static and dynamic checkers; [`sweep`] crash-tests the real Rust
//! implementation at every step with the linearization-prefix oracle.
//!
//! ## Strand-annotation conventions (for adding a sixth structure)
//!
//! * One strand per client thread (`Tracker::region_begin` /
//!   `region_end` around the thread's operation loop).
//! * Every CAS-mediated shared word goes through [`Shared::read`] /
//!   [`Shared::write`] / [`Shared::cas`]: under the clean variant these
//!   hold a striped
//!   per-word lock for the annotate+operate window and mirror it with
//!   `lock_acquire`/`lock_release` on the word address, so the detector
//!   sees exactly the synchronization that really happened. The
//!   [`DsBug::StrandRace`] variant skips the synchronization (the
//!   persists genuinely race) while still reporting the accesses.
//! * Private-until-published memory (freshly allocated nodes) and
//!   per-client checkpoint slots use plain [`Annot::access`] reports; the
//!   publication CAS's release edge orders them for later readers.
//! * Checkpoints live in per-client 64-byte slots
//!   ([`CHECKPOINT_SLOTS`] slots per structure); recovery consults the
//!   highest-sequence slot for detectable replay.

pub mod clevel;
pub mod comb;
pub mod harris;
pub mod msqueue;
pub mod pir;
pub mod sweep;
pub mod treiber;

use crate::tracker::Tracker;
use nvm_runtime::{PAddr, PmemHeap, PmemPool, StrandId};
use parking_lot::Mutex;

pub use sweep::{ds_sweep, ds_sweep_script, DsSweepConfig, DsSweepOutcome, DsViolation};

/// Per-client checkpoint slots each structure reserves (one cache line
/// per slot). Client ids are taken modulo this, so drivers must not run
/// more concurrent clients than slots or slots would be shared.
pub const CHECKPOINT_SLOTS: u64 = 16;

/// The five corpus structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DsKind {
    Treiber,
    MsQueue,
    Harris,
    Comb,
    Clevel,
}

impl DsKind {
    pub const ALL: [DsKind; 5] =
        [DsKind::Treiber, DsKind::MsQueue, DsKind::Harris, DsKind::Comb, DsKind::Clevel];

    pub fn name(self) -> &'static str {
        match self {
            DsKind::Treiber => "treiber",
            DsKind::MsQueue => "msqueue",
            DsKind::Harris => "harris",
            DsKind::Comb => "comb",
            DsKind::Clevel => "clevel",
        }
    }

    pub fn display(self) -> &'static str {
        match self {
            DsKind::Treiber => "Treiber stack",
            DsKind::MsQueue => "Michael-Scott queue",
            DsKind::Harris => "Harris list",
            DsKind::Comb => "combining queue",
            DsKind::Clevel => "Clevel hash",
        }
    }

    pub fn from_name(name: &str) -> Option<DsKind> {
        DsKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The seeded bug variants this structure ships with (every structure
    /// has at least two).
    pub fn seeded_bugs(self) -> &'static [DsBug] {
        match self {
            DsKind::Treiber => &[DsBug::UnflushedLink, DsBug::StrandRace],
            DsKind::MsQueue => {
                &[DsBug::SkipCheckpointFence, DsBug::DoubleApplyRecovery, DsBug::StrandRace]
            }
            DsKind::Harris => &[DsBug::UnflushedLink, DsBug::StrandRace],
            DsKind::Comb => &[DsBug::SkipCheckpointFence, DsBug::StrandRace],
            DsKind::Clevel => {
                &[DsBug::UnflushedLink, DsBug::DoubleApplyRecovery, DsBug::StrandRace]
            }
        }
    }

    /// Clean first, then every seeded bug.
    pub fn variants(self) -> Vec<Option<DsBug>> {
        std::iter::once(None).chain(self.seeded_bugs().iter().copied().map(Some)).collect()
    }

    /// Operations per durability acknowledgement: the combining queue
    /// persists per batch; everything else acks per operation.
    pub fn batch(self) -> u64 {
        match self {
            DsKind::Comb => 4,
            _ => 1,
        }
    }
}

/// Seeded persistency bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DsBug {
    /// The link-publish store (stack top / queue head / `pred.next` /
    /// hash slot) is never flushed before the operation acknowledges.
    UnflushedLink,
    /// The detectable-CAS checkpoint is flushed but the trailing fence is
    /// skipped, so the acknowledgement races the write-backs.
    SkipCheckpointFence,
    /// Recovery re-applies the last checkpointed operation without
    /// checking whether it already took effect (double dequeue / double
    /// insert after crash-recovery).
    DoubleApplyRecovery,
    /// The strand-synchronization annotations (and the synchronization
    /// they mirror) are missing: concurrent strands' persists to the same
    /// words race. Invisible to static analysis (dynamic addresses),
    /// caught by the happens-before detector.
    StrandRace,
}

impl DsBug {
    pub const ALL: [DsBug; 4] = [
        DsBug::UnflushedLink,
        DsBug::SkipCheckpointFence,
        DsBug::DoubleApplyRecovery,
        DsBug::StrandRace,
    ];

    pub fn name(self) -> &'static str {
        match self {
            DsBug::UnflushedLink => "unflushed-link",
            DsBug::SkipCheckpointFence => "skip-checkpoint-fence",
            DsBug::DoubleApplyRecovery => "double-apply-recovery",
            DsBug::StrandRace => "strand-race",
        }
    }

    pub fn from_name(name: &str) -> Option<DsBug> {
        DsBug::ALL.into_iter().find(|b| b.name() == name)
    }

    /// The DeepMC bug class the detecting checker reports (by name, so
    /// this crate does not depend on `deepmc-models`).
    pub fn class_label(self) -> &'static str {
        match self {
            DsBug::UnflushedLink => "UnflushedWrite",
            DsBug::SkipCheckpointFence => "MissingPersistBarrier",
            DsBug::DoubleApplyRecovery => "CrashRecovery",
            DsBug::StrandRace => "InterStrandDependency",
        }
    }
}

/// A variant's name: `clean` or the bug name.
pub fn variant_name(bug: Option<DsBug>) -> &'static str {
    bug.map_or("clean", DsBug::name)
}

/// Ground-truth detection verdict per checker for one variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expected {
    /// Static checker over the PIR model flags it.
    pub static_: bool,
    /// Dynamic (HB) checker over the PIR model flags it.
    pub dynamic: bool,
    /// Crash sweep with `--oracle` over the Rust implementation flags it.
    pub crash: bool,
}

/// The detection matrix cell for a variant — identical across structures
/// by construction (each bug is seeded the same way everywhere).
pub fn expected(bug: Option<DsBug>) -> Expected {
    match bug {
        None => Expected { static_: false, dynamic: false, crash: false },
        Some(DsBug::UnflushedLink) => Expected { static_: true, dynamic: false, crash: true },
        Some(DsBug::SkipCheckpointFence) => Expected { static_: true, dynamic: false, crash: true },
        Some(DsBug::DoubleApplyRecovery) => {
            Expected { static_: false, dynamic: false, crash: true }
        }
        Some(DsBug::StrandRace) => Expected { static_: false, dynamic: true, crash: false },
    }
}

/// One scripted operation. For the keyed structures (Harris, Clevel) the
/// payload is the key; the stack and queues push the payload as a value
/// and ignore `Remove`'s payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsOp {
    Add(u64),
    Remove(u64),
}

/// Deterministic operation script over a small contended key range:
/// ~70% adds, ~30% removes, everything derived from `seed`.
pub fn ds_script(seed: u64, steps: u64) -> Vec<DsOp> {
    (0..steps)
        .map(|i| {
            let r = crate::recovery::checksum(seed, &[0xD57A, i]);
            let key = 1 + r % 8;
            if r % 10 < 3 {
                DsOp::Remove(key)
            } else {
                DsOp::Add(key)
            }
        })
        .collect()
}

/// Canonical state of `kind` after every script prefix: `states[t]` is
/// the state after the first `t` operations (so `states[0]` is empty).
/// The crash oracle compares recovered contents against these.
pub fn model_states(kind: DsKind, script: &[DsOp]) -> Vec<Vec<u64>> {
    let mut states = Vec::with_capacity(script.len() + 1);
    match kind {
        DsKind::Treiber => {
            // contents() reports bottom→top.
            let mut stack: Vec<u64> = Vec::new();
            states.push(stack.clone());
            for op in script {
                match op {
                    DsOp::Add(v) => stack.push(*v),
                    DsOp::Remove(_) => {
                        stack.pop();
                    }
                }
                states.push(stack.clone());
            }
        }
        DsKind::MsQueue | DsKind::Comb => {
            // contents() reports front→back.
            let mut q: std::collections::VecDeque<u64> = Default::default();
            states.push(Vec::new());
            for op in script {
                match op {
                    DsOp::Add(v) => q.push_back(*v),
                    DsOp::Remove(_) => {
                        q.pop_front();
                    }
                }
                states.push(q.iter().copied().collect());
            }
        }
        DsKind::Harris | DsKind::Clevel => {
            // contents() reports the key set, sorted.
            let mut set: std::collections::BTreeSet<u64> = Default::default();
            states.push(Vec::new());
            for op in script {
                match op {
                    DsOp::Add(k) => {
                        set.insert(*k);
                    }
                    DsOp::Remove(k) => {
                        set.remove(k);
                    }
                }
                states.push(set.iter().copied().collect());
            }
        }
    }
    states
}

/// Tracker + strand handle threaded through every structure operation,
/// with the variant's synchronization switch baked in.
#[derive(Clone, Copy)]
pub(crate) struct Annot<'a> {
    pub t: &'a dyn Tracker,
    pub strand: Option<StrandId>,
    /// False under [`DsBug::StrandRace`]: accesses are still reported,
    /// but no synchronization happens or is annotated.
    pub sync: bool,
}

impl<'a> Annot<'a> {
    pub fn new(t: &'a dyn Tracker, strand: Option<StrandId>, bug: Option<DsBug>) -> Annot<'a> {
        Annot { t, strand, sync: bug != Some(DsBug::StrandRace) }
    }

    /// Plain instrumented access (private-until-published memory,
    /// per-client checkpoint slots).
    pub fn access(&self, addr: PAddr, len: u64, is_write: bool) {
        self.t.access(self.strand, addr.0, len, is_write);
    }
}

const STRIPES: usize = 64;

/// Striped per-word locks for CAS-mediated shared words. Holding the
/// stripe across the annotate+operate window makes the annotation
/// sequence atomic with the operation it describes, so the detector
/// never sees an ordering the execution didn't have (no false WAW/RAW
/// on the clean variants).
pub(crate) struct Shared {
    stripes: Vec<Mutex<()>>,
}

impl Shared {
    pub fn new() -> Shared {
        Shared { stripes: (0..STRIPES).map(|_| Mutex::new(())).collect() }
    }

    fn stripe(&self, addr: PAddr) -> &Mutex<()> {
        &self.stripes[(addr.0 as usize / 8) % STRIPES]
    }

    /// Synchronized read of a shared word.
    pub fn read(&self, pool: &PmemPool, a: &Annot<'_>, addr: PAddr) -> u64 {
        let _g = a.sync.then(|| self.stripe(addr).lock());
        if a.sync {
            a.t.lock_acquire(a.strand, addr.0);
        }
        a.access(addr, 8, false);
        let v = pool.read_u64(addr);
        if a.sync {
            a.t.lock_release(a.strand, addr.0);
        }
        v
    }

    /// Synchronized plain store to a shared word (e.g. a value slot that
    /// different claimants write across reuse cycles: the claiming CAS
    /// orders the *claims*, but not the writes that follow them).
    pub fn write(&self, pool: &PmemPool, a: &Annot<'_>, addr: PAddr, v: u64) {
        let _g = a.sync.then(|| self.stripe(addr).lock());
        if a.sync {
            a.t.lock_acquire(a.strand, addr.0);
        }
        pool.write_u64(addr, v);
        a.access(addr, 8, true);
        if a.sync {
            a.t.lock_release(a.strand, addr.0);
        }
    }

    /// Synchronized CAS of a shared word. A failed CAS only observed the
    /// word, so it reports a read.
    pub fn cas(
        &self,
        pool: &PmemPool,
        a: &Annot<'_>,
        addr: PAddr,
        expected: u64,
        new: u64,
    ) -> Result<(), u64> {
        let _g = a.sync.then(|| self.stripe(addr).lock());
        if a.sync {
            a.t.lock_acquire(a.strand, addr.0);
        }
        let r = pool.cas_u64(addr, expected, new);
        a.access(addr, 8, r.is_ok());
        if a.sync {
            a.t.lock_release(a.strand, addr.0);
        }
        r
    }
}

/// Checkpoint record kinds.
pub(crate) const CK_NONE: u64 = 0;
pub(crate) const CK_ADD: u64 = 1;
pub(crate) const CK_REMOVE: u64 = 2;
pub(crate) const CK_NOOP: u64 = 3;

/// A decoded checkpoint slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CheckpointRec {
    pub seq: u64,
    pub kind: u64,
    pub arg: u64,
    pub result: u64,
}

/// Per-client detectable-operation checkpoints: [`CHECKPOINT_SLOTS`]
/// cache lines after `base`, one per client. An operation records
/// `{seq, kind, arg, result}`, flushes the slot, and fences — the fence
/// is the acknowledgement point, and (being global) also retires the
/// operation's earlier link flushes.
pub(crate) struct CheckpointArea {
    base: PAddr,
}

impl CheckpointArea {
    pub fn at(base: PAddr) -> CheckpointArea {
        CheckpointArea { base }
    }

    /// Bytes to reserve for the slots.
    pub const BYTES: u64 = CHECKPOINT_SLOTS * 64;

    fn slot(&self, client: u64) -> PAddr {
        self.base.offset((client % CHECKPOINT_SLOTS) * 64)
    }

    /// Record and (optionally) fence one operation's checkpoint. With
    /// `fence` false ([`DsBug::SkipCheckpointFence`]) the slot and every
    /// earlier flush of the operation stay pending: the acknowledgement
    /// returns before anything is guaranteed durable.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        pool: &PmemPool,
        a: &Annot<'_>,
        client: u64,
        seq: u64,
        kind: u64,
        arg: u64,
        result: u64,
        fence: bool,
    ) {
        let s = self.slot(client);
        pool.write_u64(s, seq);
        pool.write_u64(s.offset(8), kind);
        pool.write_u64(s.offset(16), arg);
        pool.write_u64(s.offset(24), result);
        a.access(s, 32, true);
        pool.flush(s, 32);
        if fence {
            pool.fence();
        }
    }

    /// The highest-sequence checkpoint across all slots (recovery's
    /// detectable-replay candidate).
    pub fn latest(&self, pool: &PmemPool) -> Option<CheckpointRec> {
        (0..CHECKPOINT_SLOTS)
            .map(|c| {
                let s = self.slot(c);
                CheckpointRec {
                    seq: pool.read_u64(s),
                    kind: pool.read_u64(s.offset(8)),
                    arg: pool.read_u64(s.offset(16)),
                    result: pool.read_u64(s.offset(24)),
                }
            })
            .filter(|r| r.kind != CK_NONE)
            .max_by_key(|r| r.seq)
    }
}

/// Uniform handle over the five structures.
pub enum DsInstance<'p> {
    Treiber(treiber::TreiberStack<'p>),
    MsQueue(msqueue::MsQueue<'p>),
    Harris(harris::HarrisList<'p>),
    Comb(comb::CombQueue<'p>),
    Clevel(clevel::ClevelHash<'p>),
}

impl<'p> DsInstance<'p> {
    /// Create a fresh structure on an empty heap and set it as the root.
    pub fn create(kind: DsKind, bug: Option<DsBug>, heap: &'p PmemHeap<'p>) -> DsInstance<'p> {
        match kind {
            DsKind::Treiber => DsInstance::Treiber(treiber::TreiberStack::create(heap, bug)),
            DsKind::MsQueue => DsInstance::MsQueue(msqueue::MsQueue::create(heap, bug)),
            DsKind::Harris => DsInstance::Harris(harris::HarrisList::create(heap, bug)),
            DsKind::Comb => DsInstance::Comb(comb::CombQueue::create(heap, bug)),
            DsKind::Clevel => DsInstance::Clevel(clevel::ClevelHash::create(heap, bug)),
        }
    }

    /// Attach to a rebooted pool and run the structure's recovery
    /// (tail catch-up, detectable replay of the latest checkpoint).
    pub fn recover(kind: DsKind, bug: Option<DsBug>, heap: &'p PmemHeap<'p>) -> DsInstance<'p> {
        match kind {
            DsKind::Treiber => DsInstance::Treiber(treiber::TreiberStack::recover(heap, bug)),
            DsKind::MsQueue => DsInstance::MsQueue(msqueue::MsQueue::recover(heap, bug)),
            DsKind::Harris => DsInstance::Harris(harris::HarrisList::recover(heap, bug)),
            DsKind::Comb => DsInstance::Comb(comb::CombQueue::recover(heap, bug)),
            DsKind::Clevel => DsInstance::Clevel(clevel::ClevelHash::recover(heap, bug)),
        }
    }

    /// Execute one operation as `client` with sequence number `seq`.
    /// Returning is the durability acknowledgement (except for the
    /// combining queue, which acks at [`DsInstance::batch_end`]).
    pub fn apply(
        &self,
        op: DsOp,
        t: &dyn Tracker,
        strand: Option<StrandId>,
        client: u64,
        seq: u64,
    ) -> Option<u64> {
        match (self, op) {
            (DsInstance::Treiber(s), DsOp::Add(v)) => {
                s.push(v, t, strand, client, seq);
                Some(v)
            }
            (DsInstance::Treiber(s), DsOp::Remove(_)) => s.pop(t, strand, client, seq),
            (DsInstance::MsQueue(q), DsOp::Add(v)) => {
                q.enqueue(v, t, strand, client, seq);
                Some(v)
            }
            (DsInstance::MsQueue(q), DsOp::Remove(_)) => q.dequeue(t, strand, client, seq),
            (DsInstance::Harris(l), DsOp::Add(k)) => {
                l.insert(k, t, strand, client, seq);
                Some(k)
            }
            (DsInstance::Harris(l), DsOp::Remove(k)) => {
                l.remove(k, t, strand, client, seq).then_some(k)
            }
            (DsInstance::Comb(c), DsOp::Add(v)) => {
                c.enqueue(v, t, strand, client, seq);
                Some(v)
            }
            (DsInstance::Comb(c), DsOp::Remove(_)) => c.dequeue(t, strand, client, seq),
            (DsInstance::Clevel(h), DsOp::Add(k)) => {
                h.insert(k, t, strand, client, seq);
                Some(k)
            }
            (DsInstance::Clevel(h), DsOp::Remove(k)) => {
                h.remove(k, t, strand, client, seq).then_some(k)
            }
        }
    }

    /// Close the current batch (combining queue: apply + persist the
    /// buffered operations; no-op elsewhere).
    pub fn batch_end(&self, t: &dyn Tracker, strand: Option<StrandId>, client: u64, seq: u64) {
        if let DsInstance::Comb(c) = self {
            c.combine(t, strand, client, seq);
        }
    }

    /// Canonical contents (see [`model_states`] for the per-kind order).
    pub fn contents(&self) -> Vec<u64> {
        match self {
            DsInstance::Treiber(s) => s.contents(),
            DsInstance::MsQueue(q) => q.contents(),
            DsInstance::Harris(l) => l.contents(),
            DsInstance::Comb(c) => c.contents(),
            DsInstance::Clevel(h) => h.contents(),
        }
    }
}

/// Walk guard shared by the linked structures: a durable-but-stale
/// pointer (the seeded unflushed-link bugs) can reference reused or
/// never-persisted memory, so walks bound their steps and validate every
/// hop instead of trusting the image.
pub(crate) fn plausible_node(pool: &PmemPool, addr: u64) -> bool {
    addr != 0 && addr.is_multiple_of(64) && addr + 64 <= pool.size()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        assert_eq!(DsKind::ALL.len(), 5);
        let mut seeded = 0;
        for kind in DsKind::ALL {
            assert_eq!(DsKind::from_name(kind.name()), Some(kind));
            assert!(kind.seeded_bugs().len() >= 2, "{} needs 2+ seeded bugs", kind.name());
            seeded += kind.seeded_bugs().len();
            assert_eq!(kind.variants().len(), kind.seeded_bugs().len() + 1);
            assert_eq!(kind.variants()[0], None, "clean variant first");
        }
        assert!(seeded >= 10, "ISSUE floor: 10+ seeded variants, got {seeded}");
    }

    #[test]
    fn every_seeded_bug_is_detected_by_some_checker() {
        for kind in DsKind::ALL {
            for &bug in kind.seeded_bugs() {
                let e = expected(Some(bug));
                assert!(
                    e.static_ || e.dynamic || e.crash,
                    "{}/{} undetectable",
                    kind.name(),
                    bug.name()
                );
            }
        }
        let clean = expected(None);
        assert!(!clean.static_ && !clean.dynamic && !clean.crash);
        // Every strand WAW/RAW variant is a dynamic-checker catch.
        assert!(expected(Some(DsBug::StrandRace)).dynamic);
    }

    #[test]
    fn script_is_deterministic_and_mixed() {
        let s = ds_script(7, 64);
        assert_eq!(s, ds_script(7, 64));
        assert_ne!(s, ds_script(8, 64));
        assert!(s.iter().any(|o| matches!(o, DsOp::Add(_))));
        assert!(s.iter().any(|o| matches!(o, DsOp::Remove(_))));
    }

    #[test]
    fn model_states_respect_semantics() {
        let script = [DsOp::Add(3), DsOp::Add(5), DsOp::Add(3), DsOp::Remove(3)];
        let stack = model_states(DsKind::Treiber, &script);
        assert_eq!(stack[3], vec![3, 5, 3]);
        assert_eq!(stack[4], vec![3, 5], "stack pops the top (LIFO)");
        let queue = model_states(DsKind::MsQueue, &script);
        assert_eq!(queue[4], vec![5, 3], "queue pops the front (FIFO)");
        let set = model_states(DsKind::Harris, &script);
        assert_eq!(set[3], vec![3, 5], "set semantics deduplicate");
        assert_eq!(set[4], vec![5], "keyed remove");
        assert_eq!(model_states(DsKind::Clevel, &script), set);
        assert_eq!(model_states(DsKind::Comb, &script), queue);
    }
}
