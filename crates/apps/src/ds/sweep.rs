//! Crash-recovery sweep over the DS corpus.
//!
//! For every prefix of a deterministic operation script, run the prefix
//! against a fresh structure, crash under every [`CrashPolicy`], reboot,
//! run the structure's recovery, and validate the recovered contents:
//!
//! * with `oracle` — the linearization-prefix oracle: the recovered state
//!   must equal the canonical model state at some point inside the
//!   operation's durability window (`[batch-floor(s), s]`; the window is
//!   a single point for the per-op structures and the current batch for
//!   the combining queue, which only acks at batch close);
//! * without — a membership-only check: every recovered element must have
//!   been added by the executed prefix.
//!
//! With `prune`, validation runs WITCHER-style in the same two-phase
//! shape as [`crate::explore`]: probe every `(step, policy)` crash point,
//! bucket by `(image content hash, oracle-window digest)`, validate one
//! representative per class in canonical order via the shared analysis
//! pool, and propagate verdicts. The pruned outcome is
//! violation-for-violation identical to the exhaustive one at every
//! worker count; only the explored/pruned split differs.

use super::{model_states, DsBug, DsInstance, DsKind, DsOp};
use crate::crashsweep::policy_name;
use crate::tracker::NoopTracker;
use deepmc_analysis::pool::{resolve_jobs_request, run_indexed};
use deepmc_obs as obs;
use nvm_runtime::{CrashImage, CrashPolicy, PmemHeap, PmemPool, PoolConfig};
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

/// Configuration for one structure × variant sweep.
#[derive(Debug, Clone)]
pub struct DsSweepConfig {
    pub kind: DsKind,
    pub bug: Option<DsBug>,
    /// Script seed (drives [`super::ds_script`]).
    pub seed: u64,
    /// Script length; every prefix `1..=steps` is crashed.
    pub steps: u64,
    /// Collapse equivalent crash states before validating.
    pub prune: bool,
    /// Linearization-prefix oracle (vs membership-only).
    pub oracle: bool,
    /// Worker threads (0 = auto).
    pub jobs: usize,
}

impl DsSweepConfig {
    pub fn new(kind: DsKind, bug: Option<DsBug>) -> DsSweepConfig {
        DsSweepConfig { kind, bug, seed: 0xD5, steps: 24, prune: false, oracle: false, jobs: 1 }
    }
}

/// One failed crash-recovery validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsViolation {
    pub step: u64,
    pub policy: String,
    pub detail: String,
}

/// Aggregate result of one sweep.
#[derive(Debug, Clone)]
pub struct DsSweepOutcome {
    pub kind: DsKind,
    pub bug: Option<DsBug>,
    pub steps: u64,
    /// Crash images validated (directly or via a class representative).
    pub images_checked: u64,
    /// Images actually recovered (class representatives).
    pub states_explored: u64,
    /// Images whose verdict was propagated from a representative.
    pub states_pruned: u64,
    pub violations: Vec<DsViolation>,
}

impl DsSweepOutcome {
    /// Deterministic one-sweep render (used for jobs-parity assertions).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "ds sweep: kind={} variant={} steps={} images={} explored={} pruned={} violations={}\n",
            self.kind.name(),
            super::variant_name(self.bug),
            self.steps,
            self.images_checked,
            self.states_explored,
            self.states_pruned,
            self.violations.len(),
        );
        for v in &self.violations {
            let _ = writeln!(s, "  violation step={} policy={} {}", v.step, v.policy, v.detail);
        }
        s
    }
}

/// The crash policies every step is subjected to, in canonical order.
fn policies(cfg: &DsSweepConfig) -> Vec<CrashPolicy> {
    vec![
        CrashPolicy::Pessimistic,
        CrashPolicy::PendingOnly,
        CrashPolicy::Optimistic,
        CrashPolicy::Random(cfg.seed ^ 0xD5_CA5),
    ]
}

/// FNV-1a mix of the class-key components.
fn mix(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn digest_state(h: &mut Vec<u64>, state: &[u64]) {
    h.push(state.len() as u64);
    h.extend_from_slice(state);
}

/// Run the first `s` script operations against a fresh structure and
/// return the pool ready to crash.
fn run_prefix(cfg: &DsSweepConfig, script: &[DsOp], s: usize) -> PmemPool {
    let pool = PmemPool::new(PoolConfig { size: 1 << 20, shards: 8, ..Default::default() });
    {
        let heap = PmemHeap::open(&pool);
        let inst = DsInstance::create(cfg.kind, cfg.bug, &heap);
        let t = NoopTracker;
        let batch = cfg.kind.batch();
        for (i, &op) in script[..s].iter().enumerate() {
            let seq = i as u64 + 1;
            inst.apply(op, &t, None, 0, seq);
            if seq.is_multiple_of(batch) {
                inst.batch_end(&t, None, 0, seq);
            }
        }
    }
    pool
}

/// The durability window for a crash at step `s`: operations up to the
/// last acknowledged batch are guaranteed; in-flight ones may or may not
/// have landed.
fn window(cfg: &DsSweepConfig, s: u64) -> (u64, u64) {
    let floor = s - s % cfg.kind.batch();
    (floor, s)
}

/// Reboot one crash image, recover, and validate. `None` means the image
/// passed.
fn validate(
    cfg: &DsSweepConfig,
    models: &[Vec<u64>],
    added: &BTreeSet<u64>,
    s: u64,
    img: &CrashImage,
) -> Option<String> {
    let pool = img.reboot(8);
    let heap = PmemHeap::open(&pool);
    let inst = DsInstance::recover(cfg.kind, cfg.bug, &heap);
    let got = inst.contents();
    if cfg.oracle {
        let (floor, hi) = window(cfg, s);
        if !(floor..=hi).any(|t| models[t as usize] == got) {
            return Some(format!(
                "recovered {:?} is no linearization prefix in [{floor}, {hi}] (expected around {:?})",
                got, models[hi as usize]
            ));
        }
    } else if let Some(orphan) = got.iter().find(|v| !added.contains(v)) {
        return Some(format!("recovered element {orphan} was never added"));
    }
    None
}

/// Sweep using the canonical deterministic script for `cfg.seed`.
pub fn ds_sweep(cfg: &DsSweepConfig) -> DsSweepOutcome {
    let script = super::ds_script(cfg.seed, cfg.steps);
    ds_sweep_script(cfg, &script)
}

/// Sweep an explicit operation history (the proptest entry point).
pub fn ds_sweep_script(cfg: &DsSweepConfig, script: &[DsOp]) -> DsSweepOutcome {
    let _span = obs::span_lazy("ds.sweep", || {
        vec![
            ("kind", cfg.kind.name().to_string()),
            ("variant", super::variant_name(cfg.bug).to_string()),
        ]
    });
    let models = model_states(cfg.kind, script);
    let added: BTreeSet<u64> = script
        .iter()
        .filter_map(|op| if let DsOp::Add(v) = op { Some(*v) } else { None })
        .collect();
    let jobs = resolve_jobs_request(cfg.jobs);
    let pols = policies(cfg);
    let total = script.len();
    let mut outcome = DsSweepOutcome {
        kind: cfg.kind,
        bug: cfg.bug,
        steps: total as u64,
        images_checked: (total * pols.len()) as u64,
        states_explored: 0,
        states_pruned: 0,
        violations: Vec::new(),
    };

    if !cfg.prune {
        // Exhaustive: validate every (step, policy) image; steps fan out
        // over the shared pool, results merge in step order.
        let steps: Vec<usize> = (1..=total).collect();
        let per_step = run_indexed(jobs, steps, |_, s| {
            let run = run_prefix(cfg, script, s);
            pols.iter()
                .map(|p| validate(cfg, &models, &added, s as u64, &p.apply(&run)))
                .collect::<Vec<_>>()
        });
        for (idx, verdicts) in per_step.into_iter().enumerate() {
            for (pi, verdict) in verdicts.into_iter().enumerate() {
                if let Some(detail) = verdict {
                    outcome.violations.push(DsViolation {
                        step: idx as u64 + 1,
                        policy: policy_name(&pols[pi]),
                        detail,
                    });
                }
            }
        }
        outcome.states_explored = outcome.images_checked;
    } else {
        // Phase A: probe — image hash + oracle-window digest per crash
        // point, no recovery.
        let steps: Vec<usize> = (1..=total).collect();
        let probes = run_indexed(jobs, steps, |_, s| {
            let run = run_prefix(cfg, script, s);
            let (floor, hi) = window(cfg, s as u64);
            let mut ctx: Vec<u64> = vec![cfg.oracle as u64, floor, hi];
            if cfg.oracle {
                for t in floor..=hi {
                    digest_state(&mut ctx, &models[t as usize]);
                }
            } else {
                digest_state(&mut ctx, &added.iter().copied().collect::<Vec<u64>>());
            }
            let ctx_digest = mix(&ctx);
            pols.iter()
                .map(|p| mix(&[p.apply(&run).content_hash(), ctx_digest]))
                .collect::<Vec<u64>>()
        });

        // Elect representatives in canonical (step, policy) order.
        let mut rep_of: HashMap<u64, (usize, usize)> = HashMap::new();
        let mut reps_by_step: Vec<(usize, Vec<usize>)> = Vec::new();
        for (idx, keys) in probes.iter().enumerate() {
            let s = idx + 1;
            let mut mine: Vec<usize> = Vec::new();
            for (pi, &key) in keys.iter().enumerate() {
                rep_of.entry(key).or_insert_with(|| {
                    mine.push(pi);
                    (s, pi)
                });
            }
            if !mine.is_empty() {
                reps_by_step.push((s, mine));
            }
        }

        // Phase B: validate only the representatives. Every policy is
        // still applied in order so representative images are
        // byte-identical to the exhaustive run's.
        let results = run_indexed(jobs, reps_by_step.clone(), |_, (s, rep_pis)| {
            let run = run_prefix(cfg, script, s);
            pols.iter()
                .enumerate()
                .filter_map(|(pi, p)| {
                    let img = p.apply(&run);
                    rep_pis
                        .contains(&pi)
                        .then(|| (pi, validate(cfg, &models, &added, s as u64, &img)))
                })
                .collect::<Vec<_>>()
        });
        let mut verdicts: HashMap<(usize, usize), Option<String>> = HashMap::new();
        for ((s, _), frags) in reps_by_step.iter().zip(results) {
            for (pi, verdict) in frags {
                verdicts.insert((*s, pi), verdict);
            }
        }
        outcome.states_explored = verdicts.len() as u64;
        outcome.states_pruned = outcome.images_checked - outcome.states_explored;

        // Merge: propagate verdicts to class members in canonical order,
        // relabelled with the member's own step and policy.
        for (idx, keys) in probes.iter().enumerate() {
            let s = idx + 1;
            for (pi, key) in keys.iter().enumerate() {
                if let Some(detail) = &verdicts[&rep_of[key]] {
                    outcome.violations.push(DsViolation {
                        step: s as u64,
                        policy: policy_name(&pols[pi]),
                        detail: detail.clone(),
                    });
                }
            }
        }
    }

    obs::counter("ds.images_checked", outcome.images_checked);
    obs::counter("ds.explored", outcome.states_explored);
    obs::counter("ds.pruned", outcome.states_pruned);
    obs::counter("ds.violations", outcome.violations.len() as u64);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(kind: DsKind, bug: Option<DsBug>, prune: bool, oracle: bool) -> DsSweepOutcome {
        let mut cfg = DsSweepConfig::new(kind, bug);
        cfg.prune = prune;
        cfg.oracle = oracle;
        ds_sweep(&cfg)
    }

    #[test]
    fn clean_variants_have_zero_violations_under_oracle() {
        for kind in DsKind::ALL {
            let out = sweep(kind, None, false, true);
            assert!(out.violations.is_empty(), "{}: {}", kind.name(), out.summary());
        }
    }

    #[test]
    fn crash_seeded_bugs_are_caught_and_strand_race_is_crash_clean() {
        for kind in DsKind::ALL {
            for &bug in kind.seeded_bugs() {
                let out = sweep(kind, Some(bug), false, true);
                let e = super::super::expected(Some(bug));
                assert_eq!(
                    !out.violations.is_empty(),
                    e.crash,
                    "{}/{}: {}",
                    kind.name(),
                    bug.name(),
                    out.summary()
                );
            }
        }
    }

    #[test]
    fn pruned_sweep_matches_exhaustive_and_actually_prunes() {
        for kind in DsKind::ALL {
            for bug in kind.variants() {
                let ex = sweep(kind, bug, false, true);
                let pr = sweep(kind, bug, true, true);
                assert_eq!(
                    ex.violations,
                    pr.violations,
                    "{}/{}",
                    kind.name(),
                    super::super::variant_name(bug)
                );
                assert_eq!(ex.images_checked, pr.images_checked);
                assert!(
                    pr.states_pruned > 0,
                    "{}/{} pruned nothing ({} images)",
                    kind.name(),
                    super::super::variant_name(bug),
                    pr.images_checked
                );
            }
        }
    }

    #[test]
    fn jobs_do_not_change_the_summary() {
        for prune in [false, true] {
            let mut cfg = DsSweepConfig::new(DsKind::MsQueue, Some(DsBug::SkipCheckpointFence));
            cfg.prune = prune;
            cfg.oracle = true;
            cfg.jobs = 1;
            let one = ds_sweep(&cfg).summary();
            cfg.jobs = 4;
            let four = ds_sweep(&cfg).summary();
            assert_eq!(one, four, "prune={prune}");
        }
    }
}
