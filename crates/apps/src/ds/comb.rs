//! Flat-combining persistent queue (PBComb-style).
//!
//! Operations buffer in DRAM under a real combiner lock; every
//! [`CombQueue::combine`] call (the batch close, driven by
//! `DsInstance::batch_end` every [`DsKind::batch`] operations) applies the
//! buffered batch to the persistent ring with one flush + fence +
//! checkpoint. Durability is therefore acknowledged **per batch**, not per
//! operation — the crash oracle accounts for that with a batch-floor
//! linearization window.
//!
//! The combiner lock is always real (the DRAM mirror needs it for Rust
//! soundness); the [`DsBug::StrandRace`] variant only stops *annotating*
//! it, so the detector sees the strands' persist accesses as unordered.
//! [`DsBug::SkipCheckpointFence`] flushes the batch but never fences, so
//! the whole acknowledged batch can roll back on crash.

use super::{Annot, CheckpointArea, DsBug, CK_ADD};
use crate::tracker::Tracker;
use nvm_runtime::{PAddr, PmemHeap, PmemPool, StrandId};
use parking_lot::Mutex;
use std::collections::VecDeque;

const MAGIC: u64 = 0xC03B_1257_AC00_0004;

const OFF_MAGIC: u64 = 0;
const OFF_HEAD: u64 = 8;
const OFF_TAIL: u64 = 16;
const OFF_RING: u64 = 24;

/// Ring capacity in u64 slots. Slots are reused modulo-capacity; drivers
/// stay far below this, and `combine` asserts the live window fits.
const CAP: u64 = 1 << 12;

struct CombState {
    /// Total dequeues (including not-yet-persisted ones).
    vhead: u64,
    /// Total enqueues (including not-yet-persisted ones).
    vtail: u64,
    /// DRAM mirror of the live queue window, front→back.
    mirror: VecDeque<u64>,
    /// Enqueued `(ring index, value)` pairs awaiting the next combine.
    staged: Vec<(u64, u64)>,
}

pub struct CombQueue<'p> {
    heap: &'p PmemHeap<'p>,
    meta: PAddr,
    ring: PAddr,
    bug: Option<DsBug>,
    mu: Mutex<CombState>,
    ck: CheckpointArea,
}

impl<'p> CombQueue<'p> {
    pub fn create(heap: &'p PmemHeap<'p>, bug: Option<DsBug>) -> CombQueue<'p> {
        let pool = heap.pool();
        let meta = heap.alloc_zeroed(64 + CheckpointArea::BYTES);
        let ring = heap.alloc_zeroed(CAP * 8);
        pool.write_u64(meta.offset(OFF_HEAD), 0);
        pool.write_u64(meta.offset(OFF_TAIL), 0);
        pool.write_u64(meta.offset(OFF_RING), ring.0);
        pool.write_u64(meta.offset(OFF_MAGIC), MAGIC);
        pool.persist(meta, 64 + CheckpointArea::BYTES);
        heap.set_root(meta);
        CombQueue {
            heap,
            meta,
            ring,
            bug,
            mu: Mutex::new(CombState {
                vhead: 0,
                vtail: 0,
                mirror: VecDeque::new(),
                staged: Vec::new(),
            }),
            ck: CheckpointArea::at(meta.offset(64)),
        }
    }

    pub fn recover(heap: &'p PmemHeap<'p>, bug: Option<DsBug>) -> CombQueue<'p> {
        let pool = heap.pool();
        let meta = heap.root();
        assert_eq!(pool.read_u64(meta.offset(OFF_MAGIC)), MAGIC, "comb root magic");
        let ring = PAddr(pool.read_u64(meta.offset(OFF_RING)));
        let head = pool.read_u64(meta.offset(OFF_HEAD));
        let tail = pool.read_u64(meta.offset(OFF_TAIL));
        let mut mirror = VecDeque::new();
        let mut i = head;
        while i < tail && i - head < CAP {
            mirror.push_back(pool.read_u64(ring.offset((i % CAP) * 8)));
            i += 1;
        }
        CombQueue {
            heap,
            meta,
            ring,
            bug,
            mu: Mutex::new(CombState { vhead: head, vtail: tail, mirror, staged: Vec::new() }),
            ck: CheckpointArea::at(meta.offset(64)),
        }
    }

    fn pool(&self) -> &'p PmemPool {
        self.heap.pool()
    }

    pub fn enqueue(
        &self,
        v: u64,
        t: &dyn Tracker,
        strand: Option<StrandId>,
        _client: u64,
        _seq: u64,
    ) {
        let a = Annot::new(t, strand, self.bug);
        let mut st = self.mu.lock();
        if a.sync {
            a.t.lock_acquire(a.strand, self.meta.0);
        }
        let idx = st.vtail;
        st.vtail += 1;
        st.mirror.push_back(v);
        st.staged.push((idx, v));
        if a.sync {
            a.t.lock_release(a.strand, self.meta.0);
        }
    }

    pub fn dequeue(
        &self,
        t: &dyn Tracker,
        strand: Option<StrandId>,
        _client: u64,
        _seq: u64,
    ) -> Option<u64> {
        let a = Annot::new(t, strand, self.bug);
        let mut st = self.mu.lock();
        if a.sync {
            a.t.lock_acquire(a.strand, self.meta.0);
        }
        let out = st.mirror.pop_front();
        if out.is_some() {
            st.vhead += 1;
        }
        if a.sync {
            a.t.lock_release(a.strand, self.meta.0);
        }
        out
    }

    /// Apply the buffered batch to persistent memory: write the staged
    /// slots and the head/tail indices, flush them, fence (unless the
    /// seeded variant skips it), and checkpoint. This is the batch's
    /// durability acknowledgement.
    pub fn combine(&self, t: &dyn Tracker, strand: Option<StrandId>, client: u64, seq: u64) {
        let pool = self.pool();
        let a = Annot::new(t, strand, self.bug);
        let mut st = self.mu.lock();
        if a.sync {
            a.t.lock_acquire(a.strand, self.meta.0);
        }
        assert!(st.vtail - st.vhead <= CAP, "comb ring overflow");
        for &(idx, v) in &st.staged {
            let slot = self.ring.offset((idx % CAP) * 8);
            pool.write_u64(slot, v);
            a.access(slot, 8, true);
            pool.flush(slot, 8);
        }
        pool.write_u64(self.meta.offset(OFF_HEAD), st.vhead);
        pool.write_u64(self.meta.offset(OFF_TAIL), st.vtail);
        a.access(self.meta.offset(OFF_HEAD), 16, true);
        pool.flush(self.meta.offset(OFF_HEAD), 16);
        st.staged.clear();
        let fence = self.bug != Some(DsBug::SkipCheckpointFence);
        self.ck.record(pool, &a, client, seq, CK_ADD, st.vtail, st.vhead, fence);
        if a.sync {
            a.t.lock_release(a.strand, self.meta.0);
        }
    }

    /// Front→back contents of the durable ring window. Un-combined
    /// operations are volatile by design and do not appear.
    pub fn contents(&self) -> Vec<u64> {
        let pool = self.pool();
        let head = pool.read_u64(self.meta.offset(OFF_HEAD));
        let tail = pool.read_u64(self.meta.offset(OFF_TAIL));
        let mut out = Vec::new();
        let mut i = head;
        while i < tail && i - head < CAP {
            out.push(pool.read_u64(self.ring.offset((i % CAP) * 8)));
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::NoopTracker;
    use nvm_runtime::{CrashPolicy, PmemPool, PoolConfig};

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig { size: 1 << 20, shards: 8, ..Default::default() })
    }

    #[test]
    fn batched_fifo() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let q = CombQueue::create(&h, None);
        let t = NoopTracker;
        q.enqueue(1, &t, None, 0, 1);
        q.enqueue(2, &t, None, 0, 2);
        assert_eq!(q.contents(), Vec::<u64>::new(), "nothing durable before combine");
        q.combine(&t, None, 0, 3);
        assert_eq!(q.contents(), vec![1, 2]);
        assert_eq!(q.dequeue(&t, None, 0, 4), Some(1));
        q.combine(&t, None, 0, 5);
        assert_eq!(q.contents(), vec![2]);
    }

    #[test]
    fn combined_batch_survives_pessimistic_crash() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let q = CombQueue::create(&h, None);
        let t = NoopTracker;
        q.enqueue(7, &t, None, 0, 1);
        q.enqueue(8, &t, None, 0, 2);
        q.combine(&t, None, 0, 3);
        let img = CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(8);
        let h2 = PmemHeap::open(&p2);
        let q2 = CombQueue::recover(&h2, None);
        assert_eq!(q2.contents(), vec![7, 8]);
    }

    #[test]
    fn fenceless_combine_loses_acked_batch() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let q = CombQueue::create(&h, Some(DsBug::SkipCheckpointFence));
        let t = NoopTracker;
        q.enqueue(7, &t, None, 0, 1);
        q.combine(&t, None, 0, 2);
        let img = CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(8);
        let h2 = PmemHeap::open(&p2);
        let q2 = CombQueue::recover(&h2, Some(DsBug::SkipCheckpointFence));
        assert_eq!(q2.contents(), Vec::<u64>::new(), "whole batch rolled back past the ack");
    }
}
