//! Detectable sorted linked list (Harris-style) keyed set.
//!
//! A sentinel head node holds key 0; real keys are ≥ 1 and the chain is
//! kept sorted ascending. Insertion follows the link-persist discipline:
//! the new node `{key, next}` is persisted before the predecessor's next
//! pointer publishes it, then the predecessor link is flushed and the
//! checkpoint fenced. The seeded [`DsBug::UnflushedLink`] variant skips
//! the predecessor-link flush, so an acknowledged insert can vanish on
//! crash. Removed nodes are unlinked but never reclaimed — leaking them
//! sidesteps ABA/reuse hazards without an epoch scheme.

use super::{Annot, CheckpointArea, DsBug, Shared, CK_ADD, CK_NOOP, CK_REMOVE};
use crate::tracker::Tracker;
use nvm_runtime::{PAddr, PmemHeap, PmemPool, StrandId};

const MAGIC: u64 = 0x4A21_1157_AC00_0003;

const OFF_MAGIC: u64 = 0;
const OFF_HEAD: u64 = 8;

pub struct HarrisList<'p> {
    heap: &'p PmemHeap<'p>,
    meta: PAddr,
    bug: Option<DsBug>,
    shared: Shared,
    ck: CheckpointArea,
}

impl<'p> HarrisList<'p> {
    pub fn create(heap: &'p PmemHeap<'p>, bug: Option<DsBug>) -> HarrisList<'p> {
        let pool = heap.pool();
        let meta = heap.alloc_zeroed(64 + CheckpointArea::BYTES);
        let sentinel = heap.alloc_zeroed(64);
        pool.write_u64(meta.offset(OFF_HEAD), sentinel.0);
        pool.write_u64(meta.offset(OFF_MAGIC), MAGIC);
        pool.persist(meta, 64 + CheckpointArea::BYTES);
        heap.set_root(meta);
        HarrisList {
            heap,
            meta,
            bug,
            shared: Shared::new(),
            ck: CheckpointArea::at(meta.offset(64)),
        }
    }

    pub fn recover(heap: &'p PmemHeap<'p>, bug: Option<DsBug>) -> HarrisList<'p> {
        let meta = heap.root();
        assert_eq!(heap.pool().read_u64(meta.offset(OFF_MAGIC)), MAGIC, "harris root magic");
        HarrisList {
            heap,
            meta,
            bug,
            shared: Shared::new(),
            ck: CheckpointArea::at(meta.offset(64)),
        }
    }

    fn pool(&self) -> &'p PmemPool {
        self.heap.pool()
    }

    fn sentinel(&self) -> u64 {
        self.pool().read_u64(self.meta.offset(OFF_HEAD))
    }

    /// Walk to the insertion point for `key`: returns `(pred, curr)` with
    /// `pred.key < key <= curr.key` (curr == 0 at the end of the chain).
    fn find(&self, a: &Annot<'_>, key: u64) -> (u64, u64) {
        let pool = self.pool();
        let mut pred = self.sentinel();
        let mut curr = self.shared.read(pool, a, PAddr(pred + 8));
        let mut steps = 0u32;
        while super::plausible_node(pool, curr) && steps < 1 << 16 {
            let k = pool.read_u64(PAddr(curr));
            a.access(PAddr(curr), 8, false);
            if k >= key {
                break;
            }
            pred = curr;
            curr = self.shared.read(pool, a, PAddr(curr + 8));
            steps += 1;
        }
        (pred, curr)
    }

    /// Insert `key`; returns true if newly inserted. Set semantics: a
    /// present key acknowledges as a no-op.
    pub fn insert(
        &self,
        key: u64,
        t: &dyn Tracker,
        strand: Option<StrandId>,
        client: u64,
        seq: u64,
    ) -> bool {
        assert!(key >= 1, "key 0 is the sentinel");
        let pool = self.pool();
        let a = Annot::new(t, strand, self.bug);
        loop {
            let (pred, curr) = self.find(&a, key);
            if curr != 0 && pool.read_u64(PAddr(curr)) == key {
                self.ck.record(pool, &a, client, seq, CK_NOOP, key, 0, true);
                return false;
            }
            let n = self.heap.alloc(64);
            assert!(!n.is_null(), "harris pool exhausted");
            pool.write_u64(n, key);
            pool.write_u64(n.offset(8), curr);
            a.access(n, 16, true);
            // Link-persist: node durable before reachable.
            pool.persist(n, 16);
            if self.shared.cas(pool, &a, PAddr(pred + 8), curr, n.0).is_ok() {
                if self.bug != Some(DsBug::UnflushedLink) {
                    pool.flush(PAddr(pred + 8), 8);
                }
                self.ck.record(pool, &a, client, seq, CK_ADD, key, n.0, true);
                return true;
            }
            // Lost the race: leak the node and retry from a fresh find.
        }
    }

    /// Remove `key`; returns true if it was present.
    pub fn remove(
        &self,
        key: u64,
        t: &dyn Tracker,
        strand: Option<StrandId>,
        client: u64,
        seq: u64,
    ) -> bool {
        let pool = self.pool();
        let a = Annot::new(t, strand, self.bug);
        loop {
            let (pred, curr) = self.find(&a, key);
            if curr == 0 || pool.read_u64(PAddr(curr)) != key {
                self.ck.record(pool, &a, client, seq, CK_NOOP, key, 0, true);
                return false;
            }
            let next = self.shared.read(pool, &a, PAddr(curr + 8));
            if self.shared.cas(pool, &a, PAddr(pred + 8), curr, next).is_ok() {
                pool.flush(PAddr(pred + 8), 8);
                self.ck.record(pool, &a, client, seq, CK_REMOVE, key, next, true);
                return true;
            }
        }
    }

    /// Sorted keys from the durable chain.
    pub fn contents(&self) -> Vec<u64> {
        let pool = self.pool();
        let mut out = Vec::new();
        let sentinel = self.sentinel();
        if !super::plausible_node(pool, sentinel) {
            return out;
        }
        let mut cur = pool.read_u64(PAddr(sentinel + 8));
        let mut steps = 0u32;
        while super::plausible_node(pool, cur) && steps < 1 << 16 {
            out.push(pool.read_u64(PAddr(cur)));
            cur = pool.read_u64(PAddr(cur + 8));
            steps += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::NoopTracker;
    use nvm_runtime::{CrashPolicy, PmemPool, PoolConfig};

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig { size: 1 << 20, shards: 8, ..Default::default() })
    }

    #[test]
    fn sorted_set_semantics() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let l = HarrisList::create(&h, None);
        let t = NoopTracker;
        assert!(l.insert(5, &t, None, 0, 1));
        assert!(l.insert(2, &t, None, 0, 2));
        assert!(l.insert(9, &t, None, 0, 3));
        assert!(!l.insert(5, &t, None, 0, 4), "duplicate insert is a no-op");
        assert_eq!(l.contents(), vec![2, 5, 9]);
        assert!(l.remove(5, &t, None, 0, 5));
        assert!(!l.remove(5, &t, None, 0, 6));
        assert_eq!(l.contents(), vec![2, 9]);
    }

    #[test]
    fn clean_insert_survives_pessimistic_crash() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let l = HarrisList::create(&h, None);
        let t = NoopTracker;
        l.insert(3, &t, None, 0, 1);
        l.insert(8, &t, None, 0, 2);
        let img = CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(8);
        let h2 = PmemHeap::open(&p2);
        let l2 = HarrisList::recover(&h2, None);
        assert_eq!(l2.contents(), vec![3, 8]);
    }

    #[test]
    fn unflushed_link_loses_acked_insert() {
        let p = pool();
        let h = PmemHeap::open(&p);
        let l = HarrisList::create(&h, Some(DsBug::UnflushedLink));
        let t = NoopTracker;
        l.insert(3, &t, None, 0, 1);
        let img = CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(8);
        let h2 = PmemHeap::open(&p2);
        let l2 = HarrisList::recover(&h2, Some(DsBug::UnflushedLink));
        assert_eq!(l2.contents(), Vec::<u64>::new(), "sentinel link rolled back past the ack");
    }
}
