//! PIR models of the corpus structures' persist protocols.
//!
//! Each (structure, variant) renders as a small PIR program capturing the
//! *protocol shape* of one operation — node persist, link publish,
//! checkpoint — for the static and dynamic checkers. The conventions:
//!
//! * One operation is one epoch (the checkpoint fence acks the whole op),
//!   so the **static** checker runs under the Epoch model. The batched
//!   combining queue is the motivating case: its whole batch persists
//!   under one fence, which strict-model rules would misreport as
//!   `MultipleWritesAtOnce`.
//! * The **dynamic** checker runs the same program under the Strand
//!   model. The [`DsBug::StrandRace`] variants write one array element
//!   through two different computed indices ([`pick`]-style), so their
//!   conflict is invisible to static address resolution (running the
//!   static checker with `-strand` would flag them only by treating every
//!   unknown index as overlapping — a conservative guess, not a
//!   detection) but is caught exactly by the happens-before detector.
//! * [`DsBug::DoubleApplyRecovery`] renders identically to the clean
//!   protocol: it is a recovery-logic bug with no instruction-level
//!   signature, which is why only the crash sweep catches it
//!   (see [`super::expected`]).
//!
//! The seeded line numbers are stable: `loc 20` marks the unflushed
//! publish store, `loc 30`/`31` the fence-less checkpoint flush, and
//! `loc 31`/`40` the two racing strand stores.

use super::{DsBug, DsKind};

/// Model-name flag for the static run (`deepmc check -epoch`).
pub const STATIC_MODEL: &str = "epoch";
/// Model-name flag for the dynamic run.
pub const DYNAMIC_MODEL: &str = "strand";

/// Per-kind naming for the rendered protocol.
struct Shape {
    /// The structure's metadata struct ("stack", "queue", ...).
    meta: &'static str,
    /// The published link field on the metadata struct.
    link: &'static str,
}

fn shape(kind: DsKind) -> Shape {
    match kind {
        DsKind::Treiber => Shape { meta: "stack", link: "top" },
        DsKind::MsQueue => Shape { meta: "queue", link: "tail" },
        DsKind::Harris => Shape { meta: "list", link: "head" },
        DsKind::Comb => Shape { meta: "ring_hdr", link: "tail" },
        DsKind::Clevel => Shape { meta: "dir", link: "root" },
    }
}

fn module_name(kind: DsKind, bug: Option<DsBug>) -> String {
    format!("{}_{}", kind.name(), super::variant_name(bug).replace('-', "_"))
}

/// Render the PIR model for one (structure, variant).
pub fn pir_model(kind: DsKind, bug: Option<DsBug>) -> String {
    if bug == Some(DsBug::StrandRace) {
        return strand_race_model(kind);
    }
    let fenceless = bug == Some(DsBug::SkipCheckpointFence);
    let unflushed = bug == Some(DsBug::UnflushedLink);
    let s = shape(kind);
    let mut p = String::new();
    p.push_str(&format!("module {}\n", module_name(kind, bug)));
    p.push_str(&format!("file \"{}.c\"\n", kind.name()));
    match kind {
        DsKind::Clevel => p.push_str("struct bucket { slots: [i64; 4] }\n"),
        DsKind::Comb => p.push_str("struct ring { slots: [i64; 8] }\n"),
        _ => p.push_str("struct node { val: i64, next: i64 }\n"),
    }
    p.push_str(&format!("struct {} {{ head: i64, {}: i64 }}\n", s.meta, s.link));
    p.push_str("struct ckpt { seq: i64, kind: i64, arg: i64, result: i64 }\n");
    if fenceless {
        p.push_str("struct probe { a: i64 }\n");
    }
    p.push_str("fn main() {\nentry:\n");
    p.push_str(&format!("  %m = palloc {}\n", s.meta));
    p.push_str("  %c = palloc ckpt\n");
    if fenceless {
        p.push_str("  %d = palloc probe\n");
    }
    match kind {
        DsKind::Clevel => p.push_str("  %b = palloc bucket\n"),
        DsKind::Comb => p.push_str("  %r = palloc ring\n"),
        _ => p.push_str("  %n = palloc node\n"),
    }
    p.push_str("  epoch_begin\n");
    // Prepare: persist the private payload before it is published.
    match kind {
        DsKind::Clevel => {
            // CAS-claim of the slot's key word, then the value beside it.
            p.push_str("  loc 20\n  store %b.slots[2], 7\n  store %b.slots[3], 9\n");
            if !unflushed {
                p.push_str("  flush %b.slots[2]\n  flush %b.slots[3]\n  fence\n");
            }
        }
        DsKind::Comb => {
            // The combiner's batch: staged slots plus both indices.
            p.push_str("  store %r.slots[0], 7\n  store %r.slots[1], 9\n");
            p.push_str("  store %m.head, 0\n  store %m.tail, 2\n");
            p.push_str("  flush %r.slots[0]\n  flush %r.slots[1]\n");
            p.push_str("  flush %m.head\n  flush %m.tail\n  fence\n");
        }
        _ => {
            p.push_str("  store %n.val, 7\n  store %n.next, 0\n  flush %n\n  fence\n");
            // Publish: the link store the structure's CAS performs.
            p.push_str(&format!("  loc 20\n  store %m.{}, 1\n", s.link));
            if !unflushed {
                p.push_str(&format!("  flush %m.{}\n  fence\n", s.link));
            }
        }
    }
    // Checkpoint: the detectable-operation record; its fence is the ack.
    p.push_str("  store %c.seq, 1\n  store %c.kind, 1\n  store %c.arg, 7\n");
    p.push_str("  store %c.result, 1\n");
    p.push_str("  loc 30\n  flush %c\n");
    if !fenceless {
        p.push_str("  fence\n");
    }
    p.push_str("  epoch_end\n");
    if fenceless {
        // A successor persist unit: the missing tail barrier is reported
        // where the next epoch begins.
        p.push_str("  epoch_begin\n  store %d.a, 1\n  flush %d.a\n  fence\n  epoch_end\n");
    }
    p.push_str("  ret\n}\n");
    p
}

/// Two strands persisting one array element through different computed
/// indices: statically unresolvable, dynamically a WAW dependence.
fn strand_race_model(kind: DsKind) -> String {
    let arr = match kind {
        DsKind::Treiber => "stack_cells",
        DsKind::MsQueue => "queue_cells",
        DsKind::Harris => "list_cells",
        DsKind::Comb => "ring_cells",
        DsKind::Clevel => "bucket_cells",
    };
    format!(
        r#"module {name}
file "{file}.c"
struct {arr} {{ slots: [i64; 8] }}
fn pick(%n: i64) -> i64 {{
entry:
  %m = mul %n, 3
  %i = rem %m, 8
  ret %i
}}
fn main() {{
entry:
  %x = palloc {arr}
  %i1 = call pick(8)
  %i2 = call pick(16)
  strand_begin
  loc 31
  store %x.slots[%i1], 1
  flush %x.slots[%i1]
  fence
  strand_end
  strand_begin
  loc 40
  store %x.slots[%i2], 2
  flush %x.slots[%i2]
  fence
  strand_end
  ret
}}
"#,
        name = module_name(kind, Some(DsBug::StrandRace)),
        file = kind.name(),
        arr = arr,
    )
}

#[cfg(test)]
mod tests {
    use super::super::{expected, DsKind};
    use super::*;
    use deepmc::{check_source, DeepMcConfig};
    use deepmc_models::{BugClass, PersistencyModel, Severity};

    fn class_named(name: &str) -> BugClass {
        match name {
            "UnflushedWrite" => BugClass::UnflushedWrite,
            "MissingPersistBarrier" => BugClass::MissingPersistBarrier,
            "InterStrandDependency" => BugClass::InterStrandDependency,
            other => panic!("no static class for {other}"),
        }
    }

    #[test]
    fn every_model_parses_and_verifies() {
        for kind in DsKind::ALL {
            for bug in kind.variants() {
                let src = pir_model(kind, bug);
                let m = deepmc_pir::parse(&src)
                    .unwrap_or_else(|e| panic!("{}/{:?}: {e:?}", kind.name(), bug));
                deepmc_pir::verify::verify_module(&m).expect("module verifies");
            }
        }
    }

    #[test]
    fn static_matrix_matches_ground_truth() {
        let config = DeepMcConfig::new(PersistencyModel::Epoch);
        for kind in DsKind::ALL {
            for bug in kind.variants() {
                let src = pir_model(kind, bug);
                let r = check_source(&src, &config).expect("checks");
                let violations: Vec<_> = r
                    .warnings
                    .iter()
                    .filter(|w| w.class.severity() == Severity::Violation)
                    .collect();
                let e = expected(bug);
                assert_eq!(
                    !violations.is_empty(),
                    e.static_,
                    "{}/{} static verdict: {r}",
                    kind.name(),
                    super::super::variant_name(bug)
                );
                if e.static_ {
                    let want = class_named(bug.unwrap().class_label());
                    assert!(
                        violations.iter().any(|w| w.class == want),
                        "{}/{} expected {want:?}: {r}",
                        kind.name(),
                        super::super::variant_name(bug)
                    );
                }
            }
        }
    }

    #[test]
    fn dynamic_matrix_matches_ground_truth() {
        for kind in DsKind::ALL {
            for bug in kind.variants() {
                let src = pir_model(kind, bug);
                let m = deepmc_pir::parse(&src).unwrap();
                let r = deepmc::dynamic::check_dynamic(
                    std::slice::from_ref(&m),
                    "main",
                    PersistencyModel::Strand,
                )
                .expect("runs");
                let e = expected(bug);
                assert_eq!(
                    !r.warnings.is_empty(),
                    e.dynamic,
                    "{}/{} dynamic verdict: {r}",
                    kind.name(),
                    super::super::variant_name(bug)
                );
                if e.dynamic {
                    assert!(
                        r.warnings.iter().all(|w| w.class == BugClass::InterStrandDependency),
                        "{r}"
                    );
                }
            }
        }
    }
}
