//! Workload generators: the paper's Table 6 benchmarks.
//!
//! * **memslap** — the five Memcached mixes of §5.2: 50%u/50%r, 5%u/95%r,
//!   100%r, 5%insert/95%r, 50%rmw/50%r (1M transactions, 4 clients).
//! * **redis-benchmark** — the default Redis suite (SET, GET, INCR,
//!   LPUSH, LPOP subset; 1M transactions, 50 clients).
//! * **YCSB** — workloads A–F for NStore (1M transactions, 4 clients).
//!
//! Keys are drawn from a scrambled-zipfian-ish power-of-two mix that keeps
//! generation cheap (generation cost must not mask instrumentation
//! overhead).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Operation kinds common to all three applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Read,
    Update,
    Insert,
    ReadModifyWrite,
    Scan,
}

/// An operation mix, in percent (summing to 100).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    pub name: &'static str,
    pub read: u32,
    pub update: u32,
    pub insert: u32,
    pub rmw: u32,
    pub scan: u32,
}

impl WorkloadSpec {
    const fn new(
        name: &'static str,
        read: u32,
        update: u32,
        insert: u32,
        rmw: u32,
        scan: u32,
    ) -> WorkloadSpec {
        WorkloadSpec { name, read, update, insert, rmw, scan }
    }

    /// Percentage of operations that write persistent data.
    pub fn write_fraction(&self) -> f64 {
        (self.update + self.insert + self.rmw) as f64 / 100.0
    }
}

/// The five memslap mixes of §5.2, in Figure-12 order.
pub fn memslap_workloads() -> [WorkloadSpec; 5] {
    [
        WorkloadSpec::new("50%update/50%read", 50, 50, 0, 0, 0),
        WorkloadSpec::new("5%update/95%read", 95, 5, 0, 0, 0),
        WorkloadSpec::new("100%read", 100, 0, 0, 0, 0),
        WorkloadSpec::new("5%insert/95%read", 95, 0, 5, 0, 0),
        WorkloadSpec::new("50%rmw/50%read", 50, 0, 0, 50, 0),
    ]
}

/// The default redis-benchmark command suite, expressed as single-command
/// mixes (redis-benchmark measures each command separately).
pub fn redis_benchmark_suite() -> [WorkloadSpec; 5] {
    [
        WorkloadSpec::new("SET", 0, 100, 0, 0, 0),
        WorkloadSpec::new("GET", 100, 0, 0, 0, 0),
        WorkloadSpec::new("INCR", 0, 0, 0, 100, 0),
        WorkloadSpec::new("LPUSH", 0, 0, 100, 0, 0),
        WorkloadSpec::new("LPOP", 0, 50, 0, 50, 0),
    ]
}

/// YCSB core workloads A–F.
pub fn ycsb_workloads() -> [WorkloadSpec; 6] {
    [
        WorkloadSpec::new("YCSB-A", 50, 50, 0, 0, 0),
        WorkloadSpec::new("YCSB-B", 95, 5, 0, 0, 0),
        WorkloadSpec::new("YCSB-C", 100, 0, 0, 0, 0),
        WorkloadSpec::new("YCSB-D", 95, 0, 5, 0, 0),
        WorkloadSpec::new("YCSB-E", 0, 0, 5, 0, 95),
        WorkloadSpec::new("YCSB-F", 50, 0, 0, 50, 0),
    ]
}

/// A per-client operation stream.
pub struct OpStream {
    rng: StdRng,
    spec: WorkloadSpec,
    keyspace: u64,
    next_insert: u64,
}

impl OpStream {
    /// Create client `id`'s stream over `keyspace` preloaded keys.
    pub fn new(spec: WorkloadSpec, keyspace: u64, id: u64) -> OpStream {
        OpStream {
            rng: StdRng::seed_from_u64(0xDEE9_AC00 ^ id),
            spec,
            keyspace: keyspace.max(1),
            next_insert: keyspace + id * (1 << 32),
        }
    }

    /// Next (kind, key).
    pub fn next_op(&mut self) -> (OpKind, u64) {
        let r = self.rng.gen_range(0..100u32);
        let s = &self.spec;
        let kind = if r < s.read {
            OpKind::Read
        } else if r < s.read + s.update {
            OpKind::Update
        } else if r < s.read + s.update + s.insert {
            OpKind::Insert
        } else if r < s.read + s.update + s.insert + s.rmw {
            OpKind::ReadModifyWrite
        } else {
            OpKind::Scan
        };
        let key = match kind {
            OpKind::Insert => {
                self.next_insert += 1;
                self.next_insert
            }
            _ => self.rng.gen_range(0..self.keyspace),
        };
        (kind, key)
    }
}

/// Result of one measured run.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    pub ops: u64,
    pub elapsed: std::time::Duration,
}

impl Throughput {
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Relative slowdown of `self` (instrumented) vs `baseline`:
    /// `1 - tps_self / tps_baseline`, in percent.
    pub fn overhead_vs(&self, baseline: &Throughput) -> f64 {
        (1.0 - self.ops_per_sec() / baseline.ops_per_sec()) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_sum_to_100() {
        for spec in memslap_workloads()
            .iter()
            .chain(redis_benchmark_suite().iter())
            .chain(ycsb_workloads().iter())
        {
            assert_eq!(
                spec.read + spec.update + spec.insert + spec.rmw + spec.scan,
                100,
                "{} mix must sum to 100",
                spec.name
            );
        }
    }

    #[test]
    fn stream_respects_mix() {
        let spec = WorkloadSpec::new("t", 90, 10, 0, 0, 0);
        let mut s = OpStream::new(spec, 1000, 0);
        let mut reads = 0;
        let n = 20_000;
        for _ in 0..n {
            if s.next_op().0 == OpKind::Read {
                reads += 1;
            }
        }
        let frac = reads as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "read fraction {frac} ≉ 0.9");
    }

    #[test]
    fn streams_are_deterministic_per_client() {
        let spec = memslap_workloads()[0];
        let mut a = OpStream::new(spec, 100, 3);
        let mut b = OpStream::new(spec, 100, 3);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn inserts_use_fresh_keys() {
        let spec = WorkloadSpec::new("ins", 0, 0, 100, 0, 0);
        let mut s = OpStream::new(spec, 50, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let (kind, key) = s.next_op();
            assert_eq!(kind, OpKind::Insert);
            assert!(key >= 50, "insert keys outside the preloaded range");
            assert!(seen.insert(key), "insert keys never repeat");
        }
    }

    #[test]
    fn write_fraction() {
        assert_eq!(memslap_workloads()[2].write_fraction(), 0.0);
        assert_eq!(memslap_workloads()[0].write_fraction(), 0.5);
    }
}

/// One scripted crash-sweep operation. `Barrier` closes an epoch: only
/// Memcached acts on it (its durability acks are deferred to the next
/// barrier); the strict apps ack every op as it completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptOp {
    Set { key: u64, val: u64 },
    Del { key: u64 },
    Barrier,
}

/// Deterministic sweep script: mostly sets over a small keyspace,
/// occasional deletes, barriers every 6 ops. Everything derives from
/// `seed`, so the same seed replays the same operation history.
pub fn sweep_script(seed: u64, steps: u64) -> Vec<ScriptOp> {
    let keyspace = 16;
    let mut ops = Vec::new();
    for i in 0..steps {
        if i > 0 && i % 6 == 0 {
            ops.push(ScriptOp::Barrier);
        }
        let r = crate::recovery::checksum(seed, &[0xC0FFEE, i]);
        let key = 1 + r % keyspace;
        if r % 11 == 10 {
            ops.push(ScriptOp::Del { key });
        } else {
            ops.push(ScriptOp::Set { key, val: crate::recovery::checksum(seed, &[0xBEEF, i]) | 1 });
        }
    }
    ops
}

/// Pre-crash operation history recorded by the workload driver: every
/// write with its script position, the last *acknowledged* update per key
/// (with its ack position), and which keys' latest acked update went
/// through a deliberately buggy code path. Post-recovery oracles compare
/// the recovered read-back against this record.
#[derive(Debug, Default, Clone)]
pub struct OpHistory {
    /// key -> every (script position, value) written, in program order.
    writes: std::collections::HashMap<u64, Vec<(u64, u64)>>,
    /// key -> (position at which durability was acknowledged, value).
    acked: std::collections::HashMap<u64, (u64, u64)>,
    /// Keys whose latest acked update used the injected-bug path.
    buggy: std::collections::HashSet<u64>,
}

impl OpHistory {
    /// Record a write of `val` to `key` at script position `pos`.
    pub fn record_write(&mut self, pos: u64, key: u64, val: u64) {
        self.writes.entry(key).or_default().push((pos, val));
    }

    /// Acknowledge `key = val` as durable at script position `pos`.
    pub fn ack(&mut self, key: u64, pos: u64, val: u64, buggy: bool) {
        self.acked.insert(key, (pos, val));
        if buggy {
            self.buggy.insert(key);
        } else {
            self.buggy.remove(&key);
        }
    }

    /// Withdraw the durability acknowledgement for `key` (a delete).
    pub fn unack(&mut self, key: u64) {
        self.acked.remove(&key);
        self.buggy.remove(&key);
    }

    /// Every key that was ever written.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.writes.keys().copied()
    }

    /// Was `val` ever written to `key`?
    pub fn was_written(&self, key: u64, val: u64) -> bool {
        self.writes.get(&key).is_some_and(|h| h.iter().any(|&(_, v)| v == val))
    }

    /// Was `val` written to `key` at script position `pos` or later?
    /// (A recovered value older than the last acked update is a rollback
    /// past an acknowledgement; one at or after it is legal eviction
    /// nondeterminism.)
    pub fn written_at_or_after(&self, key: u64, pos: u64, val: u64) -> bool {
        self.writes.get(&key).is_some_and(|h| h.iter().any(|&(p, v)| p >= pos && v == val))
    }

    /// The last acknowledged (position, value) per key.
    pub fn acked(&self) -> &std::collections::HashMap<u64, (u64, u64)> {
        &self.acked
    }

    /// Is `key`'s latest acked update attributable to the injected bug?
    pub fn is_buggy(&self, key: u64) -> bool {
        self.buggy.contains(&key)
    }

    /// Did any key's latest acked update use the buggy path?
    pub fn any_buggy(&self) -> bool {
        !self.buggy.is_empty()
    }

    /// Order-independent digest of the oracle-relevant state: the acked
    /// map plus the buggy-key set. Two crash points with equal pool-image
    /// hashes *and* equal history digests validate identically, so the
    /// pruned explorer folds this into its equivalence-class key.
    pub fn digest(&self) -> u64 {
        let mut acked: Vec<(u64, u64, u64)> =
            self.acked.iter().map(|(&k, &(p, v))| (k, p, v)).collect();
        acked.sort_unstable();
        let mut buggy: Vec<u64> = self.buggy.iter().copied().collect();
        buggy.sort_unstable();
        let mut stream = Vec::with_capacity(acked.len() * 3 + buggy.len() + 1);
        for (k, p, v) in acked {
            stream.extend_from_slice(&[k, p, v]);
        }
        stream.push(0xB06_D16E57);
        stream.extend_from_slice(&buggy);
        crate::recovery::checksum(0xD16E57, &stream)
    }
}

#[cfg(test)]
mod history_tests {
    use super::*;

    #[test]
    fn sweep_script_is_deterministic_and_barriered() {
        let a = sweep_script(3, 24);
        assert_eq!(a, sweep_script(3, 24));
        assert!(a.iter().any(|op| matches!(op, ScriptOp::Barrier)));
        assert!(a.len() > 24, "barriers ride along with the steps");
        assert_ne!(a, sweep_script(4, 24), "seed changes the script");
    }

    #[test]
    fn history_tracks_acks_positions_and_bug_paths() {
        let mut h = OpHistory::default();
        h.record_write(0, 1, 10);
        h.record_write(2, 1, 20);
        h.ack(1, 2, 20, false);
        assert!(h.was_written(1, 10) && h.was_written(1, 20));
        assert!(!h.was_written(1, 30));
        assert!(h.written_at_or_after(1, 2, 20));
        assert!(!h.written_at_or_after(1, 1, 10), "value 10 was only written before position 1");
        assert_eq!(h.acked().get(&1), Some(&(2, 20)));
        assert!(!h.any_buggy());

        h.ack(1, 3, 30, true);
        assert!(h.is_buggy(1) && h.any_buggy());
        h.ack(1, 4, 40, false);
        assert!(!h.is_buggy(1), "a clean ack clears the bug mark");
        h.unack(1);
        assert!(h.acked().is_empty());
    }

    #[test]
    fn digest_is_order_independent_and_state_sensitive() {
        let mut a = OpHistory::default();
        a.ack(1, 5, 10, false);
        a.ack(2, 6, 20, true);
        let mut b = OpHistory::default();
        b.ack(2, 6, 20, true);
        b.ack(1, 5, 10, false);
        assert_eq!(a.digest(), b.digest(), "insertion order must not matter");
        // Writes are deliberately excluded from the digest (they only grow
        // monotonically and the explorer handles them separately).
        b.record_write(9, 9, 9);
        assert_eq!(a.digest(), b.digest());
        b.ack(1, 7, 10, false);
        assert_ne!(a.digest(), b.digest(), "ack position is part of the digest");
    }
}

/// Per-client context handed through the benchmark driver.
pub struct ClientCtx<'t> {
    pub id: usize,
    pub tracker: &'t dyn crate::tracker::Tracker,
    pub strand: Option<nvm_runtime::StrandId>,
}

/// An application measurable by [`run_bench`].
pub trait BenchApp: Sync {
    /// Populate `keyspace` keys before measurement.
    fn preload(&self, keyspace: u64);
    /// Execute one client operation.
    fn client_op(&self, ctx: &ClientCtx<'_>, kind: OpKind, key: u64);
    /// Called after every `batch` operations of a client (epoch close,
    /// etc.).
    fn batch_end(&self, _ctx: &ClientCtx<'_>) {}
}

/// Run `clients` threads, each executing `ops_per_client` operations of
/// `spec` against `app`, with per-client instrumentation regions.
pub fn run_bench(
    app: &(impl BenchApp + ?Sized),
    spec: WorkloadSpec,
    clients: usize,
    ops_per_client: u64,
    keyspace: u64,
    tracker: &dyn crate::tracker::Tracker,
    batch: u64,
) -> Throughput {
    run_bench_with(
        app,
        spec,
        clients,
        ops_per_client,
        keyspace,
        tracker,
        batch,
        std::time::Duration::ZERO,
    )
}

/// [`run_bench`] with a per-request processing cost: real servers spend
/// microseconds per request on protocol parsing, dispatch, and networking
/// (the memslap/redis-benchmark/YCSB clients of Table 6 measure whole
/// requests); `request_cost` models that work so instrumentation overhead
/// is measured against a realistic denominator.
#[allow(clippy::too_many_arguments)]
pub fn run_bench_with(
    app: &(impl BenchApp + ?Sized),
    spec: WorkloadSpec,
    clients: usize,
    ops_per_client: u64,
    keyspace: u64,
    tracker: &dyn crate::tracker::Tracker,
    batch: u64,
    request_cost: std::time::Duration,
) -> Throughput {
    app.preload(keyspace);
    let start = std::time::Instant::now();
    crossbeam::scope(|s| {
        for id in 0..clients {
            s.spawn(move |_| {
                let strand = tracker.region_begin();
                let ctx = ClientCtx { id, tracker, strand };
                let mut stream = OpStream::new(spec, keyspace, id as u64);
                let mut in_batch = 0u64;
                for _ in 0..ops_per_client {
                    let (kind, key) = stream.next_op();
                    if request_cost > std::time::Duration::ZERO {
                        let t0 = std::time::Instant::now();
                        while t0.elapsed() < request_cost {
                            std::hint::spin_loop();
                        }
                    }
                    app.client_op(&ctx, kind, key);
                    in_batch += 1;
                    if in_batch >= batch {
                        app.batch_end(&ctx);
                        in_batch = 0;
                    }
                }
                if in_batch > 0 {
                    app.batch_end(&ctx);
                }
                if let Some(strand) = strand {
                    tracker.region_end(strand);
                }
            });
        }
    })
    .expect("bench clients must not panic");
    Throughput { ops: clients as u64 * ops_per_client, elapsed: start.elapsed() }
}

/// Configuration for the multi-strand concurrent-DS driver ([`ds_driver`]).
#[derive(Debug, Clone, Copy)]
pub struct DsDriverSpec {
    pub kind: crate::ds::DsKind,
    pub bug: Option<crate::ds::DsBug>,
    /// Producer/consumer strands (capped by the per-client checkpoint
    /// slots).
    pub threads: usize,
    pub ops_per_thread: u64,
    /// Percentage of operations that are adds (the rest remove).
    pub add_pct: u8,
    /// Contention knob: operations draw keys/values from `1..=key_range`,
    /// so a smaller range means more CAS conflicts on the same words.
    pub key_range: u64,
    pub seed: u64,
}

impl DsDriverSpec {
    pub fn new(kind: crate::ds::DsKind, bug: Option<crate::ds::DsBug>) -> DsDriverSpec {
        DsDriverSpec {
            kind,
            bug,
            threads: 4,
            ops_per_thread: 64,
            add_pct: 70,
            key_range: 8,
            seed: 0xD5,
        }
    }
}

/// Run `threads` concurrent strands against one structure instance, each
/// thread a tracker region executing a deterministic per-seed op stream
/// (thread interleaving varies; each thread's operations do not). Returns
/// the measured throughput; strand WAW/RAW dependences land in `tracker`.
pub fn ds_driver(spec: &DsDriverSpec, tracker: &dyn crate::tracker::Tracker) -> Throughput {
    use rand::{Rng, SeedableRng};
    assert!(spec.threads as u64 <= crate::ds::CHECKPOINT_SLOTS, "one checkpoint slot per client");
    let pool = nvm_runtime::PmemPool::new(nvm_runtime::PoolConfig {
        size: 1 << 22,
        shards: 8,
        ..Default::default()
    });
    let heap = nvm_runtime::PmemHeap::open(&pool);
    let inst = crate::ds::DsInstance::create(spec.kind, spec.bug, &heap);
    let batch = spec.kind.batch();
    let start = std::time::Instant::now();
    crossbeam::scope(|s| {
        for id in 0..spec.threads {
            let inst = &inst;
            s.spawn(move |_| {
                let strand = tracker.region_begin();
                let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed ^ (id as u64) << 32);
                for i in 0..spec.ops_per_thread {
                    let key = 1 + rng.gen_range(0..spec.key_range);
                    let op = if rng.gen_range(0..100u8) < spec.add_pct {
                        crate::ds::DsOp::Add(key)
                    } else {
                        crate::ds::DsOp::Remove(key)
                    };
                    let seq = i + 1;
                    inst.apply(op, tracker, strand, id as u64, seq);
                    if seq.is_multiple_of(batch) {
                        inst.batch_end(tracker, strand, id as u64, seq);
                    }
                }
                if !spec.ops_per_thread.is_multiple_of(batch) {
                    inst.batch_end(tracker, strand, id as u64, spec.ops_per_thread);
                }
                if let Some(strand) = strand {
                    tracker.region_end(strand);
                }
            });
        }
    })
    .expect("ds clients must not panic");
    Throughput { ops: spec.threads as u64 * spec.ops_per_thread, elapsed: start.elapsed() }
}

#[cfg(test)]
mod ds_driver_tests {
    use super::*;
    use crate::ds::{DsBug, DsKind};
    use crate::tracker::DeepMcTracker;

    #[test]
    fn clean_variants_report_no_strand_dependences() {
        for kind in DsKind::ALL {
            let t = DeepMcTracker::new();
            let out = ds_driver(&DsDriverSpec::new(kind, None), &t);
            assert_eq!(out.ops, 4 * 64);
            assert!(
                t.reports().is_empty(),
                "{}: clean run must be race-free, got {:?}",
                kind.name(),
                t.reports()
            );
        }
    }

    #[test]
    fn strand_race_variants_are_caught_by_the_detector() {
        for kind in DsKind::ALL {
            let t = DeepMcTracker::new();
            let mut spec = DsDriverSpec::new(kind, Some(DsBug::StrandRace));
            // High contention over two keys makes the unsynchronized
            // persists collide quickly.
            spec.key_range = 2;
            ds_driver(&spec, &t);
            assert!(!t.reports().is_empty(), "{}: unannotated persists must race", kind.name());
        }
    }
}
