//! Mini-NStore: the low-level transactional relational store of the
//! paper's evaluation (nstore uses hand-rolled persistence primitives, no
//! framework). Each YCSB transaction is write-ahead logged: the WAL entry
//! is persisted, the tuple is updated in place and persisted, then the WAL
//! entry is durably marked committed — three fences per write transaction.

use crate::recovery::{checksum, RecoveryReport, NSTORE_WAL_SALT};
use crate::tracker::{NoopTracker, Tracker};
use crate::workloads::{BenchApp, ClientCtx, OpKind};
use nvm_runtime::{PAddr, PmemHeap, PmemPool, StrandId};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Tuple: key(8) | 4 columns (32) | version(8) = 48 bytes, one line.
pub const TUPLE_BYTES: u64 = 64;
/// WAL entry: state(8) | key(8) | col0..col3 (32) | sum(8) = 56 bytes,
/// one line. `sum` covers the payload (key, cols) only, so the later
/// commit-mark store leaves it valid.
const WAL_ENTRY: u64 = 64;
const WAL_LOCK: u64 = u64::MAX - 1;

fn wal_sum(key: u64, cols: [u64; 4]) -> u64 {
    checksum(NSTORE_WAL_SALT, &[key, cols[0], cols[1], cols[2], cols[3]])
}

struct Wal {
    base: PAddr,
    capacity: u64,
    cursor: u64,
}

/// The application.
pub struct NStore<'p> {
    pool: &'p PmemPool,
    heap: &'p PmemHeap<'p>,
    index: Vec<Mutex<HashMap<u64, PAddr>>>,
    mask: u64,
    wal: Mutex<Wal>,
}

impl<'p> NStore<'p> {
    pub fn new(
        pool: &'p PmemPool,
        heap: &'p PmemHeap<'p>,
        shards: usize,
        wal_capacity: u64,
    ) -> NStore<'p> {
        let n = shards.max(1).next_power_of_two();
        let base = heap.alloc(wal_capacity);
        assert!(!base.is_null(), "pool too small for the WAL");
        pool.write(base, &[0u8; WAL_ENTRY as usize]);
        pool.persist(base, WAL_ENTRY);
        heap.set_root(base);
        NStore {
            pool,
            heap,
            index: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n as u64 - 1,
            wal: Mutex::new(Wal { base, capacity: wal_capacity, cursor: 0 }),
        }
    }

    /// Post-crash recovery: redo the committed WAL entries into a fresh
    /// table. ACTIVE entries (state 1) were never acknowledged — their
    /// tuples may be torn — and are discarded, which is exactly the
    /// guarantee the commit mark exists to give. Committed entries whose
    /// payload checksum fails (torn append that still got its commit mark
    /// — only possible with fault injection or an injected bug) and
    /// entries on poisoned lines are likewise discarded, with counts.
    pub fn recover(
        pool: &'p PmemPool,
        heap: &'p PmemHeap<'p>,
        shards: usize,
        wal_capacity: u64,
    ) -> (NStore<'p>, RecoveryReport) {
        let base = heap.root();
        assert!(!base.is_null(), "no WAL root: pool was never an NStore pool");
        let n = shards.max(1).next_power_of_two();
        let db = NStore {
            pool,
            heap,
            index: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n as u64 - 1,
            wal: Mutex::new(Wal { base, capacity: wal_capacity, cursor: 0 }),
        };
        let mut report = RecoveryReport::default();
        let mut slot = 0;
        let mut last_used = 0;
        while slot + WAL_ENTRY <= wal_capacity {
            let at = base.offset(slot);
            let mut bytes = [0u8; 56];
            match pool.read_reliable(at, &mut bytes, 2) {
                Err(_) => {
                    report.scanned += 1;
                    report.poisoned_dropped += 1;
                    // Scrub so later passes (and the ring cursor) see a
                    // clean slot.
                    pool.write(at, &[0u8; WAL_ENTRY as usize]);
                    pool.persist(at, WAL_ENTRY);
                }
                Ok(()) => {
                    let word =
                        |i: usize| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap());
                    let state = word(0);
                    if state == 2 {
                        report.scanned += 1;
                        let key = word(1);
                        let cols = [word(2), word(3), word(4), word(5)];
                        if word(6) == wal_sum(key, cols) {
                            // COMMITTED and intact: redo the tuple.
                            report.adopted += 1;
                            db.put(key, cols, &NoopTracker, None);
                        } else {
                            report.torn_dropped += 1;
                            pool.write(at, &[0u8; WAL_ENTRY as usize]);
                            pool.persist(at, WAL_ENTRY);
                        }
                    } else if state != 0 {
                        report.scanned += 1;
                    }
                    if state != 0 {
                        last_used = slot + WAL_ENTRY;
                    }
                }
            }
            slot += WAL_ENTRY;
        }
        db.wal.lock().cursor = last_used % wal_capacity;
        (db, report)
    }

    fn lock_id(&self, key: u64) -> u64 {
        key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56 & self.mask
    }

    /// Durable WAL append; returns the entry address for the commit mark.
    fn wal_append(
        &self,
        key: u64,
        cols: [u64; 4],
        t: &dyn Tracker,
        strand: Option<StrandId>,
    ) -> PAddr {
        let mut wal = self.wal.lock();
        if t.enabled() {
            t.lock_acquire(strand, WAL_LOCK);
        }
        if wal.cursor + WAL_ENTRY > wal.capacity {
            wal.cursor = 0;
        }
        let at = wal.base.offset(wal.cursor);
        wal.cursor += WAL_ENTRY;
        let mut bytes = [0u8; 56];
        bytes[..8].copy_from_slice(&1u64.to_le_bytes()); // state: ACTIVE
        bytes[8..16].copy_from_slice(&key.to_le_bytes());
        for (i, c) in cols.iter().enumerate() {
            bytes[16 + i * 8..24 + i * 8].copy_from_slice(&c.to_le_bytes());
        }
        bytes[48..56].copy_from_slice(&wal_sum(key, cols).to_le_bytes());
        self.pool.write(at, &bytes);
        if t.enabled() {
            t.access(strand, at.0, 56, true);
        }
        self.pool.persist(at, 56);
        if t.enabled() {
            t.lock_release(strand, WAL_LOCK);
        }
        at
    }

    /// Durably mark a WAL entry committed.
    fn wal_commit(&self, entry: PAddr, t: &dyn Tracker, strand: Option<StrandId>, persist: bool) {
        if t.enabled() {
            t.lock_acquire(strand, WAL_LOCK);
        }
        self.pool.write_u64(entry, 2); // state: COMMITTED
        if t.enabled() {
            t.access(strand, entry.0, 8, true);
        }
        if persist {
            self.pool.persist(entry, 8);
        }
        if t.enabled() {
            t.lock_release(strand, WAL_LOCK);
        }
    }

    /// Transactionally insert or update a tuple.
    pub fn put(&self, key: u64, cols: [u64; 4], t: &dyn Tracker, strand: Option<StrandId>) {
        self.put_inner(key, cols, t, strand, true);
    }

    /// BUG INJECTION: the commit mark is written but never flushed — the
    /// missing-persist pattern of the paper's Table 2 bugs. An
    /// acknowledged transaction can vanish at the crash (the mark stays
    /// cached), or — worse under unpredictable eviction — the mark can
    /// persist while an earlier torn payload does not. The crash sweep
    /// uses this as ground truth for violation attribution.
    pub fn put_skip_commit_persist(
        &self,
        key: u64,
        cols: [u64; 4],
        t: &dyn Tracker,
        strand: Option<StrandId>,
    ) {
        self.put_inner(key, cols, t, strand, false);
    }

    fn put_inner(
        &self,
        key: u64,
        cols: [u64; 4],
        t: &dyn Tracker,
        strand: Option<StrandId>,
        persist_commit: bool,
    ) {
        let entry = self.wal_append(key, cols, t, strand);
        let lock = self.lock_id(key);
        let mut shard = self.index[lock as usize].lock();
        if t.enabled() {
            t.lock_acquire(strand, lock);
        }
        let tuple = match shard.get(&key) {
            Some(&a) => a,
            None => {
                let a = self.heap.alloc(TUPLE_BYTES);
                assert!(!a.is_null(), "pool exhausted");
                shard.insert(key, a);
                a
            }
        };
        let mut bytes = [0u8; 48];
        bytes[..8].copy_from_slice(&key.to_le_bytes());
        for (i, c) in cols.iter().enumerate() {
            bytes[8 + i * 8..16 + i * 8].copy_from_slice(&c.to_le_bytes());
        }
        let ver = self.pool.read_u64(tuple.offset(40));
        bytes[40..48].copy_from_slice(&(ver + 1).to_le_bytes());
        self.pool.write(tuple, &bytes);
        if t.enabled() {
            t.access(strand, tuple.0, 48, true);
        }
        self.pool.persist(tuple, 48);
        if t.enabled() {
            t.lock_release(strand, lock);
        }
        drop(shard);
        self.wal_commit(entry, t, strand, persist_commit);
    }

    /// Read one column of a tuple. Reads are not instrumented (§4.4).
    pub fn read(
        &self,
        key: u64,
        col: usize,
        _t: &dyn Tracker,
        _strand: Option<StrandId>,
    ) -> Option<u64> {
        let lock = self.lock_id(key);
        let shard = self.index[lock as usize].lock();
        shard.get(&key).map(|&a| self.pool.read_u64(a.offset(8 + (col as u64 % 4) * 8)))
    }

    /// YCSB-E short scan: read `len` consecutive keys' first columns.
    pub fn scan(&self, start: u64, len: u64, t: &dyn Tracker, strand: Option<StrandId>) -> u64 {
        let mut acc: u64 = 0;
        for k in start..start + len {
            if let Some(v) = self.read(k, 0, t, strand) {
                acc = acc.wrapping_add(v);
            }
        }
        acc
    }

    /// Tuples stored.
    pub fn len(&self) -> usize {
        self.index.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl BenchApp for NStore<'_> {
    fn preload(&self, keyspace: u64) {
        for k in 0..keyspace {
            self.put(k, [k, k + 1, k + 2, k + 3], &NoopTracker, None);
        }
    }

    fn client_op(&self, ctx: &ClientCtx<'_>, kind: OpKind, key: u64) {
        match kind {
            OpKind::Read => {
                self.read(key, 0, ctx.tracker, ctx.strand);
            }
            OpKind::Scan => {
                self.scan(key, 4, ctx.tracker, ctx.strand);
            }
            OpKind::Update | OpKind::Insert => {
                self.put(key, [key, key, key, key], ctx.tracker, ctx.strand);
            }
            OpKind::ReadModifyWrite => {
                let v: u64 = self.read(key, 0, ctx.tracker, ctx.strand).unwrap_or(0);
                self.put(key, [v.wrapping_add(1), v, v, v], ctx.tracker, ctx.strand);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::DeepMcTracker;
    use crate::workloads::{run_bench, ycsb_workloads};
    use nvm_runtime::{CrashPolicy, PoolConfig};

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig { size: 64 << 20, shards: 16, ..Default::default() })
    }

    #[test]
    fn put_read_roundtrip() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let db = NStore::new(&p, &heap, 8, 1 << 20);
        db.put(7, [70, 71, 72, 73], &NoopTracker, None);
        assert_eq!(db.read(7, 0, &NoopTracker, None), Some(70));
        assert_eq!(db.read(7, 3, &NoopTracker, None), Some(73));
        assert_eq!(db.read(8, 0, &NoopTracker, None), None);
    }

    #[test]
    fn puts_are_durable() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let db = NStore::new(&p, &heap, 8, 1 << 20);
        db.put(1, [10, 11, 12, 13], &NoopTracker, None);
        assert_eq!(p.non_durable_lines(), 0);
        let img = CrashPolicy::Pessimistic.apply(&p);
        // WAL base is the first heap allocation: its first entry must be
        // committed (state 2) with the payload.
        let wal_base = PAddr(64);
        assert_eq!(img.read_u64(wal_base), 2, "commit mark durable");
        assert_eq!(img.read_u64(wal_base.offset(8)), 1, "logged key durable");
    }

    #[test]
    fn recovery_redoes_committed_transactions_only() {
        let p = pool();
        {
            let heap = PmemHeap::open(&p);
            let db = NStore::new(&p, &heap, 8, 1 << 20);
            db.put(1, [10, 11, 12, 13], &NoopTracker, None);
            db.put(2, [20, 21, 22, 23], &NoopTracker, None);
            // A torn transaction: WAL appended (ACTIVE) but never
            // committed.
            db.wal_append(3, [30, 31, 32, 33], &NoopTracker, None);
        }
        let img = CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(8);
        let heap2 = PmemHeap::open(&p2);
        let (db2, report) = NStore::recover(&p2, &heap2, 8, 1 << 20);
        assert_eq!(report.adopted, 2);
        assert_eq!(report.scanned, 3, "the ACTIVE entry was seen but discarded");
        assert_eq!(report.dropped(), 0);
        assert_eq!(db2.read(1, 0, &NoopTracker, None), Some(10));
        assert_eq!(db2.read(2, 3, &NoopTracker, None), Some(23));
        assert_eq!(db2.read(3, 0, &NoopTracker, None), None, "uncommitted transaction discarded");
        // The recovered store accepts new transactions.
        db2.put(4, [40, 41, 42, 43], &NoopTracker, None);
        assert_eq!(db2.read(4, 1, &NoopTracker, None), Some(41));
    }

    #[test]
    fn injected_commit_bug_loses_acknowledged_transactions() {
        let p = pool();
        {
            let heap = PmemHeap::open(&p);
            let db = NStore::new(&p, &heap, 8, 1 << 20);
            db.put(1, [10, 11, 12, 13], &NoopTracker, None);
            // Buggy: acknowledged, but the commit mark is never flushed.
            db.put_skip_commit_persist(2, [20, 21, 22, 23], &NoopTracker, None);
        }
        // Pessimistic crash: the un-flushed mark reverts to ACTIVE.
        let img = CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(8);
        let heap2 = PmemHeap::open(&p2);
        let (db2, _) = NStore::recover(&p2, &heap2, 8, 1 << 20);
        assert_eq!(db2.read(1, 0, &NoopTracker, None), Some(10));
        assert_eq!(
            db2.read(2, 0, &NoopTracker, None),
            None,
            "acknowledged transaction lost — the injected bug's signature"
        );
    }

    #[test]
    fn ycsb_suite_runs() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let db = NStore::new(&p, &heap, 16, 8 << 20);
        for spec in ycsb_workloads() {
            let tp = run_bench(&db, spec, 4, 300, 256, &NoopTracker, u64::MAX);
            assert_eq!(tp.ops, 1_200, "{}", spec.name);
        }
    }

    #[test]
    fn instrumented_ycsb_reports_nothing_on_correct_app() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let db = NStore::new(&p, &heap, 16, 8 << 20);
        let tracker = DeepMcTracker::new();
        run_bench(&db, ycsb_workloads()[0], 4, 300, 256, &tracker, u64::MAX);
        assert!(tracker.reports().is_empty(), "{:?}", tracker.reports().first());
        assert!(tracker.shadow_cells() > 0);
    }
}
