//! Synthetic PIR generation for the Table 9 compile-time experiment.
//!
//! The paper compiles Memcached, Redis, and NStore with and without
//! DeepMC's static analysis and reports the added seconds (Table 9). Here
//! the "compilation units" are generated PIR programs sized after the
//! relative code sizes of the three applications (Redis ≈ 6.5× Memcached,
//! NStore ≈ 3.75×), exercising the same pipeline stages: parsing
//! (baseline) and CFG + call graph + DSA + trace collection + rule
//! checking (DeepMC).
//!
//! Generated functions follow correct strict-persistency patterns with a
//! controlled density of branches, loops, transactions, and calls into
//! earlier functions, so analysis cost is dominated by realistic structure
//! rather than pathological path explosion.

use deepmc_pir::{BinOp, FuncAttr, Module, ModuleBuilder, Operand, Place, Ty};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size preset for one application (function count per module and module
/// count, chosen to mirror the paper's relative code sizes).
#[derive(Debug, Clone, Copy)]
pub struct AppSize {
    pub name: &'static str,
    pub modules: usize,
    pub funcs_per_module: usize,
}

/// The three Table-9 applications.
pub fn table9_apps() -> [AppSize; 3] {
    [
        AppSize { name: "Memcached", modules: 4, funcs_per_module: 24 },
        AppSize { name: "Redis", modules: 16, funcs_per_module: 39 },
        AppSize { name: "NStore", modules: 10, funcs_per_module: 36 },
    ]
}

/// Generate one synthetic module.
pub fn generate_module(app: &str, index: usize, funcs: usize, seed: u64) -> Module {
    let mut rng = StdRng::seed_from_u64(seed ^ (index as u64) << 32);
    let mut mb = ModuleBuilder::new(format!("{app}_m{index}"), format!("{app}_m{index}.c"));
    let rec = mb.add_struct(
        "rec",
        vec![("a", Ty::I64), ("b", Ty::I64), ("c", Ty::I64), ("arr", Ty::Array(8))],
    );

    for fi in 0..funcs {
        let name = format!("{app}_m{index}_f{fi}");
        let mut fb = mb.function(&name, vec![("arg", Ty::I64)], Some(Ty::I64));
        // Unique line range per function, like a real source file.
        fb.at_line(fi as u32 * 100 + 1);
        let arg = fb.params()[0];
        let obj = fb.palloc(rec);

        // A few straight-line persisted updates (strict style).
        let updates = rng.gen_range(1..4usize);
        for u in 0..updates {
            fb.store(Place::field(obj, (u % 3) as u32), Operand::Const(u as i64));
            fb.persist(Place::field(obj, (u % 3) as u32));
        }

        // Sometimes a transaction.
        if rng.gen_bool(0.5) {
            fb.tx_begin();
            fb.tx_add(Place::local(obj));
            fb.store(Place::field(obj, 0), Operand::Local(arg));
            fb.store(Place::field(obj, 1), Operand::Const(1));
            fb.tx_commit();
        }

        // Sometimes a call to an earlier function of this module (keeps
        // the call graph interesting without recursion).
        if fi > 0 && rng.gen_bool(0.6) {
            let callee = format!("{app}_m{index}_f{}", rng.gen_range(0..fi));
            fb.call(callee, vec![Operand::Const(fi as i64)], Ty::I64);
        }

        // A data-dependent branch whose arms both persist correctly.
        if rng.gen_bool(0.6) {
            let then_b = fb.new_block(format!("then{fi}"));
            let else_b = fb.new_block(format!("else{fi}"));
            let join = fb.new_block(format!("join{fi}"));
            let c = fb.bin(BinOp::Gt, Operand::Local(arg), Operand::Const(0));
            fb.br(Operand::Local(c), then_b, else_b);
            fb.switch_to(then_b);
            fb.store(Place::field(obj, 2), Operand::Const(7));
            fb.persist(Place::field(obj, 2));
            fb.jmp(join);
            fb.switch_to(else_b);
            let v = fb.load(Place::field(obj, 2), Ty::I64);
            let _ = v;
            fb.jmp(join);
            fb.switch_to(join);
            let out = fb.load(Place::field(obj, 0), Ty::I64);
            fb.ret(Some(Operand::Local(out)));
        } else {
            let out = fb.load(Place::field(obj, 0), Ty::I64);
            fb.ret(Some(Operand::Local(out)));
        }
        if rng.gen_bool(0.1) {
            // no-op branch: attribute density knob reserved
        }
        fb.finish();
    }
    // One annotated wrapper, as real NVM programs declare.
    mb.extern_fn(
        format!("{app}_m{index}_flush_hook"),
        vec![("p", Ty::I64)],
        None,
        vec![FuncAttr::PersistWrapper],
    );
    mb.finish()
}

/// Generate the whole program for one Table-9 application.
pub fn generate_app(size: &AppSize) -> Vec<Module> {
    (0..size.modules)
        .map(|i| generate_module(size.name, i, size.funcs_per_module, 0xDEE9_0C0D))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmc_pir::verify::verify_module;

    #[test]
    fn generated_modules_verify() {
        for size in table9_apps() {
            for m in generate_app(&size) {
                verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", size.name));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_module("x", 0, 10, 42);
        let b = generate_module("x", 0, 10, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn sizes_are_ordered_like_the_paper() {
        let [mc, redis, nstore] = table9_apps();
        let count = |s: &AppSize| s.modules * s.funcs_per_module;
        assert!(count(&mc) < count(&nstore));
        assert!(count(&nstore) < count(&redis));
    }

    #[test]
    fn generated_code_is_clean_under_deepmc() {
        // The Table-9 timing baseline must not be dominated by warning
        // construction: generated code follows correct patterns.
        use deepmc::{DeepMcConfig, StaticChecker};
        use deepmc_analysis::Program;
        use deepmc_models::PersistencyModel;
        let m = generate_module("t", 0, 12, 7);
        let program = Program::single(m);
        let report =
            StaticChecker::new(DeepMcConfig::new(PersistencyModel::Strict)).check_program(&program);
        assert!(report.warnings.len() <= 2, "generated code should be essentially clean: {report}");
    }
}
