//! Mini-Memcached: the persistent Memcached of the Mnemosyne evaluation
//! (Marathe et al., HotStorage'17 lineage) — a key-value cache whose
//! updates persist with *epoch* batching: every client flushes each update
//! immediately and closes its epoch with one barrier per batch, exactly
//! the durability/throughput trade epoch persistency is for.

use crate::recovery::RecoveryReport;
use crate::store::{scan_record, PersistStyle, PmKv, RecordScan};
use crate::tracker::{NoopTracker, Tracker};
use crate::workloads::{BenchApp, ClientCtx, OpKind};
use nvm_runtime::{PAddr, PmemHeap, PmemPool};

/// The application.
pub struct Memcached<'p> {
    kv: PmKv<'p>,
}

impl<'p> Memcached<'p> {
    pub fn new(pool: &'p PmemPool, heap: &'p PmemHeap<'p>, shards: usize) -> Memcached<'p> {
        Memcached { kv: PmKv::new(pool, heap, PersistStyle::Epoch, shards) }
    }

    /// Post-crash recovery: persistent-Memcached rebuilds its volatile
    /// index by scanning the record area (every live record is one cache
    /// line with a non-zero key). Records that fail checksum validation
    /// (torn writes) or error at the media level even after retries are
    /// scrubbed — zeroed and persisted — so a second recovery pass sees a
    /// clean slot; the store itself also scrubs poison on write.
    pub fn recover(
        pool: &'p PmemPool,
        heap: &'p PmemHeap<'p>,
        shards: usize,
    ) -> (Memcached<'p>, RecoveryReport) {
        let kv = PmKv::new(pool, heap, PersistStyle::Epoch, shards);
        let mut report = RecoveryReport::default();
        // Clamp: a torn heap cursor must not walk the scan off the pool.
        let end = (64 + heap.used()).min(pool.size());
        let mut addr = 64u64;
        while addr + 64 <= end {
            let rec = PAddr(addr);
            match scan_record(pool, rec) {
                RecordScan::Empty => {}
                RecordScan::Valid { key, .. } => {
                    report.scanned += 1;
                    report.adopted += 1;
                    kv.adopt_record(key, rec);
                }
                bad => {
                    report.scanned += 1;
                    match bad {
                        RecordScan::Torn => report.torn_dropped += 1,
                        _ => report.poisoned_dropped += 1,
                    }
                    pool.write(rec, &[0u8; 64]);
                    pool.persist(rec, 64);
                }
            }
            addr += 64;
        }
        (Memcached { kv }, report)
    }

    /// `get key`.
    pub fn get(&self, key: u64, t: &dyn Tracker, ctx: &ClientCtx<'_>) -> Option<u64> {
        self.kv.get(key, t, ctx.strand)
    }

    /// `set key value` (insert or replace).
    pub fn set(&self, key: u64, value: u64, t: &dyn Tracker, ctx: &ClientCtx<'_>) -> bool {
        self.kv.set(key, value, t, ctx.strand)
    }

    /// `incr key` (read-modify-write).
    pub fn incr(&self, key: u64, t: &dyn Tracker, ctx: &ClientCtx<'_>) -> Option<u64> {
        self.kv.rmw(key, |v| v.wrapping_add(1), t, ctx.strand)
    }

    /// Close the current epoch: all flushed updates become durable.
    pub fn epoch_barrier(&self, t: &dyn Tracker) {
        self.kv.epoch_barrier(t);
    }

    /// **Seeded bug**: close the epoch without the fence
    /// ([`PmKv::epoch_barrier_skip_fence`]) — clients get their durability
    /// ack but the flush queue never drains. The crash sweep injects this
    /// as Memcached's ground-truth bug.
    pub fn epoch_barrier_skip_fence(&self, t: &dyn Tracker) {
        self.kv.epoch_barrier_skip_fence(t);
    }

    /// Number of cached items.
    pub fn len(&self) -> usize {
        self.kv.len()
    }

    pub fn is_empty(&self) -> bool {
        self.kv.is_empty()
    }
}

impl BenchApp for Memcached<'_> {
    fn preload(&self, keyspace: u64) {
        for k in 0..keyspace {
            self.kv.set(k, k, &NoopTracker, None);
        }
        self.kv.epoch_barrier(&NoopTracker);
    }

    fn client_op(&self, ctx: &ClientCtx<'_>, kind: OpKind, key: u64) {
        match kind {
            OpKind::Read | OpKind::Scan => {
                self.kv.get(key, ctx.tracker, ctx.strand);
            }
            OpKind::Update | OpKind::Insert => {
                self.kv.set(key, key ^ 0xFF, ctx.tracker, ctx.strand);
            }
            OpKind::ReadModifyWrite => {
                self.kv.rmw(key, |v| v.wrapping_add(1), ctx.tracker, ctx.strand);
            }
        }
    }

    fn batch_end(&self, ctx: &ClientCtx<'_>) {
        self.kv.epoch_barrier(ctx.tracker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::DeepMcTracker;
    use crate::workloads::{memslap_workloads, run_bench};
    use nvm_runtime::PoolConfig;

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig { size: 32 << 20, shards: 16, ..Default::default() })
    }

    #[test]
    fn recovery_rebuilds_the_index_from_records() {
        let p = pool();
        {
            let heap = PmemHeap::open(&p);
            let mc = Memcached::new(&p, &heap, 16);
            let noop = NoopTracker;
            let ctx = crate::workloads::ClientCtx { id: 0, tracker: &noop, strand: None };
            for k in 1..=100u64 {
                mc.set(k, k * 7, &noop, &ctx);
            }
            mc.kv.epoch_barrier(&noop);
        }
        let img = nvm_runtime::CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(16);
        let heap2 = PmemHeap::open(&p2);
        let (mc2, report) = Memcached::recover(&p2, &heap2, 16);
        assert_eq!(mc2.len(), 100);
        assert_eq!(report.adopted, 100);
        assert_eq!(report.dropped(), 0, "clean crash tears nothing");
        let noop = NoopTracker;
        let ctx = crate::workloads::ClientCtx { id: 0, tracker: &noop, strand: None };
        for k in (1..=100u64).step_by(13) {
            assert_eq!(mc2.get(k, &noop, &ctx), Some(k * 7));
        }
        // Un-fenced updates before the crash are (correctly) absent.
        let _ = ctx;
    }

    #[test]
    fn faulty_recovery_drops_bad_records_and_is_idempotent() {
        let p = PmemPool::with_faults(
            PoolConfig { size: 4 << 20, shards: 8, ..Default::default() },
            nvm_runtime::FaultConfig {
                seed: 11,
                torn_store_rate: 0.5,
                poison_rate: 0.01,
                ..Default::default()
            },
        );
        {
            let heap = PmemHeap::open(&p);
            let mc = Memcached::new(&p, &heap, 8);
            let noop = NoopTracker;
            let ctx = crate::workloads::ClientCtx { id: 0, tracker: &noop, strand: None };
            for k in 1..=200u64 {
                mc.set(k, k * 3, &noop, &ctx);
            }
            // No epoch barrier: every record line is still in flight, so
            // torn marks survive to the crash.
        }
        let img = nvm_runtime::CrashPolicy::Optimistic.apply(&p);
        let p2 = img.reboot(8);
        let heap2 = PmemHeap::open(&p2);
        let (mc2, first) = Memcached::recover(&p2, &heap2, 8);
        assert!(first.dropped() > 0, "faults at these rates must hit something");
        assert_eq!(first.adopted as usize, mc2.len());
        // Adopted records read back correct values (tears were filtered).
        let noop = NoopTracker;
        let ctx = crate::workloads::ClientCtx { id: 0, tracker: &noop, strand: None };
        for k in 1..=200u64 {
            if let Some(v) = mc2.get(k, &noop, &ctx) {
                assert_eq!(v, k * 3);
            }
        }
        // A second pass sees only scrubbed slots: same index, nothing new
        // dropped.
        let (mc3, second) = Memcached::recover(&p2, &heap2, 8);
        assert_eq!(mc3.len(), mc2.len());
        assert_eq!(second.adopted, first.adopted);
        assert_eq!(second.dropped(), 0, "first pass scrubbed every bad slot");
    }

    #[test]
    fn memslap_mix_runs_and_preserves_data() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let mc = Memcached::new(&p, &heap, 16);
        let tp = run_bench(&mc, memslap_workloads()[0], 4, 2_000, 1_000, &NoopTracker, 8);
        assert_eq!(tp.ops, 8_000);
        assert!(tp.ops_per_sec() > 0.0);
        assert!(mc.len() >= 1_000);
        assert_eq!(p.non_durable_lines(), 0, "every client epoch was closed");
    }

    #[test]
    fn instrumented_run_detects_nothing_on_correct_app() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let mc = Memcached::new(&p, &heap, 16);
        let tracker = DeepMcTracker::new();
        run_bench(&mc, memslap_workloads()[0], 4, 2_000, 1_000, &tracker, 8);
        assert!(
            tracker.reports().is_empty(),
            "shard locks order all conflicting accesses: {:?}",
            tracker.reports().first()
        );
        assert!(tracker.shadow_cells() > 0, "but accesses were tracked");
    }

    #[test]
    fn read_only_mix_tracks_fewer_cells_than_update_mix() {
        let cells = |spec| {
            let p = pool();
            let heap = PmemHeap::open(&p);
            let mc = Memcached::new(&p, &heap, 16);
            let tracker = DeepMcTracker::new();
            run_bench(&mc, spec, 2, 1_000, 64, &tracker, 8);
            tracker.shadow_cells()
        };
        let read_cells = cells(memslap_workloads()[2]); // 100% read
        let upd_cells = cells(memslap_workloads()[0]); // 50% update
                                                       // Reads shadow one 8-byte cell, updates three.
        assert!(upd_cells >= read_cells);
    }
}
