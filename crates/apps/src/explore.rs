//! Pruned crash-state exploration.
//!
//! The exhaustive sweep ([`crate::crashsweep`]) recovers and validates
//! every crash image at every crash point. Most of those images are
//! duplicates: a store that persists eagerly reaches the same durable
//! state under several eviction policies, and an epoch-batched store
//! parks in the same durable state for whole stretches of the script.
//! WITCHER-style pruning exploits this: two crash states validate
//! identically whenever
//!
//! 1. their persisted pool images are identical
//!    ([`nvm_runtime::CrashImage::content_hash`] — durable bytes plus
//!    permanent poison; transient poison is excluded because recovery
//!    reads through retries), and
//! 2. the oracle-relevant slice of their operation histories is
//!    identical ([`crate::workloads::OpHistory::digest`] — the acked map
//!    and the buggy-key set), and
//! 3. they agree on whether injected faults dropped any `clwb` (the
//!    fault-attribution escape hatch), and
//! 4. for the strict apps (Redis, NStore) they sit at the same crash
//!    step — the prefix-cut oracle and the corruption check consult the
//!    *full* write history, which grows per step, so cross-step
//!    collapsing is only sound for Memcached, whose epoch batching skips
//!    the prefix oracle and whose per-key checks are monotone in the
//!    history.
//!
//! Exploration runs in two phases over the same work-stealing pool the
//! exhaustive sweep uses. Phase A (probe) runs every script prefix,
//! materializes every crash image, and buckets each `(step, policy)`
//! crash point by the class key above — no reboot, no recovery. Phase B
//! (validate) re-runs only the steps that own a class representative and
//! validates just those images with the exact code the exhaustive sweep
//! uses ([`crate::crashsweep::validate_image`]); every policy is still
//! *applied* in order so the fault plan's RNG stream — which advances
//! per application — stays byte-identical to the exhaustive run. The
//! merge then propagates each representative's verdict to every member
//! of its class, relabelling violations with the member's own step and
//! policy. The reported outcome is counter-for-counter and
//! violation-for-violation equal to the exhaustive sweep's; only the
//! explored/pruned split differs.
//!
//! Phase-B steps journal as [`crate::crashsweep::JournalEntry::Explore`]
//! entries, so an interrupted pruned run resumes exactly like an
//! exhaustive one (the config fingerprint covers the prune flag, so the
//! two modes never replay each other's journals).

use crate::crashsweep::{
    dynamic_cross_check, policies, policy_name, run_prefix, script, validate_image, ExploreFrag,
    JournalEntry, StepOutcome, SweepApp, SweepConfig, SweepOutcome, SweepSession, Violation,
};
use deepmc_analysis::pool::{resolve_jobs_request, run_indexed};
use deepmc_obs as obs;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Everything phase A learns about one crash step.
struct StepProbe {
    /// Equivalence-class key per policy (index-aligned with
    /// [`policies`]).
    class_keys: Vec<u64>,
    /// `clwb`s the fault plan dropped during this step's prefix run.
    flush_faults: u64,
}

/// FNV-1a-style mix of the class-key components.
fn class_key(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// What one phase-B pool job produced for a representative-owning step.
enum ExploreResult {
    /// Session cancelled before the step started.
    Skipped,
    /// Replayed from the journal.
    Resumed(Vec<ExploreFrag>),
    /// Freshly validated.
    Computed(Vec<ExploreFrag>),
}

/// Pruned counterpart of the exhaustive `sweep_app_session`: same
/// signature, same outcome (minus the explored/pruned split), a fraction
/// of the recoveries.
pub(crate) fn explore_app_session(
    cfg: &SweepConfig,
    app: SweepApp,
    session: &SweepSession<'_>,
) -> (SweepOutcome, u64, u64) {
    let _s = obs::span_lazy("sweep.explore", || vec![("app", app.name().to_string())]);
    let total_steps = script(cfg).len();
    let mut outcome = SweepOutcome::empty(app);
    if session.is_cancelled() {
        return (outcome, 0, total_steps as u64);
    }
    outcome.dynamic_reports = dynamic_cross_check(cfg, app);
    let jobs = resolve_jobs_request(cfg.jobs);
    let pols = policies(cfg);

    // Phase A: probe every crash point — image hash + history digest per
    // (step, policy), no recovery. Steps are independent, so this fans
    // out too; probes land in step order regardless of worker count.
    let steps: Vec<usize> = (1..=total_steps).collect();
    let probes = run_indexed(jobs, steps, |_, crash_step| {
        if session.is_cancelled() {
            return None;
        }
        let _s = obs::span_lazy("explore.probe", || vec![("step", crash_step.to_string())]);
        let run = run_prefix(cfg, app, crash_step);
        let flush_faults = run.pool.stats().dropped_flushes;
        let digest = run.history.digest();
        // Cross-step collapsing is only sound for Memcached (see module
        // docs); the strict apps key on their step as well.
        let step_key = if app == SweepApp::Memcached { 0 } else { crash_step as u64 };
        let class_keys = pols
            .iter()
            .map(|p| {
                let img = p.apply(&run.pool);
                class_key(&[img.content_hash(), digest, (flush_faults > 0) as u64, step_key])
            })
            .collect();
        Some(StepProbe { class_keys, flush_faults })
    });
    if probes.iter().any(Option::is_none) {
        // Cancelled mid-probe: nothing was validated or journaled.
        return (outcome, 0, total_steps as u64);
    }
    let probes: Vec<StepProbe> = probes.into_iter().flatten().collect();

    // Elect representatives in canonical (step, policy) order so the
    // assignment — and therefore the journal and the output — is
    // identical for every worker count.
    let mut rep_of: HashMap<u64, (usize, usize)> = HashMap::new();
    let mut reps_by_step: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (idx, probe) in probes.iter().enumerate() {
        let crash_step = idx + 1;
        for (pi, &key) in probe.class_keys.iter().enumerate() {
            rep_of.entry(key).or_insert_with(|| {
                reps_by_step.entry(crash_step).or_default().push(pi);
                (crash_step, pi)
            });
        }
    }

    // Phase B: recover + validate only the representatives. Every policy
    // is still applied in order (the fault plan's RNG advances per
    // apply), so representative images are byte-identical to the
    // exhaustive sweep's.
    let rep_steps: Vec<(usize, Vec<usize>)> = reps_by_step.into_iter().collect();
    let results = run_indexed(jobs, rep_steps.clone(), |_, (crash_step, rep_pis)| {
        if session.is_cancelled() {
            return ExploreResult::Skipped;
        }
        if let Some(journal) = session.journal {
            if let Some(frags) = journal.lookup_explore(app.name(), crash_step as u64) {
                obs::counter("sweep.resumed_steps", 1);
                return ExploreResult::Resumed(frags.clone());
            }
        }
        let _s = obs::span_lazy("explore.validate", || vec![("step", crash_step.to_string())]);
        let run = run_prefix(cfg, app, crash_step);
        let flush_faults = run.pool.stats().dropped_flushes;
        let mut frags: Vec<ExploreFrag> = Vec::with_capacity(rep_pis.len());
        for (pi, policy) in pols.iter().enumerate() {
            let img = policy.apply(&run.pool);
            if rep_pis.contains(&pi) {
                let mut frag = StepOutcome::default();
                validate_image(
                    cfg,
                    app,
                    crash_step,
                    policy,
                    &img,
                    &run.history,
                    flush_faults,
                    &mut frag,
                );
                frags.push(ExploreFrag { policy: pi, outcome: frag });
            }
        }
        if let Some(journal) = session.journal {
            let journaled = journal.append(
                app.name(),
                crash_step as u64,
                &JournalEntry::Explore(frags.clone()),
            );
            if session.trip_after.is_some_and(|t| journaled >= t) {
                session.cancel();
            }
        }
        ExploreResult::Computed(frags)
    });

    let mut resumed = 0u64;
    let mut frag_map: HashMap<(usize, usize), StepOutcome> = HashMap::new();
    for ((crash_step, _), result) in rep_steps.iter().zip(results) {
        let frags = match result {
            ExploreResult::Skipped => continue,
            ExploreResult::Resumed(f) => {
                resumed += 1;
                f
            }
            ExploreResult::Computed(f) => f,
        };
        for frag in frags {
            frag_map.insert((*crash_step, frag.policy), frag.outcome);
        }
    }

    // Merge: propagate each representative's verdict to every member of
    // its class, in canonical (step, policy) order — the same order the
    // exhaustive sweep emits. A step any of whose representatives is
    // missing (cancelled before validation) counts as skipped, exactly
    // like an unexecuted exhaustive step.
    let mut skipped = 0u64;
    let mut explored: HashSet<(usize, usize)> = HashSet::new();
    for (idx, probe) in probes.iter().enumerate() {
        let crash_step = idx + 1;
        let reps: Vec<(usize, usize)> = probe.class_keys.iter().map(|key| rep_of[key]).collect();
        if reps.iter().any(|rep| !frag_map.contains_key(rep)) {
            skipped += 1;
            continue;
        }
        outcome.flushes_dropped += probe.flush_faults;
        for (pi, rep) in reps.into_iter().enumerate() {
            let frag = &frag_map[&rep];
            explored.insert(rep);
            outcome.images_checked += frag.images_checked;
            outcome.records_dropped += frag.records_dropped;
            outcome.fault_attributed += frag.fault_attributed;
            outcome.bug_attributed += frag.bug_attributed;
            for v in &frag.violations {
                outcome.violations.push(Violation {
                    app: v.app.clone(),
                    crash_step: crash_step as u64,
                    policy: policy_name(&pols[pi]),
                    key: v.key,
                    detail: v.detail.clone(),
                });
            }
        }
    }
    outcome.states_explored = explored.len() as u64;
    outcome.states_pruned = outcome.images_checked - outcome.states_explored;
    obs::progress::add_pruned(outcome.states_pruned);
    obs::counter("sweep.images_checked", outcome.images_checked);
    obs::counter("sweep.records_dropped", outcome.records_dropped);
    obs::counter("sweep.fault_attributed", outcome.fault_attributed);
    obs::counter("sweep.bug_attributed", outcome.bug_attributed);
    obs::counter("sweep.violations", outcome.violations.len() as u64);
    obs::counter("sweep.explored", outcome.states_explored);
    obs::counter("sweep.pruned", outcome.states_pruned);
    (outcome, resumed, skipped)
}
