//! A sharded persistent key-value engine over the simulated NVM pool —
//! the common substrate of the three applications.
//!
//! Design follows persistent Memcached / Mnemosyne: a *volatile* hash
//! index (rebuilt on startup in the real systems) pointing at *persistent*
//! 64-byte records, each on its own cache line:
//!
//! ```text
//! record: | key u64 | value u64 | version u64 | sum u64 | pad .. | (64 B)
//! ```
//!
//! `sum` is a salted checksum over `(key, value, version)` — under fault
//! injection a record can be torn or poisoned, and recovery uses the sum
//! to tell a valid record from a partially-persisted one (see
//! [`crate::recovery`]).
//!
//! Persistence styles:
//! * [`PersistStyle::Strict`] — every update is flushed and fenced in
//!   program order (PMDK-style).
//! * [`PersistStyle::Epoch`] — updates are flushed immediately but fenced
//!   at epoch boundaries chosen by the caller (Mnemosyne/PMFS-style
//!   batching); call [`PmKv::epoch_barrier`] to close an epoch.

use crate::recovery::{checksum, PMKV_SALT};
use crate::tracker::Tracker;
use nvm_runtime::{PAddr, PmemHeap, PmemPool, StrandId};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Record size: one cache line.
pub const RECORD_BYTES: u64 = 64;

const OFF_KEY: u64 = 0;
const OFF_VAL: u64 = 8;
const OFF_VER: u64 = 16;
const OFF_SUM: u64 = 24;

fn record_sum(key: u64, val: u64, ver: u64) -> u64 {
    checksum(PMKV_SALT, &[key, val, ver])
}

/// Outcome of validating one record slot during a recovery scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordScan {
    /// Key is zero: a free or deleted slot.
    Empty,
    /// Checksum validates; safe to adopt.
    Valid { key: u64, value: u64 },
    /// Non-zero key but a bad checksum: a torn write.
    Torn,
    /// The line's media errored even after retries.
    Poisoned,
}

/// Validate the record at `rec` (used by application recovery).
pub fn scan_record(pool: &PmemPool, rec: PAddr) -> RecordScan {
    let mut bytes = [0u8; 32];
    if pool.read_reliable(rec, &mut bytes, 2).is_err() {
        return RecordScan::Poisoned;
    }
    let word = |i: usize| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap());
    let (key, val, ver, sum) = (word(0), word(1), word(2), word(3));
    if key == 0 {
        RecordScan::Empty
    } else if sum == record_sum(key, val, ver) {
        RecordScan::Valid { key, value: val }
    } else {
        RecordScan::Torn
    }
}

/// When updates become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistStyle {
    Strict,
    Epoch,
}

/// The engine.
pub struct PmKv<'p> {
    pool: &'p PmemPool,
    heap: &'p PmemHeap<'p>,
    style: PersistStyle,
    shards: Vec<Mutex<HashMap<u64, PAddr>>>,
    mask: u64,
}

impl<'p> PmKv<'p> {
    /// Create with `shards` rounded up to a power of two.
    pub fn new(
        pool: &'p PmemPool,
        heap: &'p PmemHeap<'p>,
        style: PersistStyle,
        shards: usize,
    ) -> PmKv<'p> {
        let n = shards.max(1).next_power_of_two();
        PmKv {
            pool,
            heap,
            style,
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n as u64 - 1,
        }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, PAddr>> {
        &self.shards[self.lock_id(key) as usize]
    }

    /// Stable shard/lock index for `key` (mirrored into the tracker as the
    /// lock identity).
    fn lock_id(&self, key: u64) -> u64 {
        // Avalanche the key a little so sequential keys spread.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h >> 56 & self.mask
    }

    /// Insert or update `key`. Returns false when the pool is exhausted.
    pub fn set(
        &self,
        key: u64,
        value: u64,
        tracker: &dyn Tracker,
        strand: Option<StrandId>,
    ) -> bool {
        let lock_id = self.lock_id(key);
        let mut shard = self.shard(key).lock();
        if tracker.enabled() {
            tracker.lock_acquire(strand, lock_id);
        }
        let rec = match shard.get(&key) {
            Some(&r) => r,
            None => {
                let r = self.heap.alloc(RECORD_BYTES);
                if r.is_null() {
                    return false;
                }
                shard.insert(key, r);
                r
            }
        };
        let ver = self.pool.read_u64(rec.offset(OFF_VER));
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&key.to_le_bytes());
        bytes[8..16].copy_from_slice(&value.to_le_bytes());
        bytes[16..24].copy_from_slice(&(ver + 1).to_le_bytes());
        bytes[24..32].copy_from_slice(&record_sum(key, value, ver + 1).to_le_bytes());
        self.pool.write(rec, &bytes);
        if tracker.enabled() {
            tracker.access(strand, rec.0, 32, true);
        }
        self.pool.flush(rec, 32);
        if self.style == PersistStyle::Strict {
            self.pool.fence();
        }
        if tracker.enabled() {
            tracker.lock_release(strand, lock_id);
        }
        drop(shard);
        true
    }

    /// Read `key`'s value. Reads are NOT instrumented: "DeepMC only
    /// instruments write operations to the NVM in programmer-specified
    /// code regions" (paper §4.4) — this is where its low overhead on
    /// read-heavy workloads comes from.
    pub fn get(&self, key: u64, _tracker: &dyn Tracker, _strand: Option<StrandId>) -> Option<u64> {
        let shard = self.shard(key).lock();
        let rec = shard.get(&key).copied();
        drop(shard);
        rec.map(|rec| self.pool.read_u64(rec.offset(OFF_VAL)))
    }

    /// Read-modify-write: value ← f(value). Returns the new value, or
    /// `None` when absent.
    pub fn rmw(
        &self,
        key: u64,
        f: impl FnOnce(u64) -> u64,
        tracker: &dyn Tracker,
        strand: Option<StrandId>,
    ) -> Option<u64> {
        let lock_id = self.lock_id(key);
        let shard = self.shard(key).lock();
        if tracker.enabled() {
            tracker.lock_acquire(strand, lock_id);
        }
        let Some(&rec) = shard.get(&key) else {
            if tracker.enabled() {
                tracker.lock_release(strand, lock_id);
            }
            return None;
        };
        let old = self.pool.read_u64(rec.offset(OFF_VAL));
        let new = f(old);
        self.pool.write_u64(rec.offset(OFF_VAL), new);
        let ver = self.pool.read_u64(rec.offset(OFF_VER));
        self.pool.write_u64(rec.offset(OFF_VER), ver + 1);
        self.pool.write_u64(rec.offset(OFF_SUM), record_sum(key, new, ver + 1));
        if tracker.enabled() {
            tracker.access(strand, rec.offset(OFF_VAL).0, 24, true);
        }
        self.pool.flush(rec.offset(OFF_VAL), 24);
        if self.style == PersistStyle::Strict {
            self.pool.fence();
        }
        if tracker.enabled() {
            tracker.lock_release(strand, lock_id);
        }
        drop(shard);
        Some(new)
    }

    /// Remove `key`. The record is recycled; the index drop is volatile
    /// (rebuilt on recovery), matching persistent-Memcached.
    pub fn delete(&self, key: u64, tracker: &dyn Tracker, strand: Option<StrandId>) -> bool {
        let lock_id = self.lock_id(key);
        let mut shard = self.shard(key).lock();
        if tracker.enabled() {
            tracker.lock_acquire(strand, lock_id);
        }
        let Some(rec) = shard.remove(&key) else {
            if tracker.enabled() {
                tracker.lock_release(strand, lock_id);
            }
            return false;
        };
        self.pool.write_u64(rec.offset(OFF_KEY), 0);
        if tracker.enabled() {
            tracker.access(strand, rec.0, 8, true);
        }
        self.pool.persist(rec, 8);
        self.heap.free(rec, RECORD_BYTES);
        if tracker.enabled() {
            tracker.lock_release(strand, lock_id);
        }
        true
    }

    /// Adopt an existing persistent record into the volatile index
    /// (recovery path: the index is rebuilt by scanning the record area).
    pub fn adopt_record(&self, key: u64, rec: PAddr) {
        self.shard(key).lock().insert(key, rec);
    }

    /// Close an epoch: all flushed updates become durable (epoch style).
    pub fn epoch_barrier(&self, tracker: &dyn Tracker) {
        self.pool.fence();
        if tracker.enabled() {
            tracker.barrier();
        }
    }

    /// **Seeded bug** (missing `sfence` at epoch close; Table 2's
    /// missing-fence pattern): acknowledge the epoch without draining the
    /// flush queue. Flushed lines stay `FlushPending`, so a crash after
    /// this "barrier" can drop updates the caller already acked. Only the
    /// crash sweep's ground-truth injection calls this.
    pub fn epoch_barrier_skip_fence(&self, tracker: &dyn Tracker) {
        if tracker.enabled() {
            tracker.barrier();
        }
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The pool underneath (for stats).
    pub fn pool(&self) -> &PmemPool {
        self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::{DeepMcTracker, NoopTracker};
    use nvm_runtime::{CrashPolicy, PoolConfig};

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig { size: 8 << 20, shards: 8, ..Default::default() })
    }

    #[test]
    fn set_get_roundtrip() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let kv = PmKv::new(&p, &heap, PersistStyle::Strict, 8);
        assert!(kv.set(7, 700, &NoopTracker, None));
        assert_eq!(kv.get(7, &NoopTracker, None), Some(700));
        assert_eq!(kv.get(8, &NoopTracker, None), None);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn strict_set_is_immediately_durable() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let kv = PmKv::new(&p, &heap, PersistStyle::Strict, 8);
        kv.set(1, 11, &NoopTracker, None);
        assert_eq!(p.non_durable_lines(), 0, "strict style fences every update");
    }

    #[test]
    fn epoch_set_is_durable_after_barrier() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let kv = PmKv::new(&p, &heap, PersistStyle::Epoch, 8);
        kv.set(1, 11, &NoopTracker, None);
        kv.set(2, 22, &NoopTracker, None);
        assert!(p.non_durable_lines() > 0, "epoch updates pend until the barrier");
        kv.epoch_barrier(&NoopTracker);
        assert_eq!(p.non_durable_lines(), 0);
        // And the records really are in the durable image.
        let img = CrashPolicy::Pessimistic.apply(&p);
        let mut found = 0;
        for off in (0..p.size()).step_by(64) {
            let v = img.read_u64(PAddr(off + 8));
            if v == 11 || v == 22 {
                found += 1;
            }
        }
        assert_eq!(found, 2);
    }

    #[test]
    fn rmw_increments() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let kv = PmKv::new(&p, &heap, PersistStyle::Strict, 8);
        kv.set(5, 10, &NoopTracker, None);
        assert_eq!(kv.rmw(5, |v| v + 1, &NoopTracker, None), Some(11));
        assert_eq!(kv.get(5, &NoopTracker, None), Some(11));
        assert_eq!(kv.rmw(99, |v| v, &NoopTracker, None), None);
    }

    #[test]
    fn delete_removes_and_recycles() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let kv = PmKv::new(&p, &heap, PersistStyle::Strict, 8);
        kv.set(5, 10, &NoopTracker, None);
        assert!(kv.delete(5, &NoopTracker, None));
        assert_eq!(kv.get(5, &NoopTracker, None), None);
        assert!(!kv.delete(5, &NoopTracker, None));
    }

    #[test]
    fn concurrent_clients_keep_their_data() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let kv = PmKv::new(&p, &heap, PersistStyle::Strict, 16);
        crossbeam::scope(|s| {
            for t in 0..8u64 {
                let kv = &kv;
                s.spawn(move |_| {
                    for i in 0..200u64 {
                        let key = t * 1_000_000 + i;
                        assert!(kv.set(key, key * 2, &NoopTracker, None));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(kv.len(), 8 * 200);
        for t in 0..8u64 {
            for i in (0..200u64).step_by(37) {
                let key = t * 1_000_000 + i;
                assert_eq!(kv.get(key, &NoopTracker, None), Some(key * 2));
            }
        }
    }

    #[test]
    fn tracked_updates_reach_the_tracker() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let kv = PmKv::new(&p, &heap, PersistStyle::Epoch, 8);
        let tracker = DeepMcTracker::new();
        let s = tracker.region_begin();
        kv.set(1, 2, &tracker, s);
        kv.get(1, &tracker, s);
        assert!(tracker.shadow_cells() > 0, "accesses were shadowed");
    }
}
