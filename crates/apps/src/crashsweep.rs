//! Systematic crash-point sweep under fault injection.
//!
//! The paper validates reported bugs by manually constructing the crash
//! state each bug implies and running the application's recovery on it
//! (§6.2). This module automates that at scale: a deterministic scripted
//! workload runs against a fault-injecting pool, crashes at **every** op
//! boundary under every [`CrashPolicy`] (plus extra `Random` seeds),
//! reboots the surviving image, runs the application's `recover()`, and
//! checks application-level invariants:
//!
//! 1. **No corruption** — every recovered value was actually written by
//!    the workload (checksums filtered torn records).
//! 2. **Acked durability** — every durably-acknowledged update is present
//!    after recovery, *unless* the loss is attributable to an injected
//!    fault (the recovery report dropped records, or the fault plan
//!    dropped a `clwb`) or to the deliberately injected application bug.
//!
//! With all fault rates zero and no injected bug the sweep must be
//! violation-free — that is the regression contract. With
//! [`SweepConfig::inject_bug`] set (NStore's commit mark never flushed),
//! the sweep must *catch* the bug and attribute every violation to it.
//! A full instrumented pass ([`crate::tracker::DeepMcTracker`]) runs once
//! per app as a dynamic cross-check; correct apps report no races.
//!
//! Crash steps are independent (each builds its own pool from scratch),
//! so the sweep fans them out over the shared work-stealing pool
//! ([`deepmc_analysis::pool`]) and merges per-step results in step order
//! — the outcome is identical for any [`SweepConfig::jobs`] value.
//!
//! Sweeps are *resumable*: with a [`SweepJournal`] attached, every
//! completed crash step is appended (one flushed line each) as it
//! finishes, and a later run over the same config skips journaled steps
//! and replays their recorded outcomes. Because each line is written and
//! flushed atomically enough to survive a hard kill (a torn trailing
//! line is simply re-executed), even a SIGKILLed sweep resumes from its
//! last completed step. Cooperative interruption ([`SweepSession`]) stops
//! scheduling new steps, drains in-flight workers, and leaves the journal
//! flushed.

use crate::memcached::Memcached;
use crate::nstore::NStore;
use crate::recovery::checksum;
use crate::redis::Redis;
use crate::tracker::{DeepMcTracker, NoopTracker, Tracker};
use crate::workloads::ClientCtx;
use deepmc_analysis::pool::{resolve_jobs, run_indexed};
use deepmc_obs as obs;
use nvm_runtime::{CrashPolicy, FaultConfig, PmemHeap, PmemPool, PoolConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Which applications to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepApp {
    Memcached,
    Redis,
    NStore,
}

impl SweepApp {
    pub const ALL: [SweepApp; 3] = [SweepApp::Memcached, SweepApp::Redis, SweepApp::NStore];

    pub fn name(&self) -> &'static str {
        match self {
            SweepApp::Memcached => "memcached",
            SweepApp::Redis => "redis",
            SweepApp::NStore => "nstore",
        }
    }
}

/// Sweep parameters. Everything is deterministic in `seed`.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Workload/script seed (also feeds the crash-policy Random seeds).
    pub seed: u64,
    /// Ops per workload run; the sweep crashes after each one.
    pub steps: u64,
    /// Extra `CrashPolicy::Random` seeds beyond the three deterministic
    /// policies.
    pub random_seeds: u64,
    /// Fault-injection rates for the pool under test.
    pub fault: FaultConfig,
    /// Inject the NStore missing-commit-persist bug (ground truth).
    pub inject_bug: bool,
    /// Worker threads for the crash-step fan-out; `0` resolves via
    /// `DEEPMC_JOBS` then the machine's available parallelism. Each crash
    /// step is an independent work item (its own pool, script prefix, and
    /// crash images), and per-step results merge in step order, so the
    /// outcome is identical for any worker count.
    pub jobs: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 1,
            steps: 24,
            random_seeds: 2,
            fault: FaultConfig::default(),
            inject_bug: false,
            jobs: 0,
        }
    }
}

/// One unattributed invariant violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    pub app: String,
    pub crash_step: u64,
    pub policy: String,
    pub key: u64,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: crash@{} [{}] key {}: {}",
            self.app, self.crash_step, self.policy, self.key, self.detail
        )
    }
}

/// Results of sweeping one application.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    pub app: &'static str,
    /// Crash images taken and recovered from.
    pub images_checked: u64,
    /// Records dropped by recovery across all images (torn + poisoned).
    pub records_dropped: u64,
    /// `clwb`s dropped by fault injection across all pre-crash runs (from
    /// [`nvm_runtime::StatsSnapshot::dropped_flushes`]) — the evidence the
    /// fault-attribution path leans on.
    pub flushes_dropped: u64,
    /// Acked keys found missing but attributed to injected faults.
    pub fault_attributed: u64,
    /// Acked keys found missing and attributed to the injected app bug.
    pub bug_attributed: u64,
    /// Races the instrumented (no-crash) pass reported.
    pub dynamic_reports: usize,
    /// Violations nothing explains — real failures.
    pub violations: Vec<Violation>,
}

impl fmt::Display for SweepOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>4} images  {:>4} dropped  {:>4} clwb-dropped  {:>4} fault-attr  \
             {:>4} bug-attr  {:>2} dyn-reports  {} violations",
            self.app,
            self.images_checked,
            self.records_dropped,
            self.flushes_dropped,
            self.fault_attributed,
            self.bug_attributed,
            self.dynamic_reports,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  VIOLATION {v}")?;
        }
        Ok(())
    }
}

/// One scripted op. `acked_at_barrier` marks epoch-style ops whose
/// durability is only acknowledged at the next barrier.
#[derive(Debug, Clone, Copy)]
enum Op {
    Set { key: u64, val: u64 },
    Del { key: u64 },
    Barrier,
}

/// Deterministic script: mostly sets over a small keyspace, occasional
/// deletes, barriers every 6 ops (only Memcached acts on them).
fn script(cfg: &SweepConfig) -> Vec<Op> {
    let keyspace = 16;
    let mut ops = Vec::new();
    for i in 0..cfg.steps {
        if i > 0 && i % 6 == 0 {
            ops.push(Op::Barrier);
        }
        let r = checksum(cfg.seed, &[0xC0FFEE, i]);
        let key = 1 + r % keyspace;
        if r % 11 == 10 {
            ops.push(Op::Del { key });
        } else {
            ops.push(Op::Set { key, val: checksum(cfg.seed, &[0xBEEF, i]) | 1 });
        }
    }
    ops
}

/// The crash policies swept: the three deterministic ones plus
/// `random_seeds` random evictions derived from the sweep seed.
fn policies(cfg: &SweepConfig) -> Vec<CrashPolicy> {
    let mut out = vec![CrashPolicy::Pessimistic, CrashPolicy::Optimistic, CrashPolicy::PendingOnly];
    for i in 0..cfg.random_seeds {
        out.push(CrashPolicy::Random(checksum(cfg.seed, &[0x5EED, i])));
    }
    out
}

fn policy_name(p: &CrashPolicy) -> String {
    match p {
        CrashPolicy::Pessimistic => "pessimistic".into(),
        CrashPolicy::Optimistic => "optimistic".into(),
        CrashPolicy::PendingOnly => "pending-only".into(),
        CrashPolicy::Random(s) => format!("random({s:#x})"),
    }
}

/// The model state the oracle compares against: for each key, the acked
/// value (if its durability was acknowledged) and every value ever
/// written (any of which may legally surface under optimistic eviction).
#[derive(Default)]
struct Model {
    acked: HashMap<u64, u64>,
    history: HashMap<u64, Vec<u64>>,
    /// Keys whose *latest* update went through the buggy path.
    buggy: std::collections::HashSet<u64>,
}

struct AppRun {
    pool: PmemPool,
    model: Model,
}

/// Run the script prefix `0..crash_step` against a fresh fault-injecting
/// pool. `epoch` selects Memcached-style acking (at barriers) vs strict
/// (every op). Returns the pool ready to crash plus the oracle model.
fn run_prefix(cfg: &SweepConfig, app: SweepApp, crash_step: usize) -> AppRun {
    let pool = PmemPool::with_faults(
        PoolConfig { size: 4 << 20, shards: 8, ..Default::default() },
        FaultConfig { seed: cfg.seed ^ crash_step as u64, ..cfg.fault },
    );
    let mut model = Model::default();
    let ops = script(cfg);
    let noop = NoopTracker;
    let ctx = ClientCtx { id: 0, tracker: &noop, strand: None };
    {
        let heap = PmemHeap::open(&pool);
        // Pending acks for epoch style: promoted to `acked` at barriers.
        let mut pending: HashMap<u64, u64> = HashMap::new();
        match app {
            SweepApp::Memcached => {
                let mc = Memcached::new(&pool, &heap, 8);
                for op in ops.iter().take(crash_step) {
                    match *op {
                        Op::Set { key, val } => {
                            mc.set(key, val, &noop, &ctx);
                            model.history.entry(key).or_default().push(val);
                            pending.insert(key, val);
                        }
                        // The mini-Memcached has no delete command in its
                        // protocol surface; script deletes become sets.
                        Op::Del { key } => {
                            mc.set(key, 0xDEAD, &noop, &ctx);
                            model.history.entry(key).or_default().push(0xDEAD);
                            pending.insert(key, 0xDEAD);
                        }
                        Op::Barrier => {
                            mc.epoch_barrier(&noop);
                            model.acked.extend(pending.drain());
                        }
                    }
                }
            }
            SweepApp::Redis => {
                let r = Redis::new(&pool, &heap, 8, 1 << 16);
                for op in ops.iter().take(crash_step) {
                    match *op {
                        Op::Set { key, val } => {
                            r.set(key, val, &noop, None);
                            model.history.entry(key).or_default().push(val);
                            model.acked.insert(key, val);
                        }
                        Op::Del { key } => {
                            r.del(key, &noop, None);
                            model.acked.remove(&key);
                        }
                        Op::Barrier => {}
                    }
                }
            }
            SweepApp::NStore => {
                let db = NStore::new(&pool, &heap, 8, 1 << 16);
                for (i, op) in ops.iter().take(crash_step).enumerate() {
                    match *op {
                        Op::Set { key, val } => {
                            let cols = [val, val ^ 1, val ^ 2, val ^ 3];
                            if cfg.inject_bug && i % 4 == 3 {
                                db.put_skip_commit_persist(key, cols, &noop, None);
                                model.buggy.insert(key);
                            } else {
                                db.put(key, cols, &noop, None);
                                model.buggy.remove(&key);
                            }
                            model.history.entry(key).or_default().push(val);
                            model.acked.insert(key, val);
                        }
                        // NStore has no delete; treat as an overwrite.
                        Op::Del { key } => {
                            if !cfg.inject_bug || i % 4 != 3 {
                                db.put(key, [7, 7, 7, 7], &noop, None);
                                model.buggy.remove(&key);
                            } else {
                                db.put_skip_commit_persist(key, [7, 7, 7, 7], &noop, None);
                                model.buggy.insert(key);
                            }
                            model.history.entry(key).or_default().push(7);
                            model.acked.insert(key, 7);
                        }
                        Op::Barrier => {}
                    }
                }
            }
        }
    }
    AppRun { pool, model }
}

/// Per-crash-step partial results. Each crash step is self-contained —
/// its own fault-injecting pool, script prefix, and crash images — so
/// steps run independently on the worker pool and merge in step order.
/// Serializable: a completed step's outcome is journaled verbatim and
/// replayed on `--resume` instead of re-executing the step.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
struct StepOutcome {
    images_checked: u64,
    records_dropped: u64,
    flushes_dropped: u64,
    fault_attributed: u64,
    bug_attributed: u64,
    violations: Vec<Violation>,
}

/// Crash after op `crash_step` under every policy and check invariants.
fn sweep_step(cfg: &SweepConfig, app: SweepApp, crash_step: usize) -> StepOutcome {
    let _s = obs::span_lazy("sweep.step", || {
        vec![("app", app.name().to_string()), ("step", crash_step.to_string())]
    });
    let mut outcome = StepOutcome::default();
    {
        let run = run_prefix(cfg, app, crash_step);
        // Faults already injected into this run: recovery drops plus
        // silently dropped clwbs both license missing acked data. The
        // pool's own counter (not the fault plan's) is authoritative:
        // it records exactly the drops this run experienced.
        let flush_faults = run.pool.stats().dropped_flushes;
        outcome.flushes_dropped += flush_faults;
        for policy in policies(cfg) {
            let img = policy.apply(&run.pool);
            let pool2 = img.reboot(8);
            let heap2 = PmemHeap::open(&pool2);
            outcome.images_checked += 1;
            let (recovered, report): (HashMap<u64, u64>, _) = match app {
                SweepApp::Memcached => {
                    let (mc, rep) = Memcached::recover(&pool2, &heap2, 8);
                    let noop = NoopTracker;
                    let ctx = ClientCtx { id: 0, tracker: &noop, strand: None };
                    let m = run
                        .model
                        .history
                        .keys()
                        .filter_map(|&k| mc.get(k, &noop, &ctx).map(|v| (k, v)))
                        .collect();
                    (m, rep)
                }
                SweepApp::Redis => {
                    let (r, rep) = Redis::recover(&pool2, &heap2, 8, 1 << 16);
                    let m = run
                        .model
                        .history
                        .keys()
                        .filter_map(|&k| r.get(k, &NoopTracker, None).map(|v| (k, v)))
                        .collect();
                    (m, rep)
                }
                SweepApp::NStore => {
                    let (db, rep) = NStore::recover(&pool2, &heap2, 8, 1 << 16);
                    let m = run
                        .model
                        .history
                        .keys()
                        .filter_map(|&k| db.read(k, 0, &NoopTracker, None).map(|v| (k, v)))
                        .collect();
                    (m, rep)
                }
            };
            outcome.records_dropped += report.dropped();
            let attributable = report.dropped() > 0 || flush_faults > 0;
            // Invariant 1: no corruption — recovered values were written.
            for (&k, &v) in &recovered {
                let in_history = run.model.history.get(&k).is_some_and(|h| h.contains(&v));
                // NStore stores a fixed transform; Memcached/Redis store
                // raw history values.
                if !in_history {
                    outcome.violations.push(Violation {
                        app: app.name().to_string(),
                        crash_step: crash_step as u64,
                        policy: policy_name(&policy),
                        key: k,
                        detail: format!("recovered value {v:#x} was never written"),
                    });
                }
            }
            // Invariant 2: acked durability.
            for (&k, &want) in &run.model.acked {
                if recovered.contains_key(&k) {
                    continue;
                }
                let _ = want;
                if run.model.buggy.contains(&k) {
                    outcome.bug_attributed += 1;
                } else if attributable {
                    outcome.fault_attributed += 1;
                } else {
                    outcome.violations.push(Violation {
                        app: app.name().to_string(),
                        crash_step: crash_step as u64,
                        policy: policy_name(&policy),
                        key: k,
                        detail: "acked key missing after recovery with no fault to blame".into(),
                    });
                }
            }
        }
    }
    obs::counter("sweep.images_checked", outcome.images_checked);
    obs::counter("sweep.records_dropped", outcome.records_dropped);
    obs::counter("sweep.flushes_dropped", outcome.flushes_dropped);
    obs::counter("sweep.fault_attributed", outcome.fault_attributed);
    obs::counter("sweep.bug_attributed", outcome.bug_attributed);
    obs::counter("sweep.violations", outcome.violations.len() as u64);
    outcome
}

/// Magic first line of a sweep journal; ties the journal to one config.
const JOURNAL_MAGIC: &str = "deepmc-sweep-journal-v1";

/// FNV-1a 64-bit, local copy (stability across runs is what matters).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of everything that determines a step's outcome: seed, script
/// shape, fault plan, bug injection, and the app set. `jobs` is excluded
/// on purpose — a journal written at `--jobs 4` resumes at any worker
/// count.
fn config_fingerprint(cfg: &SweepConfig, apps: &[SweepApp]) -> u64 {
    let mut text = format!(
        "seed={} steps={} random_seeds={} fault={:?} inject_bug={}",
        cfg.seed, cfg.steps, cfg.random_seeds, cfg.fault, cfg.inject_bug
    );
    for a in apps {
        text.push(' ');
        text.push_str(a.name());
    }
    fnv1a(text.as_bytes())
}

/// One journaled crash step.
#[derive(Serialize, Deserialize)]
struct JournalLine {
    app: String,
    step: u64,
    outcome: StepOutcome,
}

/// Append-only on-disk record of completed crash steps.
///
/// Layout: a header line binding the journal to a config fingerprint,
/// then one JSON line per completed step. Every append is a single
/// `write_all` + flush, so a killed sweep leaves at most one torn
/// trailing line — tolerated (skipped) on reload, costing one re-executed
/// step. Opening with `resume = false`, or with a header that doesn't
/// match the current config, truncates and starts fresh.
pub struct SweepJournal {
    done: HashMap<(String, u64), StepOutcome>,
    file: Mutex<fs::File>,
    appended: AtomicU64,
}

impl SweepJournal {
    /// Open (or create) the journal at `path` for this config. With
    /// `resume`, previously journaled steps of a matching-config journal
    /// are loaded and later skipped by [`sweep_session`].
    pub fn open(
        path: impl Into<PathBuf>,
        cfg: &SweepConfig,
        apps: &[SweepApp],
        resume: bool,
    ) -> io::Result<SweepJournal> {
        let path = path.into();
        let header = format!("{JOURNAL_MAGIC} fingerprint={:016x}", config_fingerprint(cfg, apps));
        let mut done = HashMap::new();
        let mut reusable = false;
        if resume {
            if let Ok(text) = fs::read_to_string(&path) {
                let mut lines = text.lines();
                if lines.next() == Some(header.as_str()) {
                    reusable = true;
                    for line in lines {
                        // Torn or unparsable lines (hard kill mid-append)
                        // are skipped: that step simply re-executes.
                        if let Ok(jl) = serde_json::from_str::<JournalLine>(line) {
                            done.insert((jl.app, jl.step), jl.outcome);
                        }
                    }
                } else {
                    obs::warning(
                        "sweep.journal_mismatch",
                        &format!(
                            "journal {} was written for a different sweep config; starting fresh",
                            path.display()
                        ),
                    );
                }
            }
        }
        let file = if reusable {
            fs::OpenOptions::new().append(true).open(&path)?
        } else {
            let mut f = fs::File::create(&path)?;
            writeln!(f, "{header}")?;
            f.flush()?;
            f
        };
        Ok(SweepJournal { done, file: Mutex::new(file), appended: AtomicU64::new(0) })
    }

    /// Steps loaded from a previous run (skippable on this one).
    pub fn loaded_steps(&self) -> u64 {
        self.done.len() as u64
    }

    fn lookup(&self, app: &str, step: u64) -> Option<&StepOutcome> {
        self.done.get(&(app.to_string(), step))
    }

    /// Append one completed step (single flushed write); returns how many
    /// steps this run has journaled so far.
    fn append(&self, app: &str, step: u64, outcome: &StepOutcome) -> u64 {
        let line = JournalLine { app: app.to_string(), step, outcome: outcome.clone() };
        if let Ok(json) = serde_json::to_string(&line) {
            let mut buf = json.into_bytes();
            buf.push(b'\n');
            let mut f = self.file.lock().expect("journal file lock");
            let _ = f.write_all(&buf);
            let _ = f.flush();
        }
        self.appended.fetch_add(1, Ordering::SeqCst) + 1
    }
}

/// Controls for one resumable/interruptible sweep run.
#[derive(Default)]
pub struct SweepSession<'a> {
    /// Completed steps are appended here and journaled steps skipped.
    pub journal: Option<&'a SweepJournal>,
    /// Cooperative interrupt: after this many freshly journaled steps,
    /// cancel the session (deterministic stand-in for Ctrl-C in tests and
    /// CI; see `DEEPMC_SWEEP_INTERRUPT_AFTER`).
    pub trip_after: Option<u64>,
    cancelled: AtomicBool,
}

impl<'a> SweepSession<'a> {
    /// A session with a journal and an optional cooperative trip point.
    pub fn new(journal: Option<&'a SweepJournal>, trip_after: Option<u64>) -> SweepSession<'a> {
        SweepSession { journal, trip_after, cancelled: AtomicBool::new(false) }
    }

    /// Request cancellation: no further crash steps start, in-flight ones
    /// drain, the journal stays flushed.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Has the session been cancelled?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// Result of a [`sweep_session`] run.
pub struct SweepRun {
    /// Per-app outcomes, in app order (partial if interrupted).
    pub outcomes: Vec<SweepOutcome>,
    /// Steps replayed from the journal instead of re-executed.
    pub resumed_steps: u64,
    /// Steps not executed because the session was cancelled.
    pub skipped_steps: u64,
}

impl SweepRun {
    /// Did cancellation leave steps unexecuted (results are partial)?
    pub fn interrupted(&self) -> bool {
        self.skipped_steps > 0
    }
}

/// What one pool job produced for a crash step.
enum StepResult {
    /// Session cancelled before the step started.
    Skipped,
    /// Replayed from the journal.
    Resumed(StepOutcome),
    /// Freshly executed.
    Computed(StepOutcome),
}

/// Sweep one application: crash after every op under every policy.
///
/// Crash steps fan out over a work-stealing pool sized by
/// [`SweepConfig::jobs`]; per-step results merge in step order, so the
/// outcome (counter for counter, violation for violation) is identical
/// for any worker count.
pub fn sweep_app(cfg: &SweepConfig, app: SweepApp) -> SweepOutcome {
    sweep_app_session(cfg, app, &SweepSession::default()).0
}

/// [`sweep_app`] under a session; returns `(outcome, resumed, skipped)`.
fn sweep_app_session(
    cfg: &SweepConfig,
    app: SweepApp,
    session: &SweepSession<'_>,
) -> (SweepOutcome, u64, u64) {
    let _s = obs::span_lazy("sweep.app", || vec![("app", app.name().to_string())]);
    let total_steps = script(cfg).len();
    let mut outcome = SweepOutcome {
        app: app.name(),
        images_checked: 0,
        records_dropped: 0,
        flushes_dropped: 0,
        fault_attributed: 0,
        bug_attributed: 0,
        dynamic_reports: 0,
        violations: Vec::new(),
    };
    if session.is_cancelled() {
        return (outcome, 0, total_steps as u64);
    }
    outcome.dynamic_reports = dynamic_cross_check(cfg, app);
    let jobs = resolve_jobs((cfg.jobs > 0).then_some(cfg.jobs));
    let steps: Vec<usize> = (1..=total_steps).collect();
    let results = run_indexed(jobs, steps, |_, crash_step| {
        if session.is_cancelled() {
            return StepResult::Skipped;
        }
        if let Some(journal) = session.journal {
            if let Some(done) = journal.lookup(app.name(), crash_step as u64) {
                obs::counter("sweep.resumed_steps", 1);
                return StepResult::Resumed(done.clone());
            }
        }
        let out = sweep_step(cfg, app, crash_step);
        if let Some(journal) = session.journal {
            let journaled = journal.append(app.name(), crash_step as u64, &out);
            if session.trip_after.is_some_and(|t| journaled >= t) {
                session.cancel();
            }
        }
        StepResult::Computed(out)
    });
    let mut resumed = 0u64;
    let mut skipped = 0u64;
    for result in results {
        let step = match result {
            StepResult::Skipped => {
                skipped += 1;
                continue;
            }
            StepResult::Resumed(s) => {
                resumed += 1;
                s
            }
            StepResult::Computed(s) => s,
        };
        outcome.images_checked += step.images_checked;
        outcome.records_dropped += step.records_dropped;
        outcome.flushes_dropped += step.flushes_dropped;
        outcome.fault_attributed += step.fault_attributed;
        outcome.bug_attributed += step.bug_attributed;
        outcome.violations.extend(step.violations);
    }
    (outcome, resumed, skipped)
}

/// One instrumented, crash-free run of the same script: the dynamic
/// checker must stay quiet on the correct applications.
fn dynamic_cross_check(cfg: &SweepConfig, app: SweepApp) -> usize {
    let _s = obs::span_lazy("sweep.dynamic", || vec![("app", app.name().to_string())]);
    let pool = PmemPool::new(PoolConfig { size: 4 << 20, shards: 8, ..Default::default() });
    let heap = PmemHeap::open(&pool);
    let tracker = DeepMcTracker::new();
    let strand = tracker.region_begin();
    let ctx = ClientCtx { id: 0, tracker: &tracker, strand };
    let ops = script(cfg);
    match app {
        SweepApp::Memcached => {
            let mc = Memcached::new(&pool, &heap, 8);
            for op in &ops {
                match *op {
                    Op::Set { key, val } => {
                        mc.set(key, val, &tracker, &ctx);
                    }
                    Op::Del { key } => {
                        mc.set(key, 0xDEAD, &tracker, &ctx);
                    }
                    Op::Barrier => mc.epoch_barrier(&tracker),
                }
            }
        }
        SweepApp::Redis => {
            let r = Redis::new(&pool, &heap, 8, 1 << 16);
            for op in &ops {
                match *op {
                    Op::Set { key, val } => r.set(key, val, &tracker, strand),
                    Op::Del { key } => {
                        r.del(key, &tracker, strand);
                    }
                    Op::Barrier => {}
                }
            }
        }
        SweepApp::NStore => {
            let db = NStore::new(&pool, &heap, 8, 1 << 16);
            for op in &ops {
                match *op {
                    Op::Set { key, val } => {
                        db.put(key, [val, val ^ 1, val ^ 2, val ^ 3], &tracker, strand)
                    }
                    Op::Del { key } => db.put(key, [7, 7, 7, 7], &tracker, strand),
                    Op::Barrier => {}
                }
            }
        }
    }
    let reports = tracker.reports().len();
    obs::counter("sweep.dynamic_reports", reports as u64);
    obs::counter("dynamic.shadow_cells", tracker.shadow_cells() as u64);
    reports
}

/// Sweep a set of applications.
pub fn sweep(cfg: &SweepConfig, apps: &[SweepApp]) -> Vec<SweepOutcome> {
    apps.iter().map(|&a| sweep_app(cfg, a)).collect()
}

/// Sweep a set of applications under a [`SweepSession`]: journaled steps
/// are replayed, fresh steps are journaled as they complete, and
/// cancellation drains in-flight workers then stops.
pub fn sweep_session(cfg: &SweepConfig, apps: &[SweepApp], session: &SweepSession<'_>) -> SweepRun {
    let mut run = SweepRun { outcomes: Vec::new(), resumed_steps: 0, skipped_steps: 0 };
    for &app in apps {
        let (outcome, resumed, skipped) = sweep_app_session(cfg, app, session);
        run.outcomes.push(outcome);
        run.resumed_steps += resumed;
        run.skipped_steps += skipped;
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64) -> SweepConfig {
        SweepConfig { seed, steps: 12, random_seeds: 1, ..Default::default() }
    }

    #[test]
    fn clean_sweep_has_no_violations() {
        for outcome in sweep(&small(3), &SweepApp::ALL) {
            assert!(
                outcome.violations.is_empty(),
                "{}: {:?}",
                outcome.app,
                outcome.violations.first()
            );
            assert_eq!(outcome.records_dropped, 0, "no faults, nothing to drop");
            assert_eq!(outcome.flushes_dropped, 0, "no faults, no clwbs dropped");
            assert_eq!(outcome.dynamic_reports, 0, "correct apps race-free");
            assert!(outcome.images_checked > 0);
        }
    }

    #[test]
    fn faulty_sweep_attributes_losses_without_violations() {
        let cfg = SweepConfig {
            fault: FaultConfig {
                torn_store_rate: 0.3,
                dropped_flush_rate: 0.1,
                poison_rate: 0.005,
                ..Default::default()
            },
            ..small(7)
        };
        let mut any_attributed = 0;
        let mut any_flushes_dropped = 0;
        for outcome in sweep(&cfg, &SweepApp::ALL) {
            assert!(
                outcome.violations.is_empty(),
                "{}: {:?}",
                outcome.app,
                outcome.violations.first()
            );
            any_attributed += outcome.fault_attributed + outcome.records_dropped;
            any_flushes_dropped += outcome.flushes_dropped;
        }
        assert!(any_attributed > 0, "these rates must cost something");
        assert!(any_flushes_dropped > 0, "a 10% dropped-clwb rate must show in pool stats");
    }

    #[test]
    fn injected_bug_is_caught_and_attributed() {
        let cfg = SweepConfig { inject_bug: true, ..small(5) };
        let outcome = sweep_app(&cfg, SweepApp::NStore);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations.first());
        assert!(
            outcome.bug_attributed > 0,
            "the sweep must observe acked transactions lost to the bug"
        );
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let cfg = SweepConfig {
            fault: FaultConfig {
                torn_store_rate: 0.2,
                dropped_flush_rate: 0.05,
                ..Default::default()
            },
            inject_bug: true,
            ..small(11)
        };
        let seq = sweep_app(&SweepConfig { jobs: 1, ..cfg }, SweepApp::NStore);
        let par = sweep_app(&SweepConfig { jobs: 4, ..cfg }, SweepApp::NStore);
        // Display renders every counter and every violation — comparing
        // the rendered form checks the merge is order-identical too.
        assert_eq!(seq.to_string(), par.to_string());
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let a = sweep_app(&small(9), SweepApp::Redis);
        let b = sweep_app(&small(9), SweepApp::Redis);
        assert_eq!(a.images_checked, b.images_checked);
        assert_eq!(a.records_dropped, b.records_dropped);
        assert_eq!(a.fault_attributed, b.fault_attributed);
        assert_eq!(a.violations.len(), b.violations.len());
    }

    fn outcomes_text(outcomes: &[SweepOutcome]) -> String {
        outcomes.iter().map(|o| o.to_string()).collect()
    }

    #[test]
    fn interrupted_sweep_resumes_to_identical_attribution() {
        let dir = std::env::temp_dir().join(format!("deepmc-sweep-j1-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("sweep.journal");
        let cfg = SweepConfig { inject_bug: true, jobs: 2, ..small(13) };
        let apps = [SweepApp::NStore];

        // Ground truth: an uninterrupted sweep with no journal.
        let straight = sweep(&cfg, &apps);

        // Run 1: cancel after 4 freshly journaled steps.
        let journal = SweepJournal::open(&journal_path, &cfg, &apps, false).unwrap();
        let session =
            SweepSession { journal: Some(&journal), trip_after: Some(4), ..Default::default() };
        let first = sweep_session(&cfg, &apps, &session);
        assert!(first.interrupted(), "trip_after must cancel mid-sweep");
        assert!(first.skipped_steps > 0);
        drop(journal);

        // Run 2: resume. Journaled steps replay; the rest execute.
        let journal = SweepJournal::open(&journal_path, &cfg, &apps, true).unwrap();
        let loaded = journal.loaded_steps();
        assert!(loaded >= 4, "at least the tripped steps were journaled, got {loaded}");
        let session = SweepSession { journal: Some(&journal), ..Default::default() };
        let second = sweep_session(&cfg, &apps, &session);
        assert!(!second.interrupted());
        assert_eq!(second.resumed_steps, loaded, "every journaled step is skipped, not re-run");
        assert_eq!(
            outcomes_text(&second.outcomes),
            outcomes_text(&straight),
            "resumed sweep must match the uninterrupted one byte for byte"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_for_different_config_is_discarded() {
        let dir = std::env::temp_dir().join(format!("deepmc-sweep-j2-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("sweep.journal");
        let apps = [SweepApp::Redis];
        let cfg_a = small(1);
        let cfg_b = small(2);
        let journal = SweepJournal::open(&journal_path, &cfg_a, &apps, false).unwrap();
        let session = SweepSession { journal: Some(&journal), ..Default::default() };
        let _ = sweep_session(&cfg_a, &apps, &session);
        drop(journal);
        // Resuming under a different seed must not replay cfg_a's steps.
        let journal = SweepJournal::open(&journal_path, &cfg_b, &apps, true).unwrap();
        assert_eq!(journal.loaded_steps(), 0, "mismatched journal starts fresh");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_journal_line_is_tolerated() {
        let dir = std::env::temp_dir().join(format!("deepmc-sweep-j3-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("sweep.journal");
        let apps = [SweepApp::Redis];
        let cfg = small(4);
        let journal = SweepJournal::open(&journal_path, &cfg, &apps, false).unwrap();
        let session = SweepSession { journal: Some(&journal), ..Default::default() };
        let straight = sweep_session(&cfg, &apps, &session);
        drop(journal);
        // Simulate a hard kill mid-append: truncate the last line in half.
        let text = fs::read_to_string(&journal_path).unwrap();
        let full_steps = text.trim_end().lines().count() - 1;
        let keep = text.trim_end().rfind('\n').unwrap() + 1;
        let torn = format!("{}{}", &text[..keep], &text[keep..keep + (text.len() - keep) / 2]);
        fs::write(&journal_path, torn).unwrap();
        let journal = SweepJournal::open(&journal_path, &cfg, &apps, true).unwrap();
        assert_eq!(journal.loaded_steps() as usize, full_steps - 1, "only the torn step is lost");
        let session = SweepSession { journal: Some(&journal), ..Default::default() };
        let resumed = sweep_session(&cfg, &apps, &session);
        assert_eq!(
            outcomes_text(&resumed.outcomes),
            outcomes_text(&straight.outcomes),
            "the torn step re-executes and the result is unchanged"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
