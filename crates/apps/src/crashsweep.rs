//! Systematic crash-point sweep under fault injection.
//!
//! The paper validates reported bugs by manually constructing the crash
//! state each bug implies and running the application's recovery on it
//! (§6.2). This module automates that at scale: a deterministic scripted
//! workload runs against a fault-injecting pool, crashes at **every** op
//! boundary under every [`CrashPolicy`] (plus extra `Random` seeds),
//! reboots the surviving image, runs the application's `recover()`, and
//! checks application-level invariants:
//!
//! 1. **No corruption** — every recovered value was actually written by
//!    the workload (checksums filtered torn records).
//! 2. **Acked durability** — every durably-acknowledged update is present
//!    after recovery, *unless* the loss is attributable to an injected
//!    fault (the recovery report dropped records, or the fault plan
//!    dropped a `clwb`) or to the deliberately injected application bug.
//!
//! With [`SweepConfig::oracle`] set, two stronger output-equivalence
//! oracles run against the operation history the workload driver records
//! ([`crate::workloads::OpHistory`]):
//!
//! 3. **No rollback past an ack** — a recovered value must have been
//!    written at or after the key's last acknowledged update.
//! 4. **Prefix cut** (strict apps) — the recovered state as a whole must
//!    equal the state after some prefix of the operation history.
//!
//! With all fault rates zero and no injected bug the sweep must be
//! violation-free — that is the regression contract. With
//! [`SweepConfig::inject_bug`] set, each app runs with a seeded
//! ground-truth bug (NStore: commit mark never flushed; Memcached: epoch
//! barrier without the fence; Redis: AOF entry appended but never
//! persisted) and the sweep must *catch* it, attributing every loss to
//! the bug. A full instrumented pass ([`crate::tracker::DeepMcTracker`])
//! runs once per app as a dynamic cross-check; correct apps report no
//! races.
//!
//! Crash steps are independent (each builds its own pool from scratch),
//! so the sweep fans them out over the shared work-stealing pool
//! ([`deepmc_analysis::pool`]) and merges per-step results in step order
//! — the outcome is identical for any [`SweepConfig::jobs`] value.
//!
//! With [`SweepConfig::prune`] set, the sweep runs as a pruned
//! crash-state *exploration* ([`crate::explore`]): crash points whose
//! post-crash pool image and oracle-relevant history coincide are
//! collapsed into one equivalence class, and only one representative per
//! class is recovered and validated; its verdict propagates to every
//! member. Counter for counter and violation for violation, the pruned
//! sweep reports exactly what the exhaustive one would.
//!
//! Sweeps are *resumable*: with a [`SweepJournal`] attached, every
//! completed crash step is appended (one flushed line each) as it
//! finishes, and a later run over the same config skips journaled steps
//! and replays their recorded outcomes. Because each line is written and
//! flushed atomically enough to survive a hard kill (a torn trailing
//! line is simply re-executed), even a SIGKILLed sweep resumes from its
//! last completed step. An *interior* corrupt line, by contrast, means
//! the journal can no longer be trusted: it is quarantined and the open
//! fails loudly rather than silently desynchronizing the replay.
//! Cooperative interruption ([`SweepSession`]) stops scheduling new
//! steps, drains in-flight workers, and leaves the journal flushed.

use crate::memcached::Memcached;
use crate::nstore::NStore;
use crate::recovery::checksum;
use crate::redis::Redis;
use crate::tracker::{DeepMcTracker, NoopTracker, Tracker};
use crate::workloads::{sweep_script, ClientCtx, OpHistory, ScriptOp};
use deepmc_analysis::pool::{resolve_jobs_request, run_indexed};
use deepmc_obs as obs;
use nvm_runtime::{CrashImage, CrashPolicy, FaultConfig, PmemHeap, PmemPool, PoolConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Which applications to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepApp {
    Memcached,
    Redis,
    NStore,
}

impl SweepApp {
    pub const ALL: [SweepApp; 3] = [SweepApp::Memcached, SweepApp::Redis, SweepApp::NStore];

    pub fn name(&self) -> &'static str {
        match self {
            SweepApp::Memcached => "memcached",
            SweepApp::Redis => "redis",
            SweepApp::NStore => "nstore",
        }
    }
}

/// Sweep parameters. Everything is deterministic in `seed`.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Workload/script seed (also feeds the crash-policy Random seeds).
    pub seed: u64,
    /// Ops per workload run; the sweep crashes after each one.
    pub steps: u64,
    /// Extra `CrashPolicy::Random` seeds beyond the three deterministic
    /// policies.
    pub random_seeds: u64,
    /// Fault-injection rates for the pool under test.
    pub fault: FaultConfig,
    /// Inject each app's seeded ground-truth bug (NStore: commit mark
    /// never persisted; Memcached: epoch barrier without the fence;
    /// Redis: AOF entry never persisted).
    pub inject_bug: bool,
    /// Collapse crash points with identical persisted state + history
    /// into equivalence classes and validate one representative each
    /// ([`crate::explore`]). The reported outcome is identical to the
    /// exhaustive sweep's.
    pub prune: bool,
    /// Enable the stronger output-equivalence oracles (rollback-past-ack
    /// and prefix-cut) on top of the two base invariants.
    pub oracle: bool,
    /// Worker threads for the crash-step fan-out; `0` resolves via
    /// `DEEPMC_JOBS` then the machine's available parallelism. Each crash
    /// step is an independent work item (its own pool, script prefix, and
    /// crash images), and per-step results merge in step order, so the
    /// outcome is identical for any worker count.
    pub jobs: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 1,
            steps: 24,
            random_seeds: 2,
            fault: FaultConfig::default(),
            inject_bug: false,
            prune: false,
            oracle: false,
            jobs: 0,
        }
    }
}

/// One unattributed invariant violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    pub app: String,
    pub crash_step: u64,
    pub policy: String,
    pub key: u64,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: crash@{} [{}] key {}: {}",
            self.app, self.crash_step, self.policy, self.key, self.detail
        )
    }
}

/// Results of sweeping one application.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    pub app: &'static str,
    /// Crash states checked (members of validated equivalence classes in
    /// pruned mode — the pruned and exhaustive counts are equal).
    pub images_checked: u64,
    /// Crash states actually recovered and validated: equals
    /// `images_checked` exhaustively, one per equivalence class pruned.
    pub states_explored: u64,
    /// Crash states whose verdict was propagated from an equivalent
    /// representative instead of being re-validated.
    pub states_pruned: u64,
    /// Records dropped by recovery across all images (torn + poisoned).
    pub records_dropped: u64,
    /// `clwb`s dropped by fault injection across all pre-crash runs (from
    /// [`nvm_runtime::StatsSnapshot::dropped_flushes`]) — the evidence the
    /// fault-attribution path leans on.
    pub flushes_dropped: u64,
    /// Acked keys found missing but attributed to injected faults.
    pub fault_attributed: u64,
    /// Acked keys found missing and attributed to the injected app bug.
    pub bug_attributed: u64,
    /// Races the instrumented (no-crash) pass reported.
    pub dynamic_reports: usize,
    /// Violations nothing explains — real failures.
    pub violations: Vec<Violation>,
}

impl SweepOutcome {
    pub(crate) fn empty(app: SweepApp) -> SweepOutcome {
        SweepOutcome {
            app: app.name(),
            images_checked: 0,
            states_explored: 0,
            states_pruned: 0,
            records_dropped: 0,
            flushes_dropped: 0,
            fault_attributed: 0,
            bug_attributed: 0,
            dynamic_reports: 0,
            violations: Vec::new(),
        }
    }
}

impl fmt::Display for SweepOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>4} images  {:>4} explored  {:>4} pruned  {:>4} dropped  \
             {:>4} clwb-dropped  {:>4} fault-attr  {:>4} bug-attr  {:>2} dyn-reports  \
             {} violations",
            self.app,
            self.images_checked,
            self.states_explored,
            self.states_pruned,
            self.records_dropped,
            self.flushes_dropped,
            self.fault_attributed,
            self.bug_attributed,
            self.dynamic_reports,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  VIOLATION {v}")?;
        }
        Ok(())
    }
}

/// The deterministic sweep script for this config.
pub(crate) fn script(cfg: &SweepConfig) -> Vec<ScriptOp> {
    sweep_script(cfg.seed, cfg.steps)
}

/// The crash policies swept: the three deterministic ones plus
/// `random_seeds` random evictions derived from the sweep seed.
pub(crate) fn policies(cfg: &SweepConfig) -> Vec<CrashPolicy> {
    let mut out = vec![CrashPolicy::Pessimistic, CrashPolicy::Optimistic, CrashPolicy::PendingOnly];
    for i in 0..cfg.random_seeds {
        out.push(CrashPolicy::Random(checksum(cfg.seed, &[0x5EED, i])));
    }
    out
}

pub(crate) fn policy_name(p: &CrashPolicy) -> String {
    match p {
        CrashPolicy::Pessimistic => "pessimistic".into(),
        CrashPolicy::Optimistic => "optimistic".into(),
        CrashPolicy::PendingOnly => "pending-only".into(),
        CrashPolicy::Random(s) => format!("random({s:#x})"),
    }
}

pub(crate) struct AppRun {
    pub(crate) pool: PmemPool,
    pub(crate) history: OpHistory,
}

/// Run the script prefix `0..crash_step` against a fresh fault-injecting
/// pool. Returns the pool ready to crash plus the recorded operation
/// history (writes, acks with positions, and buggy-path keys) the
/// post-recovery oracles compare against.
pub(crate) fn run_prefix(cfg: &SweepConfig, app: SweepApp, crash_step: usize) -> AppRun {
    let pool = PmemPool::with_faults(
        PoolConfig { size: 4 << 20, shards: 8, ..Default::default() },
        FaultConfig { seed: cfg.seed ^ crash_step as u64, ..cfg.fault },
    );
    let mut history = OpHistory::default();
    let ops = script(cfg);
    let noop = NoopTracker;
    let ctx = ClientCtx { id: 0, tracker: &noop, strand: None };
    {
        let heap = PmemHeap::open(&pool);
        // Pending acks for epoch style: promoted to acked at barriers.
        let mut pending: HashMap<u64, u64> = HashMap::new();
        match app {
            SweepApp::Memcached => {
                let mc = Memcached::new(&pool, &heap, 8);
                for (i, op) in ops.iter().take(crash_step).enumerate() {
                    match *op {
                        ScriptOp::Set { key, val } => {
                            mc.set(key, val, &noop, &ctx);
                            history.record_write(i as u64, key, val);
                            pending.insert(key, val);
                        }
                        // The mini-Memcached has no delete command in its
                        // protocol surface; script deletes become sets.
                        ScriptOp::Del { key } => {
                            mc.set(key, 0xDEAD, &noop, &ctx);
                            history.record_write(i as u64, key, 0xDEAD);
                            pending.insert(key, 0xDEAD);
                        }
                        ScriptOp::Barrier => {
                            if cfg.inject_bug {
                                mc.epoch_barrier_skip_fence(&noop);
                            } else {
                                mc.epoch_barrier(&noop);
                            }
                            for (k, v) in pending.drain() {
                                history.ack(k, i as u64, v, cfg.inject_bug);
                            }
                        }
                    }
                }
            }
            SweepApp::Redis => {
                let r = Redis::new(&pool, &heap, 8, 1 << 16);
                for (i, op) in ops.iter().take(crash_step).enumerate() {
                    match *op {
                        ScriptOp::Set { key, val } => {
                            history.record_write(i as u64, key, val);
                            if cfg.inject_bug && i % 4 == 3 {
                                r.set_skip_aof_persist(key, val, &noop, None);
                                history.ack(key, i as u64, val, true);
                            } else {
                                r.set(key, val, &noop, None);
                                history.ack(key, i as u64, val, false);
                            }
                        }
                        ScriptOp::Del { key } => {
                            r.del(key, &noop, None);
                            history.unack(key);
                        }
                        ScriptOp::Barrier => {}
                    }
                }
            }
            SweepApp::NStore => {
                let db = NStore::new(&pool, &heap, 8, 1 << 16);
                for (i, op) in ops.iter().take(crash_step).enumerate() {
                    match *op {
                        ScriptOp::Set { key, val } => {
                            let cols = [val, val ^ 1, val ^ 2, val ^ 3];
                            let buggy = cfg.inject_bug && i % 4 == 3;
                            if buggy {
                                db.put_skip_commit_persist(key, cols, &noop, None);
                            } else {
                                db.put(key, cols, &noop, None);
                            }
                            history.record_write(i as u64, key, val);
                            history.ack(key, i as u64, val, buggy);
                        }
                        // NStore has no delete; treat as an overwrite.
                        ScriptOp::Del { key } => {
                            let buggy = cfg.inject_bug && i % 4 == 3;
                            if buggy {
                                db.put_skip_commit_persist(key, [7, 7, 7, 7], &noop, None);
                            } else {
                                db.put(key, [7, 7, 7, 7], &noop, None);
                            }
                            history.record_write(i as u64, key, 7);
                            history.ack(key, i as u64, 7, buggy);
                        }
                        ScriptOp::Barrier => {}
                    }
                }
            }
        }
    }
    AppRun { pool, history }
}

/// Per-crash-step partial results. Each crash step is self-contained —
/// its own fault-injecting pool, script prefix, and crash images — so
/// steps run independently on the worker pool and merge in step order.
/// Serializable: a completed step's outcome is journaled verbatim and
/// replayed on `--resume` instead of re-executing the step.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub(crate) struct StepOutcome {
    pub(crate) images_checked: u64,
    pub(crate) records_dropped: u64,
    pub(crate) flushes_dropped: u64,
    pub(crate) fault_attributed: u64,
    pub(crate) bug_attributed: u64,
    pub(crate) violations: Vec<Violation>,
}

/// Does `recovered` equal the state after *some* prefix of the op
/// history? Only meaningful for the strict apps (every op acks as it
/// completes); Memcached's epoch batching makes any barrier-consistent
/// mix legal, so it is excluded.
fn matches_some_prefix(
    cfg: &SweepConfig,
    app: SweepApp,
    crash_step: usize,
    recovered: &HashMap<u64, u64>,
) -> bool {
    let ops = script(cfg);
    // Most images sit exactly at the crash point; search backwards.
    for t in (0..=crash_step).rev() {
        let mut state: HashMap<u64, u64> = HashMap::new();
        for op in ops.iter().take(t) {
            match (app, *op) {
                (_, ScriptOp::Set { key, val }) => {
                    state.insert(key, val);
                }
                (SweepApp::Redis, ScriptOp::Del { key }) => {
                    state.remove(&key);
                }
                (SweepApp::NStore, ScriptOp::Del { key }) => {
                    state.insert(key, 7);
                }
                _ => {}
            }
        }
        if &state == recovered {
            return true;
        }
    }
    false
}

/// Reboot one crash image, run recovery, and check every invariant (plus
/// the [`SweepConfig::oracle`] oracles), accumulating into `outcome`.
/// Shared by the exhaustive sweep and the pruned explorer — a pruned
/// representative is validated by exactly this code.
#[allow(clippy::too_many_arguments)]
pub(crate) fn validate_image(
    cfg: &SweepConfig,
    app: SweepApp,
    crash_step: usize,
    policy: &CrashPolicy,
    img: &CrashImage,
    history: &OpHistory,
    flush_faults: u64,
    outcome: &mut StepOutcome,
) {
    let pool2 = img.reboot(8);
    let heap2 = PmemHeap::open(&pool2);
    outcome.images_checked += 1;
    let (recovered, report): (HashMap<u64, u64>, _) = match app {
        SweepApp::Memcached => {
            let (mc, rep) = Memcached::recover(&pool2, &heap2, 8);
            let noop = NoopTracker;
            let ctx = ClientCtx { id: 0, tracker: &noop, strand: None };
            let m = history.keys().filter_map(|k| mc.get(k, &noop, &ctx).map(|v| (k, v))).collect();
            (m, rep)
        }
        SweepApp::Redis => {
            let (r, rep) = Redis::recover(&pool2, &heap2, 8, 1 << 16);
            let m = history
                .keys()
                .filter_map(|k| r.get(k, &NoopTracker, None).map(|v| (k, v)))
                .collect();
            (m, rep)
        }
        SweepApp::NStore => {
            let (db, rep) = NStore::recover(&pool2, &heap2, 8, 1 << 16);
            let m = history
                .keys()
                .filter_map(|k| db.read(k, 0, &NoopTracker, None).map(|v| (k, v)))
                .collect();
            (m, rep)
        }
    };
    outcome.records_dropped += report.dropped();
    let attributable = report.dropped() > 0 || flush_faults > 0;
    let violation = |key: u64, detail: String| Violation {
        app: app.name().to_string(),
        crash_step: crash_step as u64,
        policy: policy_name(policy),
        key,
        detail,
    };
    // Keys are visited in sorted order so violation order is stable
    // across worker counts *and* processes (HashMap order is neither).
    let mut recovered_keys: Vec<u64> = recovered.keys().copied().collect();
    recovered_keys.sort_unstable();
    // Invariant 1: no corruption — recovered values were written.
    for k in recovered_keys {
        let v = recovered[&k];
        if !history.was_written(k, v) {
            outcome
                .violations
                .push(violation(k, format!("recovered value {v:#x} was never written")));
        }
    }
    // Invariant 2: acked durability — and, under the oracle, no rollback
    // past the last acknowledged update.
    let mut acked_keys: Vec<u64> = history.acked().keys().copied().collect();
    acked_keys.sort_unstable();
    for k in acked_keys {
        let (pos, want) = history.acked()[&k];
        match recovered.get(&k) {
            None => {
                if history.is_buggy(k) {
                    outcome.bug_attributed += 1;
                } else if attributable {
                    outcome.fault_attributed += 1;
                } else {
                    outcome.violations.push(violation(
                        k,
                        "acked key missing after recovery with no fault to blame".into(),
                    ));
                }
            }
            Some(&got) => {
                if cfg.oracle && got != want && !history.written_at_or_after(k, pos, got) {
                    if history.is_buggy(k) {
                        outcome.bug_attributed += 1;
                    } else if attributable {
                        outcome.fault_attributed += 1;
                    } else {
                        outcome.violations.push(violation(
                            k,
                            format!("acked value {want:#x} rolled back to stale {got:#x}"),
                        ));
                    }
                }
            }
        }
    }
    // Oracle: the strict apps' recovered state must be a prefix cut of
    // the op history. Skipped when a fault or the seeded bug already
    // explains a divergence (the prefix property only holds fault-free).
    if cfg.oracle
        && app != SweepApp::Memcached
        && !attributable
        && !history.any_buggy()
        && !matches_some_prefix(cfg, app, crash_step, &recovered)
    {
        outcome
            .violations
            .push(violation(0, "recovered state matches no prefix of the op history".into()));
    }
}

/// Crash after op `crash_step` under every policy and check invariants.
fn sweep_step(cfg: &SweepConfig, app: SweepApp, crash_step: usize) -> StepOutcome {
    let _s = obs::span_lazy("sweep.step", || {
        vec![("app", app.name().to_string()), ("step", crash_step.to_string())]
    });
    let mut outcome = StepOutcome::default();
    {
        let run = run_prefix(cfg, app, crash_step);
        // Faults already injected into this run: recovery drops plus
        // silently dropped clwbs both license missing acked data. The
        // pool's own counter (not the fault plan's) is authoritative:
        // it records exactly the drops this run experienced.
        let flush_faults = run.pool.stats().dropped_flushes;
        outcome.flushes_dropped += flush_faults;
        for policy in policies(cfg) {
            let img = policy.apply(&run.pool);
            validate_image(
                cfg,
                app,
                crash_step,
                &policy,
                &img,
                &run.history,
                flush_faults,
                &mut outcome,
            );
        }
    }
    obs::counter("sweep.images_checked", outcome.images_checked);
    obs::counter("sweep.records_dropped", outcome.records_dropped);
    obs::counter("sweep.flushes_dropped", outcome.flushes_dropped);
    obs::counter("sweep.fault_attributed", outcome.fault_attributed);
    obs::counter("sweep.bug_attributed", outcome.bug_attributed);
    obs::counter("sweep.violations", outcome.violations.len() as u64);
    outcome
}

/// Magic first line of a sweep journal; ties the journal to one config.
/// v2 added the exploration entry kind and the prune/oracle flags in the
/// fingerprint — v1 journals fail the header check and start fresh.
const JOURNAL_MAGIC: &str = "deepmc-sweep-journal-v2";

/// FNV-1a 64-bit, local copy (stability across runs is what matters).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of everything that determines a step's outcome: seed, script
/// shape, fault plan, bug injection, prune/oracle modes, and the app set.
/// `jobs` is excluded on purpose — a journal written at `--jobs 4`
/// resumes at any worker count.
fn config_fingerprint(cfg: &SweepConfig, apps: &[SweepApp]) -> u64 {
    let mut text = format!(
        "seed={} steps={} random_seeds={} fault={:?} inject_bug={} prune={} oracle={}",
        cfg.seed, cfg.steps, cfg.random_seeds, cfg.fault, cfg.inject_bug, cfg.prune, cfg.oracle
    );
    for a in apps {
        text.push(' ');
        text.push_str(a.name());
    }
    fnv1a(text.as_bytes())
}

/// One validated class representative within a pruned crash step: the
/// policy index it was crashed under plus its verdict fragment.
#[derive(Clone, Serialize, Deserialize)]
pub(crate) struct ExploreFrag {
    pub(crate) policy: usize,
    pub(crate) outcome: StepOutcome,
}

/// One journaled unit of completed work.
#[derive(Clone, Serialize, Deserialize)]
pub(crate) enum JournalEntry {
    /// Exhaustive mode: one whole crash step.
    Step(StepOutcome),
    /// Pruned mode: the validated representative fragments of one crash
    /// step.
    Explore(Vec<ExploreFrag>),
}

/// One journaled line.
#[derive(Serialize, Deserialize)]
struct JournalLine {
    app: String,
    step: u64,
    entry: JournalEntry,
}

/// Append-only on-disk record of completed crash steps.
///
/// Layout: a header line binding the journal to a config fingerprint,
/// then one JSON line per completed step. Every append is a single
/// `write_all` + flush, so a killed sweep leaves at most one torn
/// *trailing* line — tolerated (skipped) on reload, costing one
/// re-executed step. A corrupt line anywhere *before* the last one means
/// the file was damaged after the fact; replaying around it would
/// silently desynchronize the resume, so the journal is quarantined
/// (renamed aside, like the analysis cache quarantines corrupt entries)
/// and the open fails with a clear error. Opening with `resume = false`,
/// or with a header that doesn't match the current config, truncates and
/// starts fresh.
pub struct SweepJournal {
    done: HashMap<(String, u64), JournalEntry>,
    file: Mutex<fs::File>,
    appended: AtomicU64,
}

impl SweepJournal {
    /// Open (or create) the journal at `path` for this config. With
    /// `resume`, previously journaled steps of a matching-config journal
    /// are loaded and later skipped by [`sweep_session`].
    pub fn open(
        path: impl Into<PathBuf>,
        cfg: &SweepConfig,
        apps: &[SweepApp],
        resume: bool,
    ) -> io::Result<SweepJournal> {
        let path = path.into();
        let header = format!("{JOURNAL_MAGIC} fingerprint={:016x}", config_fingerprint(cfg, apps));
        let mut done = HashMap::new();
        let mut reusable = false;
        if resume {
            if let Ok(text) = fs::read_to_string(&path) {
                let mut lines = text.lines();
                if lines.next() == Some(header.as_str()) {
                    reusable = true;
                    let body: Vec<&str> = lines.collect();
                    for (i, line) in body.iter().enumerate() {
                        match serde_json::from_str::<JournalLine>(line) {
                            Ok(jl) => {
                                done.insert((jl.app, jl.step), jl.entry);
                            }
                            // A torn *trailing* line is the expected
                            // residue of a hard kill mid-append: skip it
                            // and re-execute that one step.
                            Err(_) if i + 1 == body.len() => {}
                            // An unparsable *interior* line means the
                            // journal was corrupted after it was written.
                            // Quarantine it and fail the resume loudly.
                            Err(err) => {
                                let mut quarantined = path.clone().into_os_string();
                                quarantined.push(".quarantined");
                                let quarantined = PathBuf::from(quarantined);
                                let moved = fs::rename(&path, &quarantined).is_ok();
                                obs::warning(
                                    "sweep.journal_corrupt",
                                    &format!(
                                        "sweep journal {} has a corrupt interior entry \
                                         (line {} of {}): {err}",
                                        path.display(),
                                        i + 2,
                                        body.len() + 1,
                                    ),
                                );
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!(
                                        "sweep journal {} is corrupt at line {} (not the \
                                         trailing line, so this is damage, not a torn append); \
                                         resuming would silently desynchronize the sweep. {} \
                                         Rerun without --resume to start a fresh journal.",
                                        path.display(),
                                        i + 2,
                                        if moved {
                                            format!(
                                                "The journal was quarantined to {}.",
                                                quarantined.display()
                                            )
                                        } else {
                                            "The journal could not be moved aside.".to_string()
                                        },
                                    ),
                                ));
                            }
                        }
                    }
                } else {
                    obs::warning(
                        "sweep.journal_mismatch",
                        &format!(
                            "journal {} was written for a different sweep config; starting fresh",
                            path.display()
                        ),
                    );
                }
            }
        }
        let file = if reusable {
            fs::OpenOptions::new().append(true).open(&path)?
        } else {
            let mut f = fs::File::create(&path)?;
            writeln!(f, "{header}")?;
            f.flush()?;
            f
        };
        Ok(SweepJournal { done, file: Mutex::new(file), appended: AtomicU64::new(0) })
    }

    /// Steps loaded from a previous run (skippable on this one).
    pub fn loaded_steps(&self) -> u64 {
        self.done.len() as u64
    }

    fn lookup_step(&self, app: &str, step: u64) -> Option<&StepOutcome> {
        match self.done.get(&(app.to_string(), step)) {
            Some(JournalEntry::Step(outcome)) => Some(outcome),
            _ => None,
        }
    }

    pub(crate) fn lookup_explore(&self, app: &str, step: u64) -> Option<&Vec<ExploreFrag>> {
        match self.done.get(&(app.to_string(), step)) {
            Some(JournalEntry::Explore(frags)) => Some(frags),
            _ => None,
        }
    }

    /// Append one completed step (single flushed write); returns how many
    /// steps this run has journaled so far.
    pub(crate) fn append(&self, app: &str, step: u64, entry: &JournalEntry) -> u64 {
        let line = JournalLine { app: app.to_string(), step, entry: entry.clone() };
        if let Ok(json) = serde_json::to_string(&line) {
            let mut buf = json.into_bytes();
            buf.push(b'\n');
            let mut f = self.file.lock().expect("journal file lock");
            let _ = f.write_all(&buf);
            let _ = f.flush();
        }
        self.appended.fetch_add(1, Ordering::SeqCst) + 1
    }
}

/// Controls for one resumable/interruptible sweep run.
#[derive(Default)]
pub struct SweepSession<'a> {
    /// Completed steps are appended here and journaled steps skipped.
    pub journal: Option<&'a SweepJournal>,
    /// Cooperative interrupt: after this many freshly journaled steps,
    /// cancel the session (deterministic stand-in for Ctrl-C in tests and
    /// CI; see `DEEPMC_SWEEP_INTERRUPT_AFTER`).
    pub trip_after: Option<u64>,
    cancelled: AtomicBool,
}

impl<'a> SweepSession<'a> {
    /// A session with a journal and an optional cooperative trip point.
    pub fn new(journal: Option<&'a SweepJournal>, trip_after: Option<u64>) -> SweepSession<'a> {
        SweepSession { journal, trip_after, cancelled: AtomicBool::new(false) }
    }

    /// Request cancellation: no further crash steps start, in-flight ones
    /// drain, the journal stays flushed.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Has the session been cancelled?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// Result of a [`sweep_session`] run.
pub struct SweepRun {
    /// Per-app outcomes, in app order (partial if interrupted).
    pub outcomes: Vec<SweepOutcome>,
    /// Steps replayed from the journal instead of re-executed.
    pub resumed_steps: u64,
    /// Steps not executed because the session was cancelled.
    pub skipped_steps: u64,
}

impl SweepRun {
    /// Did cancellation leave steps unexecuted (results are partial)?
    pub fn interrupted(&self) -> bool {
        self.skipped_steps > 0
    }
}

/// What one pool job produced for a crash step.
enum StepResult {
    /// Session cancelled before the step started.
    Skipped,
    /// Replayed from the journal.
    Resumed(StepOutcome),
    /// Freshly executed.
    Computed(StepOutcome),
}

/// Sweep one application: crash after every op under every policy.
///
/// Crash steps fan out over a work-stealing pool sized by
/// [`SweepConfig::jobs`]; per-step results merge in step order, so the
/// outcome (counter for counter, violation for violation) is identical
/// for any worker count.
pub fn sweep_app(cfg: &SweepConfig, app: SweepApp) -> SweepOutcome {
    sweep_app_session(cfg, app, &SweepSession::default()).0
}

/// [`sweep_app`] under a session; returns `(outcome, resumed, skipped)`.
fn sweep_app_session(
    cfg: &SweepConfig,
    app: SweepApp,
    session: &SweepSession<'_>,
) -> (SweepOutcome, u64, u64) {
    if cfg.prune {
        return crate::explore::explore_app_session(cfg, app, session);
    }
    let _s = obs::span_lazy("sweep.app", || vec![("app", app.name().to_string())]);
    let total_steps = script(cfg).len();
    let mut outcome = SweepOutcome::empty(app);
    if session.is_cancelled() {
        return (outcome, 0, total_steps as u64);
    }
    outcome.dynamic_reports = dynamic_cross_check(cfg, app);
    let jobs = resolve_jobs_request(cfg.jobs);
    let steps: Vec<usize> = (1..=total_steps).collect();
    let results = run_indexed(jobs, steps, |_, crash_step| {
        if session.is_cancelled() {
            return StepResult::Skipped;
        }
        if let Some(journal) = session.journal {
            if let Some(done) = journal.lookup_step(app.name(), crash_step as u64) {
                obs::counter("sweep.resumed_steps", 1);
                return StepResult::Resumed(done.clone());
            }
        }
        let out = sweep_step(cfg, app, crash_step);
        if let Some(journal) = session.journal {
            let journaled =
                journal.append(app.name(), crash_step as u64, &JournalEntry::Step(out.clone()));
            if session.trip_after.is_some_and(|t| journaled >= t) {
                session.cancel();
            }
        }
        StepResult::Computed(out)
    });
    let mut resumed = 0u64;
    let mut skipped = 0u64;
    for result in results {
        let step = match result {
            StepResult::Skipped => {
                skipped += 1;
                continue;
            }
            StepResult::Resumed(s) => {
                resumed += 1;
                s
            }
            StepResult::Computed(s) => s,
        };
        outcome.images_checked += step.images_checked;
        outcome.records_dropped += step.records_dropped;
        outcome.flushes_dropped += step.flushes_dropped;
        outcome.fault_attributed += step.fault_attributed;
        outcome.bug_attributed += step.bug_attributed;
        outcome.violations.extend(step.violations);
    }
    // Exhaustively, every image checked was explored; nothing pruned.
    outcome.states_explored = outcome.images_checked;
    outcome.states_pruned = 0;
    obs::counter("sweep.explored", outcome.states_explored);
    obs::counter("sweep.pruned", outcome.states_pruned);
    (outcome, resumed, skipped)
}

/// One instrumented, crash-free run of the same script: the dynamic
/// checker must stay quiet on the correct applications.
pub(crate) fn dynamic_cross_check(cfg: &SweepConfig, app: SweepApp) -> usize {
    let _s = obs::span_lazy("sweep.dynamic", || vec![("app", app.name().to_string())]);
    let pool = PmemPool::new(PoolConfig { size: 4 << 20, shards: 8, ..Default::default() });
    let heap = PmemHeap::open(&pool);
    let tracker = DeepMcTracker::new();
    let strand = tracker.region_begin();
    let ctx = ClientCtx { id: 0, tracker: &tracker, strand };
    let ops = script(cfg);
    match app {
        SweepApp::Memcached => {
            let mc = Memcached::new(&pool, &heap, 8);
            for op in &ops {
                match *op {
                    ScriptOp::Set { key, val } => {
                        mc.set(key, val, &tracker, &ctx);
                    }
                    ScriptOp::Del { key } => {
                        mc.set(key, 0xDEAD, &tracker, &ctx);
                    }
                    ScriptOp::Barrier => mc.epoch_barrier(&tracker),
                }
            }
        }
        SweepApp::Redis => {
            let r = Redis::new(&pool, &heap, 8, 1 << 16);
            for op in &ops {
                match *op {
                    ScriptOp::Set { key, val } => r.set(key, val, &tracker, strand),
                    ScriptOp::Del { key } => {
                        r.del(key, &tracker, strand);
                    }
                    ScriptOp::Barrier => {}
                }
            }
        }
        SweepApp::NStore => {
            let db = NStore::new(&pool, &heap, 8, 1 << 16);
            for op in &ops {
                match *op {
                    ScriptOp::Set { key, val } => {
                        db.put(key, [val, val ^ 1, val ^ 2, val ^ 3], &tracker, strand)
                    }
                    ScriptOp::Del { key } => db.put(key, [7, 7, 7, 7], &tracker, strand),
                    ScriptOp::Barrier => {}
                }
            }
        }
    }
    let reports = tracker.reports().len();
    obs::counter("sweep.dynamic_reports", reports as u64);
    obs::counter("dynamic.shadow_cells", tracker.shadow_cells() as u64);
    reports
}

/// Sweep a set of applications.
pub fn sweep(cfg: &SweepConfig, apps: &[SweepApp]) -> Vec<SweepOutcome> {
    apps.iter().map(|&a| sweep_app(cfg, a)).collect()
}

/// Sweep a set of applications under a [`SweepSession`]: journaled steps
/// are replayed, fresh steps are journaled as they complete, and
/// cancellation drains in-flight workers then stops.
pub fn sweep_session(cfg: &SweepConfig, apps: &[SweepApp], session: &SweepSession<'_>) -> SweepRun {
    let mut run = SweepRun { outcomes: Vec::new(), resumed_steps: 0, skipped_steps: 0 };
    for &app in apps {
        let (outcome, resumed, skipped) = sweep_app_session(cfg, app, session);
        run.outcomes.push(outcome);
        run.resumed_steps += resumed;
        run.skipped_steps += skipped;
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64) -> SweepConfig {
        SweepConfig { seed, steps: 12, random_seeds: 1, ..Default::default() }
    }

    #[test]
    fn clean_sweep_has_no_violations() {
        for outcome in sweep(&small(3), &SweepApp::ALL) {
            assert!(
                outcome.violations.is_empty(),
                "{}: {:?}",
                outcome.app,
                outcome.violations.first()
            );
            assert_eq!(outcome.records_dropped, 0, "no faults, nothing to drop");
            assert_eq!(outcome.flushes_dropped, 0, "no faults, no clwbs dropped");
            assert_eq!(outcome.dynamic_reports, 0, "correct apps race-free");
            assert!(outcome.images_checked > 0);
            assert_eq!(outcome.states_explored, outcome.images_checked);
            assert_eq!(outcome.states_pruned, 0);
        }
    }

    #[test]
    fn clean_sweep_with_oracles_has_no_violations() {
        let cfg = SweepConfig { oracle: true, ..small(3) };
        for outcome in sweep(&cfg, &SweepApp::ALL) {
            assert!(
                outcome.violations.is_empty(),
                "{}: {:?}",
                outcome.app,
                outcome.violations.first()
            );
        }
    }

    #[test]
    fn faulty_sweep_attributes_losses_without_violations() {
        let cfg = SweepConfig {
            fault: FaultConfig {
                torn_store_rate: 0.3,
                dropped_flush_rate: 0.1,
                poison_rate: 0.005,
                ..Default::default()
            },
            ..small(7)
        };
        let mut any_attributed = 0;
        let mut any_flushes_dropped = 0;
        for outcome in sweep(&cfg, &SweepApp::ALL) {
            assert!(
                outcome.violations.is_empty(),
                "{}: {:?}",
                outcome.app,
                outcome.violations.first()
            );
            any_attributed += outcome.fault_attributed + outcome.records_dropped;
            any_flushes_dropped += outcome.flushes_dropped;
        }
        assert!(any_attributed > 0, "these rates must cost something");
        assert!(any_flushes_dropped > 0, "a 10% dropped-clwb rate must show in pool stats");
    }

    #[test]
    fn injected_bug_is_caught_and_attributed() {
        let cfg = SweepConfig { inject_bug: true, ..small(5) };
        let outcome = sweep_app(&cfg, SweepApp::NStore);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations.first());
        assert!(
            outcome.bug_attributed > 0,
            "the sweep must observe acked transactions lost to the bug"
        );
    }

    #[test]
    fn memcached_missing_fence_bug_is_caught() {
        // The skipped fence leaves acked records merely FlushPending; a
        // pessimistic crash right after a barrier rolls them back. The
        // rollback oracle is what catches the stale-value variant (an
        // older durable value survives, so presence alone looks fine).
        let cfg = SweepConfig { inject_bug: true, oracle: true, ..small(5) };
        let outcome = sweep_app(&cfg, SweepApp::Memcached);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations.first());
        assert!(outcome.bug_attributed > 0, "the missing-fence bug must be observed");
    }

    #[test]
    fn redis_unpersisted_aof_bug_is_caught() {
        let cfg = SweepConfig { inject_bug: true, oracle: true, ..small(5) };
        let outcome = sweep_app(&cfg, SweepApp::Redis);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations.first());
        assert!(outcome.bug_attributed > 0, "the unpersisted-AOF-append bug must be observed");
    }

    /// Field-for-field equality on everything but the explored/pruned
    /// split (which is the one thing pruning is allowed to change).
    fn assert_same_verdicts(ex: &SweepOutcome, pr: &SweepOutcome) {
        assert_eq!(ex.images_checked, pr.images_checked, "{}", ex.app);
        assert_eq!(ex.records_dropped, pr.records_dropped, "{}", ex.app);
        assert_eq!(ex.flushes_dropped, pr.flushes_dropped, "{}", ex.app);
        assert_eq!(ex.fault_attributed, pr.fault_attributed, "{}", ex.app);
        assert_eq!(ex.bug_attributed, pr.bug_attributed, "{}", ex.app);
        assert_eq!(ex.dynamic_reports, pr.dynamic_reports, "{}", ex.app);
        assert_eq!(ex.violations, pr.violations, "{}", ex.app);
    }

    #[test]
    fn pruned_sweep_matches_exhaustive_and_reduces_work() {
        for app in SweepApp::ALL {
            let base = SweepConfig { oracle: true, ..small(21) };
            let ex = sweep_app(&base, app);
            let pr = sweep_app(&SweepConfig { prune: true, ..base }, app);
            assert_same_verdicts(&ex, &pr);
            assert_eq!(pr.states_explored + pr.states_pruned, pr.images_checked, "{app:?}");
            assert!(
                pr.states_explored * 2 <= pr.images_checked,
                "{app:?}: explored {} of {} states — pruning must halve the work",
                pr.states_explored,
                pr.images_checked
            );
        }
    }

    #[test]
    fn pruned_sweep_still_catches_every_seeded_bug() {
        for app in SweepApp::ALL {
            let base = SweepConfig { inject_bug: true, oracle: true, ..small(5) };
            let ex = sweep_app(&base, app);
            let pr = sweep_app(&SweepConfig { prune: true, ..base }, app);
            assert_same_verdicts(&ex, &pr);
            assert!(pr.bug_attributed > 0, "{app:?}: pruning must not hide the seeded bug");
        }
    }

    #[test]
    fn transient_poison_does_not_split_equivalence_classes() {
        // Every poisoned line is transient: recovery retries through all
        // of them, so crash states differing only in transient-poison
        // scratch must land in the same class and pruning must still
        // collapse the policy fan-out.
        let cfg = SweepConfig {
            fault: FaultConfig { poison_rate: 0.01, transient_rate: 1.0, ..Default::default() },
            prune: true,
            oracle: true,
            ..small(17)
        };
        let pr = sweep_app(&cfg, SweepApp::Memcached);
        assert!(pr.violations.is_empty(), "{:?}", pr.violations.first());
        assert!(pr.states_pruned > 0, "transient-only poison must not defeat dedup");
        let ex = sweep_app(&SweepConfig { prune: false, ..cfg }, SweepApp::Memcached);
        assert_same_verdicts(&ex, &pr);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let cfg = SweepConfig {
            fault: FaultConfig {
                torn_store_rate: 0.2,
                dropped_flush_rate: 0.05,
                ..Default::default()
            },
            inject_bug: true,
            ..small(11)
        };
        let seq = sweep_app(&SweepConfig { jobs: 1, ..cfg }, SweepApp::NStore);
        let par = sweep_app(&SweepConfig { jobs: 4, ..cfg }, SweepApp::NStore);
        // Display renders every counter and every violation — comparing
        // the rendered form checks the merge is order-identical too.
        assert_eq!(seq.to_string(), par.to_string());
    }

    #[test]
    fn parallel_pruned_sweep_matches_sequential() {
        let cfg = SweepConfig { inject_bug: true, prune: true, oracle: true, ..small(11) };
        for app in SweepApp::ALL {
            let seq = sweep_app(&SweepConfig { jobs: 1, ..cfg }, app);
            let par = sweep_app(&SweepConfig { jobs: 4, ..cfg }, app);
            assert_eq!(seq.to_string(), par.to_string(), "{app:?}");
        }
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let a = sweep_app(&small(9), SweepApp::Redis);
        let b = sweep_app(&small(9), SweepApp::Redis);
        assert_eq!(a.images_checked, b.images_checked);
        assert_eq!(a.records_dropped, b.records_dropped);
        assert_eq!(a.fault_attributed, b.fault_attributed);
        assert_eq!(a.violations.len(), b.violations.len());
    }

    fn outcomes_text(outcomes: &[SweepOutcome]) -> String {
        outcomes.iter().map(|o| o.to_string()).collect()
    }

    #[test]
    fn interrupted_sweep_resumes_to_identical_attribution() {
        let dir = std::env::temp_dir().join(format!("deepmc-sweep-j1-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("sweep.journal");
        let cfg = SweepConfig { inject_bug: true, jobs: 2, ..small(13) };
        let apps = [SweepApp::NStore];

        // Ground truth: an uninterrupted sweep with no journal.
        let straight = sweep(&cfg, &apps);

        // Run 1: cancel after 4 freshly journaled steps.
        let journal = SweepJournal::open(&journal_path, &cfg, &apps, false).unwrap();
        let session =
            SweepSession { journal: Some(&journal), trip_after: Some(4), ..Default::default() };
        let first = sweep_session(&cfg, &apps, &session);
        assert!(first.interrupted(), "trip_after must cancel mid-sweep");
        assert!(first.skipped_steps > 0);
        drop(journal);

        // Run 2: resume. Journaled steps replay; the rest execute.
        let journal = SweepJournal::open(&journal_path, &cfg, &apps, true).unwrap();
        let loaded = journal.loaded_steps();
        assert!(loaded >= 4, "at least the tripped steps were journaled, got {loaded}");
        let session = SweepSession { journal: Some(&journal), ..Default::default() };
        let second = sweep_session(&cfg, &apps, &session);
        assert!(!second.interrupted());
        assert_eq!(second.resumed_steps, loaded, "every journaled step is skipped, not re-run");
        assert_eq!(
            outcomes_text(&second.outcomes),
            outcomes_text(&straight),
            "resumed sweep must match the uninterrupted one byte for byte"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_pruned_sweep_resumes_to_identical_attribution() {
        let dir = std::env::temp_dir().join(format!("deepmc-sweep-j4-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("sweep.journal");
        let cfg = SweepConfig { inject_bug: true, prune: true, oracle: true, jobs: 2, ..small(13) };
        let apps = [SweepApp::NStore];
        let straight = sweep(&cfg, &apps);

        let journal = SweepJournal::open(&journal_path, &cfg, &apps, false).unwrap();
        let session =
            SweepSession { journal: Some(&journal), trip_after: Some(2), ..Default::default() };
        let first = sweep_session(&cfg, &apps, &session);
        assert!(first.interrupted(), "trip_after must cancel the exploration mid-run");
        drop(journal);

        let journal = SweepJournal::open(&journal_path, &cfg, &apps, true).unwrap();
        assert!(journal.loaded_steps() >= 2);
        let session = SweepSession { journal: Some(&journal), ..Default::default() };
        let second = sweep_session(&cfg, &apps, &session);
        assert!(!second.interrupted());
        assert!(second.resumed_steps > 0, "journaled exploration steps replay on resume");
        assert_eq!(
            outcomes_text(&second.outcomes),
            outcomes_text(&straight),
            "resumed pruned sweep must match the uninterrupted one byte for byte"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_for_different_config_is_discarded() {
        let dir = std::env::temp_dir().join(format!("deepmc-sweep-j2-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("sweep.journal");
        let apps = [SweepApp::Redis];
        let cfg_a = small(1);
        let cfg_b = small(2);
        let journal = SweepJournal::open(&journal_path, &cfg_a, &apps, false).unwrap();
        let session = SweepSession { journal: Some(&journal), ..Default::default() };
        let _ = sweep_session(&cfg_a, &apps, &session);
        drop(journal);
        // Resuming under a different seed must not replay cfg_a's steps.
        let journal = SweepJournal::open(&journal_path, &cfg_b, &apps, true).unwrap();
        assert_eq!(journal.loaded_steps(), 0, "mismatched journal starts fresh");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_fingerprint_covers_prune_and_oracle_flags() {
        let dir = std::env::temp_dir().join(format!("deepmc-sweep-j5-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("sweep.journal");
        let apps = [SweepApp::Redis];
        let cfg = small(4);
        let journal = SweepJournal::open(&journal_path, &cfg, &apps, false).unwrap();
        let session = SweepSession { journal: Some(&journal), ..Default::default() };
        let _ = sweep_session(&cfg, &apps, &session);
        drop(journal);
        // A pruned resume must not replay exhaustive-mode entries.
        let pruned = SweepConfig { prune: true, ..cfg };
        let journal = SweepJournal::open(&journal_path, &pruned, &apps, true).unwrap();
        assert_eq!(journal.loaded_steps(), 0, "prune flag changes the fingerprint");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_journal_line_is_tolerated() {
        let dir = std::env::temp_dir().join(format!("deepmc-sweep-j3-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("sweep.journal");
        let apps = [SweepApp::Redis];
        let cfg = small(4);
        let journal = SweepJournal::open(&journal_path, &cfg, &apps, false).unwrap();
        let session = SweepSession { journal: Some(&journal), ..Default::default() };
        let straight = sweep_session(&cfg, &apps, &session);
        drop(journal);
        // Simulate a hard kill mid-append: truncate the last line in half.
        let text = fs::read_to_string(&journal_path).unwrap();
        let full_steps = text.trim_end().lines().count() - 1;
        let keep = text.trim_end().rfind('\n').unwrap() + 1;
        let torn = format!("{}{}", &text[..keep], &text[keep..keep + (text.len() - keep) / 2]);
        fs::write(&journal_path, torn).unwrap();
        let journal = SweepJournal::open(&journal_path, &cfg, &apps, true).unwrap();
        assert_eq!(journal.loaded_steps() as usize, full_steps - 1, "only the torn step is lost");
        let session = SweepSession { journal: Some(&journal), ..Default::default() };
        let resumed = sweep_session(&cfg, &apps, &session);
        assert_eq!(
            outcomes_text(&resumed.outcomes),
            outcomes_text(&straight.outcomes),
            "the torn step re-executes and the result is unchanged"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interior_corrupt_journal_line_quarantines_and_fails_resume() {
        let dir = std::env::temp_dir().join(format!("deepmc-sweep-j6-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("sweep.journal");
        let apps = [SweepApp::Redis];
        let cfg = small(4);
        let journal = SweepJournal::open(&journal_path, &cfg, &apps, false).unwrap();
        let session = SweepSession { journal: Some(&journal), ..Default::default() };
        let _ = sweep_session(&cfg, &apps, &session);
        drop(journal);
        // Corrupt a line in the *middle* of the journal (damage, not a
        // torn trailing append).
        let text = fs::read_to_string(&journal_path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        assert!(lines.len() > 4, "need interior lines to corrupt");
        let mid = lines.len() / 2;
        lines[mid] = lines[mid][..lines[mid].len() / 2].to_string();
        fs::write(&journal_path, lines.join("\n") + "\n").unwrap();

        let err = SweepJournal::open(&journal_path, &cfg, &apps, true)
            .err()
            .expect("an interior corrupt line must fail the resume, not skip silently");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("corrupt"), "error names the problem: {msg}");
        assert!(msg.contains("quarantined"), "error names the quarantine: {msg}");
        assert!(!journal_path.exists(), "the corrupt journal is moved aside");
        let quarantined = dir.join("sweep.journal.quarantined");
        assert!(quarantined.exists(), "the corrupt journal is preserved for inspection");
        let _ = fs::remove_dir_all(&dir);
    }
}
