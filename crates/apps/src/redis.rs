//! Mini-Redis: the PMDK-port style of the paper's evaluation — strict
//! persistency with an append-only file (AOF) in persistent memory: every
//! mutating command first appends a durable log entry (write + flush +
//! fence), then applies the update to the keyspace record (write + flush +
//! fence). This is the highest-fence-rate application of the three.

use crate::recovery::{checksum, RecoveryReport, REDIS_AOF_SALT};
use crate::store::{PersistStyle, PmKv};
use crate::tracker::{NoopTracker, Tracker};
use crate::workloads::{BenchApp, ClientCtx, OpKind};
use nvm_runtime::{PAddr, PmemHeap, PmemPool, StrandId};
use parking_lot::Mutex;

/// One AOF entry: op(8) | key(8) | value(8) | seq(8) | sum(8) = 40 bytes
/// used, padded to one cache line so a torn store never straddles entries.
const AOF_ENTRY: u64 = 64;
/// Bytes actually written per entry.
const AOF_USED: u64 = 40;

fn aof_sum(op: u64, key: u64, value: u64, seq: u64) -> u64 {
    checksum(REDIS_AOF_SALT, &[op, key, value, seq])
}
/// Lock id used for the AOF (distinct from PmKv shard ids, which are small).
const AOF_LOCK: u64 = u64::MAX;

struct Aof {
    base: PAddr,
    capacity: u64,
    cursor: u64,
    seq: u64,
}

/// The application.
pub struct Redis<'p> {
    pool: &'p PmemPool,
    kv: PmKv<'p>,
    aof: Mutex<Aof>,
}

impl<'p> Redis<'p> {
    /// `aof_capacity` bytes of the pool are reserved for the log. The AOF
    /// base is stored as the heap's durable root so [`Redis::recover`] can
    /// find it after a crash.
    pub fn new(
        pool: &'p PmemPool,
        heap: &'p PmemHeap<'p>,
        shards: usize,
        aof_capacity: u64,
    ) -> Redis<'p> {
        let base = heap.alloc(aof_capacity);
        assert!(!base.is_null(), "pool too small for the AOF");
        // Zero the first entry slot so recovery can find the log tail, and
        // publish the base durably.
        pool.write(base, &[0u8; AOF_ENTRY as usize]);
        pool.persist(base, AOF_ENTRY);
        heap.set_root(base);
        Redis {
            pool,
            kv: PmKv::new(pool, heap, PersistStyle::Strict, shards),
            aof: Mutex::new(Aof { base, capacity: aof_capacity, cursor: 0, seq: 0 }),
        }
    }

    /// Post-crash recovery: replay the durable AOF into a fresh keyspace.
    /// The AOF is the source of truth (as in real Redis): every mutating
    /// command was durably appended *before* it was applied, so replaying
    /// the committed prefix reconstructs exactly the acknowledged state.
    /// Entries whose checksum fails (torn append) or whose line errors at
    /// the media level are scrubbed and dropped — they were never
    /// acknowledged durably intact.
    pub fn recover(
        pool: &'p PmemPool,
        heap: &'p PmemHeap<'p>,
        shards: usize,
        aof_capacity: u64,
    ) -> (Redis<'p>, RecoveryReport) {
        let base = heap.root();
        assert!(!base.is_null(), "no AOF root: pool was never a Redis pool");
        // Collect entries in seq order (op 0 = empty slot). Ring wrap is
        // handled by sorting on seq.
        let mut report = RecoveryReport::default();
        let mut entries: Vec<(u64, u64, u64, u64)> = Vec::new(); // (seq, op, key, val)
        let mut slot = 0;
        while slot + AOF_ENTRY <= aof_capacity {
            let at = base.offset(slot);
            let mut bytes = [0u8; AOF_USED as usize];
            let scrub = match pool.read_reliable(at, &mut bytes, 2) {
                Err(_) => {
                    report.scanned += 1;
                    report.poisoned_dropped += 1;
                    true
                }
                Ok(()) => {
                    let word =
                        |i: usize| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap());
                    let (op, key, val, seq, sum) = (word(0), word(1), word(2), word(3), word(4));
                    if op == 0 {
                        false
                    } else if sum == aof_sum(op, key, val, seq) {
                        report.scanned += 1;
                        report.adopted += 1;
                        entries.push((seq, op, key, val));
                        false
                    } else {
                        report.scanned += 1;
                        report.torn_dropped += 1;
                        true
                    }
                }
            };
            if scrub {
                pool.write(at, &[0u8; AOF_ENTRY as usize]);
                pool.persist(at, AOF_ENTRY);
            }
            slot += AOF_ENTRY;
        }
        entries.sort_unstable();
        let kv = PmKv::new(pool, heap, PersistStyle::Strict, shards);
        let next_seq = entries.last().map(|e| e.0 + 1).unwrap_or(0);
        let cursor = (next_seq * AOF_ENTRY) % aof_capacity;
        for (_, op, key, val) in &entries {
            match op {
                1 => {
                    kv.set(*key, *val, &NoopTracker, None);
                }
                2 => {
                    // INCRBY on a missing key seeds it with the delta.
                    let incremented = kv.rmw(*key, |v| v.wrapping_add(*val), &NoopTracker, None);
                    if incremented.is_none() {
                        kv.set(*key, *val, &NoopTracker, None);
                    }
                }
                3 => {
                    kv.delete(*key, &NoopTracker, None);
                }
                _ => {}
            }
        }
        let redis = Redis {
            pool,
            kv,
            aof: Mutex::new(Aof { base, capacity: aof_capacity, cursor, seq: next_seq }),
        };
        (redis, report)
    }

    /// Durably append one AOF record (op, key, value).
    fn aof_append(&self, op: u64, key: u64, value: u64, t: &dyn Tracker, strand: Option<StrandId>) {
        self.aof_append_inner(op, key, value, t, strand, true);
    }

    /// [`Self::aof_append`] with the persist made optional so the crash
    /// sweep can inject Redis's ground-truth bug: `persist = false` leaves
    /// the entry's cache line merely dirty (no `clwb`/`sfence`), the
    /// missing-persist-before-publish pattern of Table 2.
    fn aof_append_inner(
        &self,
        op: u64,
        key: u64,
        value: u64,
        t: &dyn Tracker,
        strand: Option<StrandId>,
        persist: bool,
    ) {
        let mut aof = self.aof.lock();
        if t.enabled() {
            t.lock_acquire(strand, AOF_LOCK);
        }
        if aof.cursor + AOF_ENTRY > aof.capacity {
            aof.cursor = 0; // ring: rewrite from the start (compaction elided)
        }
        let at = aof.base.offset(aof.cursor);
        let mut bytes = [0u8; AOF_USED as usize];
        bytes[..8].copy_from_slice(&op.to_le_bytes());
        bytes[8..16].copy_from_slice(&key.to_le_bytes());
        bytes[16..24].copy_from_slice(&value.to_le_bytes());
        bytes[24..32].copy_from_slice(&aof.seq.to_le_bytes());
        bytes[32..40].copy_from_slice(&aof_sum(op, key, value, aof.seq).to_le_bytes());
        self.pool.write(at, &bytes);
        if t.enabled() {
            t.access(strand, at.0, AOF_USED, true);
        }
        if persist {
            self.pool.persist(at, AOF_USED);
        }
        aof.cursor += AOF_ENTRY;
        aof.seq += 1;
        if t.enabled() {
            t.lock_release(strand, AOF_LOCK);
        }
    }

    /// `SET key value`.
    pub fn set(&self, key: u64, value: u64, t: &dyn Tracker, strand: Option<StrandId>) {
        self.aof_append(1, key, value, t, strand);
        self.kv.set(key, value, t, strand);
    }

    /// **Seeded bug**: `SET` whose AOF entry is written but never
    /// persisted — the ack races the flush that was never issued. A crash
    /// before some later append's fence silently loses the update. Only
    /// the crash sweep's ground-truth injection calls this.
    pub fn set_skip_aof_persist(
        &self,
        key: u64,
        value: u64,
        t: &dyn Tracker,
        strand: Option<StrandId>,
    ) {
        self.aof_append_inner(1, key, value, t, strand, false);
        self.kv.set(key, value, t, strand);
    }

    /// `GET key`.
    pub fn get(&self, key: u64, t: &dyn Tracker, strand: Option<StrandId>) -> Option<u64> {
        self.kv.get(key, t, strand)
    }

    /// `INCR key`.
    pub fn incr(&self, key: u64, t: &dyn Tracker, strand: Option<StrandId>) -> Option<u64> {
        self.aof_append(2, key, 1, t, strand);
        self.kv.rmw(key, |v| v.wrapping_add(1), t, strand)
    }

    /// `DEL key`.
    pub fn del(&self, key: u64, t: &dyn Tracker, strand: Option<StrandId>) -> bool {
        self.aof_append(3, key, 0, t, strand);
        self.kv.delete(key, t, strand)
    }

    /// AOF records appended so far.
    pub fn aof_len(&self) -> u64 {
        self.aof.lock().seq
    }

    pub fn len(&self) -> usize {
        self.kv.len()
    }

    pub fn is_empty(&self) -> bool {
        self.kv.is_empty()
    }
}

impl BenchApp for Redis<'_> {
    fn preload(&self, keyspace: u64) {
        for k in 0..keyspace {
            self.kv.set(k, k, &NoopTracker, None);
        }
    }

    fn client_op(&self, ctx: &ClientCtx<'_>, kind: OpKind, key: u64) {
        match kind {
            OpKind::Read | OpKind::Scan => {
                self.get(key, ctx.tracker, ctx.strand);
            }
            OpKind::Update | OpKind::Insert => {
                self.set(key, key ^ 0xABCD, ctx.tracker, ctx.strand);
            }
            OpKind::ReadModifyWrite => {
                self.incr(key, ctx.tracker, ctx.strand);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::DeepMcTracker;
    use crate::workloads::{redis_benchmark_suite, run_bench};
    use nvm_runtime::{CrashPolicy, PoolConfig};

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig { size: 32 << 20, shards: 16, ..Default::default() })
    }

    #[test]
    fn commands_roundtrip() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let r = Redis::new(&p, &heap, 8, 1 << 20);
        r.set(1, 100, &NoopTracker, None);
        assert_eq!(r.get(1, &NoopTracker, None), Some(100));
        assert_eq!(r.incr(1, &NoopTracker, None), Some(101));
        assert!(r.del(1, &NoopTracker, None));
        assert_eq!(r.get(1, &NoopTracker, None), None);
        assert_eq!(r.aof_len(), 3);
    }

    #[test]
    fn strict_style_leaves_nothing_pending() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let r = Redis::new(&p, &heap, 8, 1 << 20);
        for k in 0..100 {
            r.set(k, k * 3, &NoopTracker, None);
        }
        assert_eq!(p.non_durable_lines(), 0, "every command fenced");
        // And the AOF survives a crash.
        let img = CrashPolicy::Pessimistic.apply(&p);
        let aof_base = {
            let aof = r.aof.lock();
            aof.base
        };
        let first_key = img.read_u64(aof_base.offset(8));
        assert_eq!(first_key, 0, "first SET logged durably");
        let op = img.read_u64(aof_base);
        assert_eq!(op, 1);
    }

    #[test]
    fn benchmark_suite_runs() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let r = Redis::new(&p, &heap, 16, 4 << 20);
        for spec in redis_benchmark_suite() {
            let tp = run_bench(&r, spec, 8, 500, 512, &NoopTracker, u64::MAX);
            assert_eq!(tp.ops, 4_000, "{}", spec.name);
        }
    }

    #[test]
    fn instrumented_suite_reports_nothing_on_correct_app() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let r = Redis::new(&p, &heap, 16, 4 << 20);
        let tracker = DeepMcTracker::new();
        run_bench(&r, redis_benchmark_suite()[0], 8, 500, 512, &tracker, u64::MAX);
        assert!(tracker.reports().is_empty(), "{:?}", tracker.reports().first());
    }

    #[test]
    fn recovery_replays_the_aof() {
        let p = pool();
        {
            let heap = PmemHeap::open(&p);
            let r = Redis::new(&p, &heap, 8, 1 << 20);
            r.set(1, 100, &NoopTracker, None);
            r.set(2, 200, &NoopTracker, None);
            r.incr(1, &NoopTracker, None);
            r.del(2, &NoopTracker, None);
            r.set(3, 300, &NoopTracker, None);
        }
        // Crash with nothing un-fenced surviving, reboot, recover.
        let img = CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(8);
        let heap2 = PmemHeap::open(&p2);
        let (r2, report) = Redis::recover(&p2, &heap2, 8, 1 << 20);
        assert_eq!(report.adopted, 5);
        assert_eq!(report.dropped(), 0, "clean crash tears nothing");
        assert_eq!(r2.get(1, &NoopTracker, None), Some(101));
        assert_eq!(r2.get(2, &NoopTracker, None), None);
        assert_eq!(r2.get(3, &NoopTracker, None), Some(300));
        assert_eq!(r2.aof_len(), 5, "sequence continues after recovery");
        // And the store keeps working.
        r2.set(4, 400, &NoopTracker, None);
        assert_eq!(r2.get(4, &NoopTracker, None), Some(400));
    }

    #[test]
    fn recovery_mid_crash_preserves_logged_prefix() {
        // Crash immediately after the AOF append of a SET but before the
        // record update: recovery must still surface the SET (it was
        // durably logged — that is the acknowledgement point).
        let p = pool();
        {
            let heap = PmemHeap::open(&p);
            let r = Redis::new(&p, &heap, 8, 1 << 20);
            r.set(7, 70, &NoopTracker, None);
            // Simulate the torn second half of another SET: append only.
            r.aof_append(1, 8, 80, &NoopTracker, None);
        }
        let img = CrashPolicy::Pessimistic.apply(&p);
        let p2 = img.reboot(8);
        let heap2 = PmemHeap::open(&p2);
        let (r2, _) = Redis::recover(&p2, &heap2, 8, 1 << 20);
        assert_eq!(r2.get(7, &NoopTracker, None), Some(70));
        assert_eq!(r2.get(8, &NoopTracker, None), Some(80), "logged SET replayed");
    }

    #[test]
    fn aof_ring_wraps() {
        let p = pool();
        let heap = PmemHeap::open(&p);
        let r = Redis::new(&p, &heap, 8, 1024); // 32 entries
        for k in 0..100 {
            r.set(k, k, &NoopTracker, None);
        }
        assert_eq!(r.aof_len(), 100, "sequence keeps counting across wraps");
    }
}
