//! The instrumentation seam for applications (paper Fig. 8 step ⑤ at the
//! application level).
//!
//! Applications call [`Tracker::access`] for every persistent-memory
//! operation inside their annotated update regions, exactly where the IR
//! instrumenter would have inserted runtime-library calls. The baseline
//! build uses [`NoopTracker`]; the DeepMC build uses [`DeepMcTracker`],
//! which drives shadow memory and the happens-before detector. Comparing
//! the two is the Figure-12 measurement.

use nvm_runtime::{RaceDetector, RaceReport, StrandId};

/// Runtime-library interface for instrumented applications.
pub trait Tracker: Sync {
    /// A client's update region begins (a strand in the paper's terms).
    fn region_begin(&self) -> Option<StrandId> {
        None
    }

    /// The region ends.
    fn region_end(&self, _strand: StrandId) {}

    /// A persist barrier executed outside any region.
    fn barrier(&self) {}

    /// A persistent access within a region.
    fn access(&self, _strand: Option<StrandId>, _addr: u64, _len: u64, _is_write: bool) {}

    /// Lock synchronization mirror: the application acquired `lock`.
    fn lock_acquire(&self, _strand: Option<StrandId>, _lock: u64) {}

    /// The application released `lock`.
    fn lock_release(&self, _strand: Option<StrandId>, _lock: u64) {}

    /// True if this tracker records anything (lets hot paths skip
    /// argument setup).
    fn enabled(&self) -> bool {
        false
    }
}

/// The baseline: no instrumentation.
pub struct NoopTracker;

impl Tracker for NoopTracker {}

/// DeepMC's dynamic analysis: shadow segments + happens-before WAW/RAW
/// detection, restricted to persistent addresses inside update regions.
pub struct DeepMcTracker {
    detector: RaceDetector,
}

impl Default for DeepMcTracker {
    fn default() -> Self {
        DeepMcTracker::new()
    }
}

impl DeepMcTracker {
    pub fn new() -> DeepMcTracker {
        DeepMcTracker { detector: RaceDetector::new(64) }
    }

    /// Dependence reports collected so far.
    pub fn reports(&self) -> Vec<RaceReport> {
        self.detector.reports()
    }

    /// Shadow cells allocated (scales with persistent data touched).
    pub fn shadow_cells(&self) -> usize {
        self.detector.shadow_cells()
    }
}

impl Tracker for DeepMcTracker {
    fn region_begin(&self) -> Option<StrandId> {
        Some(self.detector.strand_begin(None))
    }

    fn region_end(&self, strand: StrandId) {
        self.detector.strand_end(strand);
    }

    fn barrier(&self) {
        self.detector.global_barrier();
    }

    fn access(&self, strand: Option<StrandId>, addr: u64, len: u64, is_write: bool) {
        if let Some(strand) = strand {
            let _ = self.detector.on_access(strand, addr, len, is_write);
        }
    }

    fn lock_acquire(&self, strand: Option<StrandId>, lock: u64) {
        if let Some(strand) = strand {
            self.detector.lock_acquire(strand, lock);
        }
    }

    fn lock_release(&self, strand: Option<StrandId>, lock: u64) {
        if let Some(strand) = strand {
            self.detector.lock_release(strand, lock);
        }
    }

    fn enabled(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_tracker_is_disabled() {
        let t = NoopTracker;
        assert!(!t.enabled());
        assert!(t.region_begin().is_none());
    }

    #[test]
    fn deepmc_tracker_tracks_and_detects() {
        let t = DeepMcTracker::new();
        assert!(t.enabled());
        let s1 = t.region_begin().unwrap();
        let s2 = t.region_begin().unwrap();
        t.access(Some(s1), 4096, 8, true);
        t.access(Some(s2), 4096, 8, true);
        assert_eq!(t.reports().len(), 1, "concurrent WAW detected");
        assert!(t.shadow_cells() > 0);
    }

    #[test]
    fn barrier_orders_regions() {
        let t = DeepMcTracker::new();
        let s1 = t.region_begin().unwrap();
        t.access(Some(s1), 0, 8, true);
        t.region_end(s1);
        t.barrier();
        let s2 = t.region_begin().unwrap();
        t.access(Some(s2), 0, 8, true);
        assert!(t.reports().is_empty());
    }
}
