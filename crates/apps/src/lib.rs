//! # nvm-apps — the real-application layer of the evaluation
//!
//! The paper measures DeepMC's dynamic-analysis overhead on Memcached
//! (Mnemosyne), Redis (PMDK), and NStore (low-level implementation) under
//! the benchmarks of Table 6, reporting throughput with and without
//! instrumentation (Figure 12), and the static analysis' compile-time cost
//! (Table 9).
//!
//! This crate provides the equivalents:
//!
//! * [`store`] — a sharded persistent key-value engine on the simulated
//!   NVM pool (volatile index, persistent records — the Mnemosyne /
//!   persistent-Memcached design).
//! * [`memcached`], [`redis`], [`nstore`] — three applications with the
//!   persistence styles of their namesakes (epoch batching, strict
//!   store+persist with an append-only file, write-ahead-logged
//!   transactions).
//! * [`tracker`] — the instrumentation seam: every persistent access in an
//!   annotated update region reports to a [`tracker::Tracker`]; the
//!   baseline uses [`tracker::NoopTracker`], the DeepMC run uses
//!   [`tracker::DeepMcTracker`] (shadow memory + happens-before).
//! * [`workloads`] — memslap mixes, the redis-benchmark suite, and YCSB
//!   A–F, plus the multi-strand [`workloads::ds_driver`] over the
//!   concurrent DS corpus.
//! * [`ds`] — the concurrent persistent data-structure corpus
//!   (Memento-style detectable Treiber stack, MS queue, Harris list,
//!   combining queue, Clevel hash) with seeded ground-truth bug variants
//!   and a crash-recovery sweep.
//! * [`pirgen`] — synthetic PIR module generation sized after each
//!   application, for the Table 9 compilation-overhead experiment.

pub mod crashsweep;
pub mod ds;
mod explore;
pub mod memcached;
pub mod nstore;
pub mod pirgen;
pub mod recovery;
pub mod redis;
pub mod store;
pub mod tracker;
pub mod workloads;

pub use crashsweep::{sweep, SweepApp, SweepConfig, SweepOutcome};
pub use ds::{ds_sweep, ds_sweep_script, DsBug, DsKind, DsSweepConfig, DsSweepOutcome};
pub use recovery::RecoveryReport;
pub use store::{PersistStyle, PmKv};
pub use tracker::{DeepMcTracker, NoopTracker, Tracker};
pub use workloads::{memslap_workloads, redis_benchmark_suite, ycsb_workloads, WorkloadSpec};
