//! Shared recovery plumbing: record checksums and the per-recovery report.
//!
//! Clean crash simulation only loses *whole* updates — a line either
//! reverts to its durable image or survives intact. Under fault injection
//! ([`nvm_runtime::FaultConfig`]) a record can additionally be **torn**
//! (prefix of the new bytes, suffix of the old) or **poisoned** (reads
//! return [`nvm_runtime::PmemError::MediaError`]). Every application
//! therefore seals its persistent records with a salted checksum and its
//! `recover()` scans the rebooted pool, drops records that fail
//! validation, and reports what it dropped so the crash-sweep oracle can
//! attribute missing data to injected faults instead of application bugs.

use std::fmt;

/// Per-application checksum salts — a record replayed against the wrong
/// salt (e.g. a WAL entry misread as an AOF entry) never validates.
pub const PMKV_SALT: u64 = 0x9E6B_5521_4B1C_0001;
pub const REDIS_AOF_SALT: u64 = 0x9E6B_5521_4B1C_0002;
pub const NSTORE_WAL_SALT: u64 = 0x9E6B_5521_4B1C_0003;

/// Salted 64-bit checksum over a record's words (splitmix64 mixing).
/// Strong enough that a torn 8-byte span flips the sum with overwhelming
/// probability; cheap enough to compute on every update.
pub fn checksum(salt: u64, parts: &[u64]) -> u64 {
    let mut h = salt ^ (parts.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &p in parts {
        let mut z = h ^ p;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

/// What one `recover()` pass saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Non-empty record slots examined.
    pub scanned: u64,
    /// Records that validated and were adopted / replayed.
    pub adopted: u64,
    /// Records dropped for checksum mismatch (torn write).
    pub torn_dropped: u64,
    /// Records dropped because the media errored even after retries.
    pub poisoned_dropped: u64,
}

impl RecoveryReport {
    /// Total records lost to injected faults.
    pub fn dropped(&self) -> u64 {
        self.torn_dropped + self.poisoned_dropped
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scanned {} records: {} adopted, {} torn, {} poisoned",
            self.scanned, self.adopted, self.torn_dropped, self.poisoned_dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_stable_and_salt_sensitive() {
        let a = checksum(PMKV_SALT, &[1, 2, 3]);
        assert_eq!(a, checksum(PMKV_SALT, &[1, 2, 3]));
        assert_ne!(a, checksum(REDIS_AOF_SALT, &[1, 2, 3]));
        assert_ne!(a, checksum(PMKV_SALT, &[1, 2, 4]));
        assert_ne!(a, checksum(PMKV_SALT, &[1, 2]));
    }

    #[test]
    fn single_byte_tears_flip_the_sum() {
        // A torn store resurfaces old bytes inside one word: any one-byte
        // difference must change the checksum.
        let base = checksum(NSTORE_WAL_SALT, &[0xDEAD_BEEF, 7]);
        for byte in 0..8 {
            let torn = 0xDEAD_BEEFu64 ^ (0xFF << (byte * 8));
            assert_ne!(base, checksum(NSTORE_WAL_SALT, &[torn, 7]));
        }
    }
}
