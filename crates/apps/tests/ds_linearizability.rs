//! Property-based linearization-prefix check of the DS corpus: for *any*
//! generated operation history, crashing after every step of a clean
//! structure and recovering must land on a state the history could have
//! linearized to inside the operation's durability window. The seeded
//! crash-visible variants must keep failing that oracle on the same
//! histories, and the whole sweep must be byte-identical at any worker
//! count.

use nvm_apps::ds::{expected, DsOp};
use nvm_apps::{ds_sweep_script, DsKind, DsSweepConfig};
use proptest::prelude::*;

fn kinds() -> impl Strategy<Value = DsKind> {
    prop_oneof![
        Just(DsKind::Treiber),
        Just(DsKind::MsQueue),
        Just(DsKind::Harris),
        Just(DsKind::Comb),
        Just(DsKind::Clevel),
    ]
}

/// Generated op histories: adds biased 3:1 over removes (the vendored
/// `prop_oneof!` is equal-weight, so the bias is by repetition), keys
/// from a small range so removes actually hit and slots get reused.
fn scripts() -> impl Strategy<Value = Vec<DsOp>> {
    proptest::collection::vec(
        prop_oneof![
            (1..=6u64).prop_map(DsOp::Add),
            (1..=6u64).prop_map(DsOp::Add),
            (1..=6u64).prop_map(DsOp::Add),
            (1..=6u64).prop_map(DsOp::Remove),
        ],
        8..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Clean structures recover to a linearization prefix from every
    /// crash point of every generated history — zero oracle violations —
    /// and the pruned sweep agrees with the exhaustive one byte for byte
    /// at `--jobs 1` and `--jobs 4`.
    #[test]
    fn clean_recovery_is_a_linearization_prefix(
        kind in kinds(),
        script in scripts(),
    ) {
        let mut cfg = DsSweepConfig::new(kind, None);
        cfg.steps = script.len() as u64;
        cfg.oracle = true;
        let exhaustive = ds_sweep_script(&cfg, &script);
        prop_assert!(
            exhaustive.violations.is_empty(),
            "{}: {}",
            kind.name(),
            exhaustive.summary()
        );

        cfg.prune = true;
        let pruned = ds_sweep_script(&cfg, &script);
        prop_assert!(pruned.violations.is_empty(), "{}", pruned.summary());
        prop_assert_eq!(exhaustive.images_checked, pruned.images_checked);

        cfg.jobs = 4;
        let pruned_par = ds_sweep_script(&cfg, &script);
        prop_assert_eq!(pruned.summary(), pruned_par.summary());
    }

    /// The crash-visible seeded variants stay caught on generated
    /// histories too, not just the canonical script. A short suffix
    /// guarantees every bug's trigger exists regardless of what was
    /// generated: keys 7/8 are outside the generated range, so the adds
    /// always take effect, the remove completes with the structure still
    /// non-empty (arming the double-apply replay), and padding to a batch
    /// boundary makes the combiner persist the suffix.
    #[test]
    fn crash_visible_bugs_fail_the_oracle_on_any_history(
        kind in kinds(),
        prefix in scripts(),
    ) {
        let mut script = prefix;
        script.extend([DsOp::Add(7), DsOp::Add(8), DsOp::Remove(7)]);
        while script.len() as u64 % kind.batch() != 0 {
            script.push(DsOp::Add(7));
        }
        for &bug in kind.seeded_bugs() {
            if !expected(Some(bug)).crash {
                continue;
            }
            let mut cfg = DsSweepConfig::new(kind, Some(bug));
            cfg.steps = script.len() as u64;
            cfg.oracle = true;
            let out = ds_sweep_script(&cfg, &script);
            prop_assert!(
                !out.violations.is_empty(),
                "{}/{} survived the oracle: {}",
                kind.name(),
                bug.name(),
                out.summary()
            );
        }
    }
}
