//! Property-based crash-recovery tests: for *any* workload, fault seed,
//! and random crash point, application recovery must never panic, must be
//! idempotent (a second pass adopts exactly the same records), and must
//! leave no un-scrubbed damage behind (the second pass drops nothing).

use nvm_apps::memcached::Memcached;
use nvm_apps::tracker::NoopTracker;
use nvm_apps::workloads::ClientCtx;
use nvm_runtime::{CrashPolicy, FaultConfig, PmemHeap, PmemPool, PoolConfig};
use proptest::prelude::*;

/// One step of the pre-crash workload.
#[derive(Debug, Clone, Copy)]
enum Step {
    Set { key: u64, value: u64 },
    Incr { key: u64 },
    Barrier,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1..64u64, any::<u64>()).prop_map(|(key, value)| Step::Set { key, value }),
        (1..64u64, any::<u64>()).prop_map(|(key, value)| Step::Set { key, value: !value }),
        (1..64u64).prop_map(|key| Step::Incr { key }),
        Just(Step::Barrier),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reboot + recover() under torn writes, dropped flushes, and media
    /// poisoning: never panics, adopted records read back as some value
    /// that was actually written, and recovery is idempotent — the first
    /// pass scrubs every bad slot, so the second drops nothing and adopts
    /// the identical set.
    #[test]
    fn recovery_is_total_and_idempotent_under_faults(
        steps in proptest::collection::vec(step_strategy(), 1..80),
        fault_seed in any::<u64>(),
        crash_seed in any::<u64>(),
    ) {
        let pool = PmemPool::with_faults(
            PoolConfig { size: 1 << 20, shards: 8, ..Default::default() },
            FaultConfig {
                seed: fault_seed,
                torn_store_rate: 0.3,
                dropped_flush_rate: 0.2,
                poison_rate: 0.05,
                ..Default::default()
            },
        );
        {
            let heap = PmemHeap::open(&pool);
            let mc = Memcached::new(&pool, &heap, 8);
            let noop = NoopTracker;
            let ctx = ClientCtx { id: 0, tracker: &noop, strand: None };
            for &step in &steps {
                match step {
                    Step::Set { key, value } => {
                        mc.set(key, value, &noop, &ctx);
                    }
                    Step::Incr { key } => {
                        mc.incr(key, &noop, &ctx);
                    }
                    Step::Barrier => mc.epoch_barrier(&noop),
                }
            }
        }

        let img = CrashPolicy::Random(crash_seed).apply(&pool);
        let rebooted = img.reboot(8);
        let heap = PmemHeap::open(&rebooted);

        let (first_mc, first) = Memcached::recover(&rebooted, &heap, 8);
        prop_assert_eq!(first.adopted as usize, first_mc.len());
        prop_assert_eq!(first.scanned, first.adopted + first.dropped());

        // Every adopted key was touched by the workload (no fabricated
        // records survive the checksum filter).
        let touched: std::collections::HashSet<u64> = steps
            .iter()
            .filter_map(|s| match *s {
                Step::Set { key, .. } | Step::Incr { key } => Some(key),
                Step::Barrier => None,
            })
            .collect();
        let noop = NoopTracker;
        let ctx = ClientCtx { id: 0, tracker: &noop, strand: None };
        for key in 1..64u64 {
            if first_mc.get(key, &noop, &ctx).is_some() {
                prop_assert!(touched.contains(&key), "recovered a key never written: {}", key);
            }
        }
        drop(first_mc);

        // Idempotence: pass one scrubbed every torn/poisoned slot, so pass
        // two sees a clean record area and adopts the identical set.
        let (second_mc, second) = Memcached::recover(&rebooted, &heap, 8);
        prop_assert_eq!(second.dropped(), 0, "first pass must scrub all damage");
        prop_assert_eq!(second.adopted, first.adopted);
        prop_assert_eq!(second_mc.len() as u64, first.adopted);
    }
}
