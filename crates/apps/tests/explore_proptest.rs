//! Property-based check of the pruned crash-state explorer: for *any*
//! sweep seed, script length, fault mix, and app, `--prune` must report
//! exactly the same verdicts — bug attributions, fault attributions, and
//! the violation list — as the exhaustive sweep, and must do so
//! byte-identically at any worker count.

use nvm_apps::crashsweep::{sweep_app, SweepApp, SweepConfig};
use nvm_runtime::FaultConfig;
use proptest::prelude::*;

fn apps() -> impl Strategy<Value = SweepApp> {
    prop_oneof![Just(SweepApp::Memcached), Just(SweepApp::Redis), Just(SweepApp::NStore)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Pruning is a pure optimization: the set of failing crash states
    /// (counter for counter, violation for violation) matches the
    /// exhaustive sweep's on generated configs, with and without the
    /// seeded bug, and the pruned output itself is identical at
    /// `--jobs 1` and `--jobs 4`.
    #[test]
    fn pruned_sweep_reports_the_same_failing_states(
        app in apps(),
        seed in 1..1_000u64,
        steps in 6..10u64,
        inject_bug in any::<bool>(),
        torn in prop_oneof![Just(0.0f64), Just(0.25f64)],
        drop_flush in prop_oneof![Just(0.0f64), Just(0.08f64)],
    ) {
        // No poison here: the apps' write paths read record headers
        // before recovery gets a chance to scrub, so poison coverage
        // lives in the dedicated unit tests (Memcached tolerates it).
        let base = SweepConfig {
            seed,
            steps,
            random_seeds: 1,
            fault: FaultConfig {
                torn_store_rate: torn,
                dropped_flush_rate: drop_flush,
                ..Default::default()
            },
            inject_bug,
            oracle: true,
            jobs: 1,
            ..Default::default()
        };
        let exhaustive = sweep_app(&base, app);
        let pruned = sweep_app(&SweepConfig { prune: true, ..base }, app);

        prop_assert_eq!(exhaustive.images_checked, pruned.images_checked);
        prop_assert_eq!(exhaustive.records_dropped, pruned.records_dropped);
        prop_assert_eq!(exhaustive.flushes_dropped, pruned.flushes_dropped);
        prop_assert_eq!(exhaustive.fault_attributed, pruned.fault_attributed);
        prop_assert_eq!(exhaustive.bug_attributed, pruned.bug_attributed);
        prop_assert_eq!(&exhaustive.violations, &pruned.violations);
        prop_assert_eq!(
            pruned.states_explored + pruned.states_pruned,
            pruned.images_checked
        );

        let pruned_par = sweep_app(&SweepConfig { prune: true, jobs: 4, ..base }, app);
        prop_assert_eq!(pruned.to_string(), pruned_par.to_string());
    }
}
