//! # deepmc-interp — executing PIR programs on the simulated NVM runtime
//!
//! The interpreter gives PIR programs *runtime* semantics: `palloc`
//! allocates from the persistent heap, stores and loads hit the pool's
//! visible image, `flush`/`fence`/`persist` drive the cache-line state
//! machine, and `tx_*` run real undo-log transactions. This enables:
//!
//! * **Bug validation by crash simulation** — run a buggy corpus program,
//!   crash at an injected step, reboot, recover, and observe the
//!   inconsistency the static checker predicted (the paper's manual
//!   validation, §5.1).
//! * **The dynamic checker** — instrumentation hooks fire on persistent
//!   accesses (optionally restricted to annotated strand regions), feeding
//!   the happens-before WAW/RAW detector (paper §4.4).
//! * **Overhead measurement** — the same program runs with
//!   [`Hooks`] = [`NoHooks`] (baseline) or a tracking implementation
//!   (DeepMC), giving the Figure-12-style comparison for PIR workloads.

use deepmc_pir::{
    Accessor, BinOp, Function, Inst, Module, Operand, Place, SourceLoc, StructDef, Terminator, Ty,
};
use nvm_runtime::{PAddr, PmemHeap, PmemPool, StrandId, TxManager};
use std::collections::HashMap;

/// Instrumentation hooks (the paper's runtime library interface, step ⑤/⑥
/// of Fig. 8). The default implementations do nothing, so `NoHooks` costs
/// only the virtual dispatch the baseline also pays.
pub trait Hooks {
    /// A strand region opens; return an id to tag its accesses.
    fn strand_begin(&self, _parent: Option<StrandId>) -> Option<StrandId> {
        None
    }
    fn strand_end(&self, _strand: StrandId) {}
    /// A persist barrier executed outside any strand.
    fn global_barrier(&self) {}
    /// A persistent-memory access at `loc`. Called only for instructions
    /// the instrumentation plan selected.
    #[allow(clippy::too_many_arguments)]
    fn access(
        &self,
        _strand: Option<StrandId>,
        _addr: u64,
        _len: u64,
        _is_write: bool,
        _file: &str,
        _func: &str,
        _loc: SourceLoc,
    ) {
    }
}

/// The do-nothing baseline.
pub struct NoHooks;

impl Hooks for NoHooks {}

/// Which memory accesses invoke [`Hooks::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrumentScope {
    /// Nothing is instrumented (baseline).
    None,
    /// Persistent accesses inside `strand_begin`/`strand_end` regions only
    /// (DeepMC's choice: "DeepMC only instruments write operations to the
    /// NVM in programmer-specified code regions").
    AnnotatedRegions,
    /// Every persistent access (ablation: what a non-selective tool pays).
    AllPersistent,
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    Int(i64),
    /// Pointer to a persistent object of the given struct (module-local id
    /// resolved at call time; structs are per-module).
    PRef {
        addr: PAddr,
        strukt: u32,
    },
    /// Pointer to a volatile object (index into the volatile store).
    VRef {
        idx: u32,
        strukt: u32,
    },
    Null,
}

/// Interpreter errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    UnknownFunction(String),
    StepLimit,
    CallDepth,
    OutOfMemory,
    TxLogFull,
    UninitializedLocal {
        func: String,
        local: String,
    },
    TypeError {
        func: String,
        line: u32,
        msg: String,
    },
    /// A persistent-memory access failed (media error surviving retries,
    /// or an out-of-range access under fault injection).
    Pmem(nvm_runtime::PmemError),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            InterpError::StepLimit => write!(f, "step limit exceeded"),
            InterpError::CallDepth => write!(f, "call depth exceeded"),
            InterpError::OutOfMemory => write!(f, "persistent heap exhausted"),
            InterpError::TxLogFull => write!(f, "transaction log full"),
            InterpError::UninitializedLocal { func, local } => {
                write!(f, "use of uninitialized local `%{local}` in `{func}`")
            }
            InterpError::TypeError { func, line, msg } => {
                write!(f, "type error in `{func}` line {line}: {msg}")
            }
            InterpError::Pmem(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// How a run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    Finished(Option<Value>),
    /// Execution stopped at the injected crash step; the pool now holds
    /// the pre-crash state, ready for
    /// [`nvm_runtime::CrashPolicy::apply`].
    Crashed {
        step: u64,
    },
}

/// Execution limits and crash injection.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    pub max_steps: u64,
    pub max_call_depth: usize,
    /// Stop *before* executing step `n` (0-based instruction count).
    pub crash_at: Option<u64>,
    pub scope: InstrumentScope,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            max_steps: 10_000_000,
            max_call_depth: 256,
            crash_at: None,
            scope: InstrumentScope::None,
        }
    }
}

/// A bound execution session.
pub struct Session<'a> {
    pub modules: &'a [Module],
    pub pool: &'a PmemPool,
    pub heap: &'a PmemHeap<'a>,
    pub txm: &'a TxManager<'a>,
    pub hooks: &'a dyn Hooks,
    pub config: InterpConfig,
}

/// One volatile (malloc'ed) object.
struct VolObj {
    bytes: Vec<u8>,
}

struct Interp<'a> {
    s: &'a Session<'a>,
    /// Global function table: name → (module idx, function).
    funcs: HashMap<&'a str, (usize, &'a Function)>,
    vol: Vec<VolObj>,
    steps: u64,
    strand_stack: Vec<StrandId>,
    crashed: bool,
}

const NULL_ENC: u64 = u64::MAX;
const VREF_TAG: u64 = 1 << 63;

impl<'a> Session<'a> {
    /// Run `func` with integer arguments (pointer arguments are not
    /// supported at the top level; PIR entry points allocate their own
    /// state).
    pub fn run(&self, func: &str, args: &[Value]) -> Result<Outcome, InterpError> {
        let mut funcs: HashMap<&str, (usize, &Function)> = HashMap::new();
        for (mi, m) in self.modules.iter().enumerate() {
            for f in &m.functions {
                if !f.blocks.is_empty() {
                    funcs.entry(f.name.as_str()).or_insert((mi, f));
                }
            }
        }
        let mut interp = Interp {
            s: self,
            funcs,
            vol: Vec::new(),
            steps: 0,
            strand_stack: Vec::new(),
            crashed: false,
        };
        let (mi, f) = *interp
            .funcs
            .get(func)
            .ok_or_else(|| InterpError::UnknownFunction(func.to_string()))?;
        let ret = interp.call(mi, f, args.to_vec(), 0)?;
        if interp.crashed {
            Ok(Outcome::Crashed { step: interp.steps })
        } else {
            Ok(Outcome::Finished(ret))
        }
    }
}

impl<'a> Interp<'a> {
    fn module(&self, mi: usize) -> &'a Module {
        &self.s.modules[mi]
    }

    fn struct_def(&self, mi: usize, strukt: u32) -> &'a StructDef {
        &self.module(mi).structs[strukt as usize]
    }

    /// Compute (base address or volatile index, byte offset, length) of a
    /// place. Returns `Ok(None)` when the base pointer is null or opaque
    /// (e.g. returned by an unknown external function): such accesses
    /// target memory outside the simulated pool and are skipped, matching
    /// the analysis' treatment of untracked objects.
    fn resolve_place(
        &mut self,
        mi: usize,
        f: &Function,
        env: &[Option<Value>],
        place: &Place,
        _line: u32,
    ) -> Result<Option<(Value, u64, u64)>, InterpError> {
        let base = env[place.base.index()].ok_or_else(|| InterpError::UninitializedLocal {
            func: f.name.clone(),
            local: f.locals[place.base.index()].name.clone(),
        })?;
        let strukt = match base {
            Value::PRef { strukt, .. } | Value::VRef { strukt, .. } => strukt,
            Value::Null | Value::Int(_) => return Ok(None),
        };
        let sdef = self.struct_def(mi, strukt);
        let (off, len) = match place.path.as_slice() {
            [] => (0, sdef.size_bytes()),
            [Accessor::Field(fi)] => (sdef.field_offset(*fi), sdef.field(*fi).ty.size_bytes()),
            [Accessor::Field(fi), Accessor::Index(idx)] => {
                let i = match self.eval(env, *idx) {
                    Some(Value::Int(n)) => n,
                    _ => 0,
                };
                let fty = sdef.field(*fi).ty;
                let n_elems = match fty {
                    Ty::Array(n) => n as i64,
                    _ => 1,
                };
                let i = i.rem_euclid(n_elems.max(1)); // clamp OOB indices
                (sdef.field_offset(*fi) + (i as u64) * 8, 8)
            }
            _ => (0, sdef.size_bytes()),
        };
        Ok(Some((base, off, len)))
    }

    fn eval(&self, env: &[Option<Value>], op: Operand) -> Option<Value> {
        match op {
            Operand::Const(n) => Some(Value::Int(n)),
            Operand::Null => Some(Value::Null),
            Operand::Local(l) => env[l.index()],
        }
    }

    fn encode(&self, v: Value) -> u64 {
        match v {
            Value::Int(n) => n as u64,
            Value::Null => NULL_ENC,
            Value::PRef { addr, .. } => addr.0,
            Value::VRef { idx, .. } => VREF_TAG | idx as u64,
        }
    }

    fn decode_ptr(&self, raw: u64, strukt: u32) -> Value {
        if raw == NULL_ENC {
            Value::Null
        } else if raw & VREF_TAG != 0 {
            Value::VRef { idx: (raw & !VREF_TAG) as u32, strukt }
        } else {
            Value::PRef { addr: PAddr(raw), strukt }
        }
    }

    fn tick(&mut self) -> Result<bool, InterpError> {
        if let Some(at) = self.s.config.crash_at {
            if self.steps >= at {
                self.crashed = true;
                return Ok(false);
            }
        }
        self.steps += 1;
        if self.steps > self.s.config.max_steps {
            return Err(InterpError::StepLimit);
        }
        Ok(true)
    }

    fn instrumented(&self) -> bool {
        match self.s.config.scope {
            InstrumentScope::None => false,
            InstrumentScope::AnnotatedRegions => !self.strand_stack.is_empty(),
            InstrumentScope::AllPersistent => true,
        }
    }

    fn hook_access(
        &self,
        mi: usize,
        f: &Function,
        addr: PAddr,
        len: u64,
        is_write: bool,
        loc: SourceLoc,
    ) {
        if self.instrumented() {
            self.s.hooks.access(
                self.strand_stack.last().copied(),
                addr.0,
                len,
                is_write,
                &self.module(mi).file,
                &f.name,
                loc,
            );
        }
    }

    fn call(
        &mut self,
        mi: usize,
        f: &'a Function,
        args: Vec<Value>,
        depth: usize,
    ) -> Result<Option<Value>, InterpError> {
        if depth > self.s.config.max_call_depth {
            return Err(InterpError::CallDepth);
        }
        let mut env: Vec<Option<Value>> = vec![None; f.locals.len()];
        for (i, a) in args.into_iter().enumerate() {
            if i < f.num_params as usize {
                env[i] = Some(a);
            }
        }
        let mut bb = Function::ENTRY;
        loop {
            let block = &f.blocks[bb.index()];
            for si in f.insts_of(block) {
                if !self.tick()? {
                    return Ok(None); // crash injected
                }
                if !self.exec(mi, f, &mut env, &si.inst, si.loc, depth)? {
                    return Ok(None); // crash during a callee
                }
            }
            if !self.tick()? {
                return Ok(None);
            }
            match &block.term.inst {
                Terminator::Ret { value } => {
                    return Ok(value.and_then(|v| self.eval(&env, v)));
                }
                Terminator::Jmp { bb: next } => bb = *next,
                Terminator::Br { cond, then_bb, else_bb } => {
                    let taken = match self.eval(&env, *cond) {
                        Some(Value::Int(n)) => n != 0,
                        Some(Value::Null) => false,
                        Some(_) => true, // non-null pointer is truthy
                        None => false,
                    };
                    bb = if taken { *then_bb } else { *else_bb };
                }
            }
        }
    }

    /// Execute one instruction; `Ok(false)` means a crash was injected in
    /// a callee and the whole stack must unwind.
    fn exec(
        &mut self,
        mi: usize,
        f: &'a Function,
        env: &mut [Option<Value>],
        inst: &Inst,
        loc: SourceLoc,
        depth: usize,
    ) -> Result<bool, InterpError> {
        match inst {
            Inst::PAlloc { dst, ty } => {
                let size = self.struct_def(mi, ty.0).size_bytes();
                let addr = self.s.heap.alloc_zeroed(size);
                if addr.is_null() {
                    return Err(InterpError::OutOfMemory);
                }
                env[dst.index()] = Some(Value::PRef { addr, strukt: ty.0 });
            }
            Inst::VAlloc { dst, ty } => {
                let size = self.struct_def(mi, ty.0).size_bytes();
                let idx = self.vol.len() as u32;
                self.vol.push(VolObj { bytes: vec![0; size as usize] });
                env[dst.index()] = Some(Value::VRef { idx, strukt: ty.0 });
            }
            Inst::Store { place, value } => {
                let v = self.eval(env, *value).unwrap_or(Value::Int(0));
                let raw = self.encode(v);
                let Some((base, off, len)) = self.resolve_place(mi, f, env, place, loc.line)?
                else {
                    return Ok(true); // opaque target: skipped
                };
                match base {
                    Value::PRef { addr, .. } => {
                        let target = addr.offset(off);
                        // Fill multi-word ranges (whole-field array stores
                        // do not occur; len is 8 here).
                        self.s
                            .pool
                            .try_write(target, &raw.to_le_bytes()[..len.min(8) as usize])
                            .map_err(InterpError::Pmem)?;
                        self.hook_access(mi, f, target, len.min(8), true, loc);
                    }
                    Value::VRef { idx, .. } => {
                        let b = &mut self.vol[idx as usize].bytes;
                        b[off as usize..(off + len.min(8)) as usize]
                            .copy_from_slice(&raw.to_le_bytes()[..len.min(8) as usize]);
                    }
                    _ => unreachable!(),
                }
            }
            Inst::Load { dst, place } => {
                let Some((base, off, len)) = self.resolve_place(mi, f, env, place, loc.line)?
                else {
                    env[dst.index()] = Some(match f.local_ty(*dst) {
                        Ty::Ptr(_) => Value::Null,
                        _ => Value::Int(0),
                    });
                    return Ok(true);
                };
                let mut buf = [0u8; 8];
                match base {
                    Value::PRef { addr, .. } => {
                        let target = addr.offset(off);
                        // One transparent retry models the ECC path; a
                        // persistent media error surfaces to the program.
                        self.s
                            .pool
                            .read_reliable(target, &mut buf[..len.min(8) as usize], 1)
                            .map_err(InterpError::Pmem)?;
                        self.hook_access(mi, f, target, len.min(8), false, loc);
                    }
                    Value::VRef { idx, .. } => {
                        let b = &self.vol[idx as usize].bytes;
                        buf[..len.min(8) as usize]
                            .copy_from_slice(&b[off as usize..(off + len.min(8)) as usize]);
                    }
                    _ => unreachable!(),
                }
                let raw = u64::from_le_bytes(buf);
                let v = match f.local_ty(*dst) {
                    Ty::Ptr(sid) => self.decode_ptr(raw, sid.0),
                    _ => Value::Int(raw as i64),
                };
                env[dst.index()] = Some(v);
            }
            Inst::Bin { dst, op, lhs, rhs } => {
                let a = self.eval(env, *lhs);
                let b = self.eval(env, *rhs);
                let v = match (a, b) {
                    (Some(Value::Int(x)), Some(Value::Int(y))) => Value::Int(op.eval(x, y)),
                    (Some(x), Some(y)) => {
                        // Pointer equality.
                        let eq = self.encode(x) == self.encode(y);
                        match op {
                            BinOp::Eq => Value::Int(eq as i64),
                            BinOp::Ne => Value::Int(!eq as i64),
                            _ => Value::Int(0),
                        }
                    }
                    _ => Value::Int(0),
                };
                env[dst.index()] = Some(v);
            }
            Inst::Mov { dst, src } => {
                env[dst.index()] = self.eval(env, *src);
            }
            Inst::Flush { place } => {
                if let Some((Value::PRef { addr, .. }, off, len)) =
                    self.resolve_place(mi, f, env, place, loc.line)?
                {
                    self.s.pool.flush(addr.offset(off), len);
                }
            }
            Inst::Fence => {
                self.s.pool.fence();
                if self.strand_stack.is_empty() {
                    self.s.hooks.global_barrier();
                }
            }
            Inst::Persist { place } => {
                if let Some((Value::PRef { addr, .. }, off, len)) =
                    self.resolve_place(mi, f, env, place, loc.line)?
                {
                    self.s.pool.persist(addr.offset(off), len);
                } else {
                    self.s.pool.fence();
                }
                if self.strand_stack.is_empty() {
                    self.s.hooks.global_barrier();
                }
            }
            Inst::MemSetPersist { place, value } => {
                let fill = match self.eval(env, *value) {
                    Some(Value::Int(n)) => n,
                    _ => 0,
                };
                if let Some((Value::PRef { addr, .. }, off, len)) =
                    self.resolve_place(mi, f, env, place, loc.line)?
                {
                    let words = (len / 8).max(1);
                    let mut bytes = Vec::with_capacity(len as usize);
                    for _ in 0..words {
                        bytes.extend_from_slice(&(fill as u64).to_le_bytes());
                    }
                    bytes.truncate(len as usize);
                    let target = addr.offset(off);
                    self.s.pool.try_write(target, &bytes).map_err(InterpError::Pmem)?;
                    self.hook_access(mi, f, target, len, true, loc);
                    self.s.pool.persist(target, len);
                    if self.strand_stack.is_empty() {
                        self.s.hooks.global_barrier();
                    }
                }
            }
            Inst::TxBegin => self.s.txm.begin(),
            Inst::TxAdd { place } => {
                if let Some((Value::PRef { addr, .. }, off, len)) =
                    self.resolve_place(mi, f, env, place, loc.line)?
                {
                    self.s.txm.add(addr.offset(off), len).map_err(|_| InterpError::TxLogFull)?;
                }
            }
            Inst::TxCommit => self.s.txm.commit(),
            Inst::TxAbort => self.s.txm.abort(),
            Inst::EpochBegin | Inst::EpochEnd => {
                // Epoch boundaries are annotations; their ordering effect
                // comes from the fences the program (correctly) issues.
            }
            Inst::StrandBegin => {
                let parent = self.strand_stack.last().copied();
                if let Some(id) = self.s.hooks.strand_begin(parent) {
                    self.strand_stack.push(id);
                }
            }
            Inst::StrandEnd => {
                if let Some(id) = self.strand_stack.pop() {
                    self.s.hooks.strand_end(id);
                }
            }
            Inst::Call { dst, callee, args } => {
                let callee_name = self.module(mi).symbols.resolve(*callee);
                let Some(&(cmi, cf)) = self.funcs.get(callee_name) else {
                    // Unknown externals return 0.
                    if let Some(d) = dst {
                        env[d.index()] = Some(Value::Int(0));
                    }
                    return Ok(true);
                };
                let argv: Vec<Value> =
                    args.iter().map(|a| self.eval(env, *a).unwrap_or(Value::Int(0))).collect();
                let ret = self.call(cmi, cf, argv, depth + 1)?;
                if self.crashed {
                    return Ok(false);
                }
                if let Some(d) = dst {
                    env[d.index()] = Some(ret.unwrap_or(Value::Int(0)));
                }
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmc_pir::parse;
    use nvm_runtime::{CrashPolicy, PoolConfig};

    /// Run `src`'s `main` and return (outcome, pool) for inspection.
    fn run_with(src: &str, config: InterpConfig) -> (Result<Outcome, InterpError>, PmemPool) {
        let m = parse(src).expect("test source parses");
        deepmc_pir::verify::verify_module(&m).expect("verifies");
        let pool = PmemPool::new(PoolConfig { size: 1 << 20, shards: 4, ..Default::default() });
        let out = {
            let heap = PmemHeap::open(&pool);
            let log = heap.alloc(1 << 16);
            let txm = TxManager::new(&pool, log, 1 << 16);
            let session = Session {
                modules: std::slice::from_ref(&m),
                pool: &pool,
                heap: &heap,
                txm: &txm,
                hooks: &NoHooks,
                config,
            };
            session.run("main", &[])
        };
        (out, pool)
    }

    fn run(src: &str) -> (Result<Outcome, InterpError>, PmemPool) {
        run_with(src, InterpConfig::default())
    }

    #[test]
    fn arithmetic_and_branching() {
        let (out, _) = run(r#"
module m
fn main() -> i64 {
entry:
  %a = mov 10
  %b = add %a, 32
  %c = gt %b, 40
  br %c, yes, no
yes:
  ret %b
no:
  ret 0
}
"#);
        assert_eq!(out.unwrap(), Outcome::Finished(Some(Value::Int(42))));
    }

    #[test]
    fn persistent_store_load_roundtrip() {
        let (out, _) = run(r#"
module m
struct s { a: i64, arr: [i64; 4], next: ptr s }
fn main() -> i64 {
entry:
  %x = palloc s
  %y = palloc s
  store %x.a, 5
  store %x.arr[2], 7
  store %x.next, %y
  store %y.a, 30
  %n = load %x.next
  %v1 = load %x.a
  %v2 = load %x.arr[2]
  %v3 = load %n.a
  %t1 = add %v1, %v2
  %t2 = add %t1, %v3
  ret %t2
}
"#);
        assert_eq!(out.unwrap(), Outcome::Finished(Some(Value::Int(42))));
    }

    #[test]
    fn volatile_objects_work_but_do_not_touch_pool() {
        let m = parse(
            "module m\nstruct s { a: i64 }\nfn main() -> i64 {\nentry:\n  %x = valloc s\n  store %x.a, 9\n  %v = load %x.a\n  ret %v\n}\n",
        )
        .unwrap();
        let pool = PmemPool::new(PoolConfig { size: 1 << 20, shards: 4, ..Default::default() });
        let heap = PmemHeap::open(&pool);
        let log = heap.alloc(4096);
        let txm = TxManager::new(&pool, log, 4096);
        let before = pool.stats();
        let session = Session {
            modules: std::slice::from_ref(&m),
            pool: &pool,
            heap: &heap,
            txm: &txm,
            hooks: &NoHooks,
            config: InterpConfig::default(),
        };
        let out = session.run("main", &[]).unwrap();
        assert_eq!(out, Outcome::Finished(Some(Value::Int(9))));
        assert_eq!(pool.stats().stores, before.stores, "volatile traffic never hits NVM");
    }

    #[test]
    fn unflushed_write_lost_after_crash() {
        let (out, pool) = run(r#"
module m
struct s { a: i64, b: i64 }
fn main() {
entry:
  %x = palloc s
  store %x.a, 1
  persist %x.a
  store %x.b, 2
  ret
}
"#);
        assert!(matches!(out.unwrap(), Outcome::Finished(_)));
        let img = CrashPolicy::Pessimistic.apply(&pool);
        // Find the object: it is the first heap block after the metadata.
        // The heap's first allocation in these tests is the tx log
        // (65536 B), so the object follows it.
        let obj = PAddr(64 + 65536);
        assert_eq!(img.read_u64(obj), 1, "persisted field survives");
        assert_eq!(img.read_u64(obj.offset(8)), 0, "unflushed field lost");
    }

    #[test]
    fn transactional_update_is_atomic_under_crash() {
        // Crash at every step of a transactional two-field update; after
        // recovery the fields must never disagree.
        let src = r#"
module m
struct acct { bal1: i64, bal2: i64 }
fn main() {
entry:
  %x = palloc acct
  store %x.bal1, 100
  store %x.bal2, 100
  persist %x
  tx_begin
  tx_add %x
  store %x.bal1, 50
  store %x.bal2, 150
  tx_commit
  ret
}
"#;
        let obj = PAddr(64 + 65536);
        for step in 0..40 {
            let (out, pool) =
                run_with(src, InterpConfig { crash_at: Some(step), ..Default::default() });
            let out = out.unwrap();
            // Adversarial eviction, then reboot + recovery.
            let img = CrashPolicy::Optimistic.apply(&pool);
            let p2 = img.reboot(4);
            let heap2 = PmemHeap::open(&p2);
            let log = PAddr(64); // first allocation in run_with
            let txm2 = TxManager::attach(&p2, log, 1 << 16);
            txm2.recover();
            let b1 = p2.read_u64(obj) as i64;
            let b2 = p2.read_u64(obj.offset(8)) as i64;
            if matches!(out, Outcome::Crashed { .. }) {
                // Pre-transaction initialization may legitimately tear
                // ((0,0)/(100,0)); the transaction itself must be atomic:
                // never (50,100) or (100,150).
                let valid = [(0, 0), (100, 0), (100, 100), (50, 150)];
                assert!(
                    valid.contains(&(b1, b2)),
                    "crash at step {step}: torn state bal1={b1} bal2={b2}"
                );
            } else {
                assert_eq!((b1, b2), (50, 150));
            }
            drop(heap2);
        }
    }

    #[test]
    fn crash_injection_stops_execution() {
        let (out, pool) = run_with(
            "module m\nstruct s { a: i64 }\nfn main() {\nentry:\n  %x = palloc s\n  store %x.a, 1\n  persist %x.a\n  ret\n}\n",
            InterpConfig { crash_at: Some(2), ..Default::default() },
        );
        assert!(matches!(out.unwrap(), Outcome::Crashed { .. }));
        // The persist never ran: nothing of the object is durable.
        let img = CrashPolicy::Pessimistic.apply(&pool);
        assert_eq!(img.read_u64(PAddr(64 + 65536)), 0);
    }

    #[test]
    fn step_limit_catches_infinite_loops() {
        let (out, _) = run_with(
            "module m\nfn main() {\nentry:\n  jmp entry\n}\n",
            InterpConfig { max_steps: 1000, ..Default::default() },
        );
        assert_eq!(out.unwrap_err(), InterpError::StepLimit);
    }

    #[test]
    fn call_depth_limit() {
        let (out, _) = run_with(
            "module m\nfn main() {\nentry:\n  call main()\n  ret\n}\n",
            InterpConfig { max_call_depth: 10, ..Default::default() },
        );
        assert_eq!(out.unwrap_err(), InterpError::CallDepth);
    }

    #[test]
    fn calls_pass_pointers_and_return_values() {
        let (out, _) = run(r#"
module m
struct s { a: i64 }
fn get(%p: ptr s) -> i64 {
entry:
  %v = load %p.a
  ret %v
}
fn main() -> i64 {
entry:
  %x = palloc s
  store %x.a, 41
  %r = call get(%x)
  %r2 = add %r, 1
  ret %r2
}
"#);
        assert_eq!(out.unwrap(), Outcome::Finished(Some(Value::Int(42))));
    }

    #[test]
    fn null_comparisons() {
        let (out, _) = run(r#"
module m
struct s { next: ptr s }
fn main() -> i64 {
entry:
  %x = palloc s
  store %x.next, null
  %n = load %x.next
  %isnull = eq %n, %n
  br %n, nonnull, isnil
nonnull:
  ret 0
isnil:
  ret %isnull
}
"#);
        assert_eq!(out.unwrap(), Outcome::Finished(Some(Value::Int(1))));
    }

    #[test]
    fn memset_persist_zeroes_and_persists() {
        let (out, pool) = run(r#"
module m
struct s { a: i64, b: i64 }
fn main() {
entry:
  %x = palloc s
  store %x.a, 7
  store %x.b, 9
  persist %x
  memset_persist %x, 0
  ret
}
"#);
        assert!(matches!(out.unwrap(), Outcome::Finished(_)));
        let img = CrashPolicy::Pessimistic.apply(&pool);
        let obj = PAddr(64 + 65536);
        assert_eq!(img.read_u64(obj), 0);
        assert_eq!(img.read_u64(obj.offset(8)), 0);
    }

    #[test]
    fn strand_hooks_fire() {
        use parking_lot::Mutex;
        #[derive(Default)]
        struct Recorder {
            events: Mutex<Vec<String>>,
            next: Mutex<u32>,
        }
        impl Hooks for Recorder {
            fn strand_begin(&self, _p: Option<StrandId>) -> Option<StrandId> {
                let mut n = self.next.lock();
                let id = StrandId(*n);
                *n += 1;
                self.events.lock().push(format!("begin{}", id.0));
                Some(id)
            }
            fn strand_end(&self, s: StrandId) {
                self.events.lock().push(format!("end{}", s.0));
            }
            fn access(
                &self,
                strand: Option<StrandId>,
                _addr: u64,
                _len: u64,
                is_write: bool,
                _file: &str,
                _func: &str,
                _loc: SourceLoc,
            ) {
                self.events.lock().push(format!(
                    "{}{}",
                    if is_write { "w" } else { "r" },
                    strand.map(|s| s.0.to_string()).unwrap_or_default()
                ));
            }
        }
        let m = parse(
            r#"
module m
struct s { a: i64 }
fn main() {
entry:
  %x = palloc s
  store %x.a, 1
  strand_begin
  store %x.a, 2
  strand_end
  ret
}
"#,
        )
        .unwrap();
        let pool = PmemPool::new(PoolConfig { size: 1 << 20, shards: 4, ..Default::default() });
        let heap = PmemHeap::open(&pool);
        let log = heap.alloc(4096);
        let txm = TxManager::new(&pool, log, 4096);
        let rec = Recorder::default();
        let session = Session {
            modules: std::slice::from_ref(&m),
            pool: &pool,
            heap: &heap,
            txm: &txm,
            hooks: &rec,
            config: InterpConfig { scope: InstrumentScope::AnnotatedRegions, ..Default::default() },
        };
        session.run("main", &[]).unwrap();
        let events = rec.events.into_inner();
        // The store outside the strand is NOT instrumented under
        // AnnotatedRegions.
        assert_eq!(events, vec!["begin0", "w0", "end0"]);
    }

    #[test]
    fn media_error_surfaces_as_typed_error() {
        // A hook that permanently poisons every line the program stores
        // to — the next load of that line must fail with a typed media
        // error instead of silently reading or panicking.
        struct Poisoner<'p>(&'p PmemPool);
        impl Hooks for Poisoner<'_> {
            fn access(
                &self,
                _strand: Option<StrandId>,
                addr: u64,
                _len: u64,
                is_write: bool,
                _file: &str,
                _func: &str,
                _loc: SourceLoc,
            ) {
                if is_write {
                    self.0.poison_line(addr / 64, false);
                }
            }
        }
        let m = parse(
            r#"
module m
struct s { a: i64 }
fn main() -> i64 {
entry:
  %x = palloc s
  store %x.a, 5
  %v = load %x.a
  ret %v
}
"#,
        )
        .unwrap();
        let pool = PmemPool::new(PoolConfig { size: 1 << 20, shards: 4, ..Default::default() });
        let heap = PmemHeap::open(&pool);
        let log = heap.alloc(4096);
        let txm = TxManager::new(&pool, log, 4096);
        let poisoner = Poisoner(&pool);
        let session = Session {
            modules: std::slice::from_ref(&m),
            pool: &pool,
            heap: &heap,
            txm: &txm,
            hooks: &poisoner,
            config: InterpConfig { scope: InstrumentScope::AllPersistent, ..Default::default() },
        };
        let err = session.run("main", &[]).unwrap_err();
        assert!(
            matches!(
                err,
                InterpError::Pmem(nvm_runtime::PmemError::MediaError { transient: false, .. })
            ),
            "got {err:?}"
        );
    }
}
