//! Property-based tests: randomly generated modules must verify, print to
//! parseable text, and survive a print → parse round trip exactly.

use deepmc_pir::{
    builder::ModuleBuilder, inst::BinOp, parse, print, verify::verify_module, Module, Operand,
    Place, Ty,
};
use proptest::prelude::*;

/// A compact recipe for one generated instruction in a straight-line body.
#[derive(Debug, Clone)]
enum Op {
    Store {
        field: u8,
        val: i64,
    },
    StoreIndexed {
        field: u8,
        idx: u8,
        val: i64,
    },
    Load {
        field: u8,
    },
    Flush {
        field: Option<u8>,
    },
    Fence,
    Persist {
        field: Option<u8>,
    },
    Bin(u8, i64, i64),
    /// Call one of the module's extern helpers — `ext_b` with a result,
    /// `ext_a` without. Exercises the interned callee-symbol path: the
    /// builder interns the name to a `Symbol` handle, the printer resolves
    /// it back through the module string table, and the parser re-interns
    /// it, so the round trip must be handle-for-handle identical.
    Call {
        ext_b: bool,
    },
    TxRegion(Vec<OpInner>),
    EpochRegion(Vec<OpInner>),
}

#[derive(Debug, Clone)]
enum OpInner {
    Store { field: u8, val: i64 },
    Flush { field: Option<u8> },
    Fence,
}

fn inner_strategy() -> impl Strategy<Value = OpInner> {
    prop_oneof![
        (0u8..3, any::<i64>()).prop_map(|(field, val)| OpInner::Store { field, val }),
        proptest::option::of(0u8..3).prop_map(|field| OpInner::Flush { field }),
        Just(OpInner::Fence),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3, any::<i64>()).prop_map(|(field, val)| Op::Store { field, val }),
        (3u8..4, 0u8..4, any::<i64>()).prop_map(|(field, idx, val)| Op::StoreIndexed {
            field,
            idx,
            val
        }),
        (0u8..3).prop_map(|field| Op::Load { field }),
        proptest::option::of(0u8..3).prop_map(|field| Op::Flush { field }),
        Just(Op::Fence),
        proptest::option::of(0u8..3).prop_map(|field| Op::Persist { field }),
        (0u8..14, any::<i64>(), any::<i64>()).prop_map(|(op, a, b)| Op::Bin(op, a, b)),
        any::<bool>().prop_map(|ext_b| Op::Call { ext_b }),
        proptest::collection::vec(inner_strategy(), 0..4).prop_map(Op::TxRegion),
        proptest::collection::vec(inner_strategy(), 0..4).prop_map(Op::EpochRegion),
    ]
}

/// Build a module from the op recipe. The generated struct has three scalar
/// fields (indices 0..3) and one 4-element array field (index 3).
fn build_module(ops: &[Op], with_branch: bool) -> Module {
    let mut mb = ModuleBuilder::new("gen", "gen.c");
    let s = mb.add_struct(
        "obj",
        vec![("a", Ty::I64), ("b", Ty::I64), ("c", Ty::I64), ("arr", Ty::Array(4))],
    );
    mb.extern_fn("ext_a", vec![("p", Ty::Ptr(s))], None, vec![]);
    mb.extern_fn("ext_b", vec![("p", Ty::Ptr(s))], Some(Ty::I64), vec![]);
    let mut fb = mb.function("f", vec![("q", Ty::Ptr(s))], Some(Ty::I64));
    let p = fb.palloc(s);
    let place = |field: Option<u8>| match field {
        None => Place::local(p),
        Some(fi) => Place::field(p, fi as u32),
    };
    for op in ops {
        match op {
            Op::Store { field, val } => {
                fb.store(Place::field(p, *field as u32), Operand::Const(*val))
            }
            Op::StoreIndexed { field, idx, val } => fb.store(
                Place::indexed(p, *field as u32, Operand::Const(*idx as i64)),
                Operand::Const(*val),
            ),
            Op::Load { field } => {
                fb.load(Place::field(p, *field as u32), Ty::I64);
            }
            Op::Flush { field } => fb.flush(place(*field)),
            Op::Fence => fb.fence(),
            Op::Persist { field } => fb.persist(place(*field)),
            Op::Bin(op, a, b) => {
                fb.bin(
                    BinOp::ALL[*op as usize % BinOp::ALL.len()],
                    Operand::Const(*a),
                    Operand::Const(*b),
                );
            }
            Op::Call { ext_b } => {
                if *ext_b {
                    fb.call("ext_b", vec![Operand::Local(p)], Ty::I64);
                } else {
                    fb.call_void("ext_a", vec![Operand::Local(p)]);
                }
            }
            Op::TxRegion(inner) => {
                fb.tx_begin();
                fb.tx_add(Place::local(p));
                for i in inner {
                    emit_inner(&mut fb, p, i);
                }
                fb.tx_commit();
            }
            Op::EpochRegion(inner) => {
                fb.epoch_begin();
                for i in inner {
                    emit_inner(&mut fb, p, i);
                }
                fb.epoch_end();
            }
        }
    }
    if with_branch {
        let done = fb.new_block("done");
        let alt = fb.new_block("alt");
        let x = fb.load(Place::field(p, 0), Ty::I64);
        fb.br(Operand::Local(x), done, alt);
        fb.switch_to(alt);
        fb.persist(Place::local(p));
        fb.jmp(done);
        fb.switch_to(done);
        fb.ret(Some(Operand::Const(0)));
    } else {
        fb.ret(Some(Operand::Const(0)));
    }
    fb.finish();
    mb.finish()
}

fn emit_inner(fb: &mut deepmc_pir::FunctionBuilder<'_>, p: deepmc_pir::LocalId, i: &OpInner) {
    match i {
        OpInner::Store { field, val } => {
            fb.store(Place::field(p, *field as u32), Operand::Const(*val))
        }
        OpInner::Flush { field } => match field {
            None => fb.flush(Place::local(p)),
            Some(fi) => fb.flush(Place::field(p, *fi as u32)),
        },
        OpInner::Fence => fb.fence(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_modules_verify(ops in proptest::collection::vec(op_strategy(), 0..24), branch in any::<bool>()) {
        let m = build_module(&ops, branch);
        verify_module(&m).expect("generated module must verify");
    }

    #[test]
    fn print_parse_roundtrip(ops in proptest::collection::vec(op_strategy(), 0..24), branch in any::<bool>()) {
        let m = build_module(&ops, branch);
        let text = print(&m);
        let m2 = parse(&text).expect("printed module must parse");
        prop_assert_eq!(&m, &m2);
        // Idempotence: printing the reparsed module gives identical text.
        prop_assert_eq!(text, print(&m2));
    }

    #[test]
    fn parser_never_panics_on_random_text(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }

    #[test]
    fn parser_never_panics_on_structured_garbage(
        words in proptest::collection::vec(
            prop_oneof![
                Just("module".to_string()), Just("fn".to_string()), Just("struct".to_string()),
                Just("store".to_string()), Just("%x".to_string()), Just("{".to_string()),
                Just("}".to_string()), Just("(".to_string()), Just(")".to_string()),
                Just(":".to_string()), Just(",".to_string()), Just("ret".to_string()),
                Just("entry".to_string()), Just("1".to_string()), Just("i64".to_string()),
            ],
            0..40,
        )
    ) {
        let _ = parse(&words.join(" "));
    }
}
