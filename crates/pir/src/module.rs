//! Modules, functions, blocks, and locals.
//!
//! Instructions live in one flat per-function arena (`Function::insts`);
//! each block holds a `u32` range into it instead of its own vector. The
//! arena keeps a whole body contiguous in memory — the analysis walk and
//! the verifier iterate it without pointer-chasing per block — and makes
//! "function size" an O(1) query for the memoization threshold.

use crate::inst::{Inst, Terminator};
use crate::intern::SymbolTable;
use crate::loc::SourceLoc;
use crate::types::{StructDef, StructId, Ty};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a function within its module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

impl FuncId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a basic block within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a local (register) within its function. Parameters come first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocalId(pub u32);

impl LocalId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Declaration of a local: its name (without the `%` sigil) and type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalDecl {
    pub name: String,
    pub ty: Ty,
}

/// Function attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuncAttr {
    /// The function body executes within a caller's durable transaction
    /// (like PMDK callbacks invoked from `TX_BEGIN` blocks, Fig. 2 of the
    /// paper). The static checker treats the body as transactional.
    TxContext,
    /// The function is an annotated persistent-operation wrapper the
    /// analysis must track even without a body (paper §4.1: "DeepMC uses an
    /// interface to track every function that performs persistent
    /// operations").
    PersistWrapper,
    /// Per-function persistency-model override: this entry point follows
    /// strict persistency regardless of the compile-time flag. (The paper
    /// notes mixed-model programs as unsupported, §4.5; this attribute is
    /// the extension lifting that limitation.)
    ModelStrict,
    /// Per-function override: epoch persistency.
    ModelEpoch,
    /// Per-function override: strand persistency.
    ModelStrand,
}

/// An instruction paired with its source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Spanned<T> {
    pub inst: T,
    pub loc: SourceLoc,
}

impl<T> Spanned<T> {
    pub fn new(inst: T, loc: impl Into<SourceLoc>) -> Self {
        Spanned { inst, loc: loc.into() }
    }
}

/// A half-open range `[start, end)` into a function's instruction arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstRange {
    pub start: u32,
    pub end: u32,
}

impl InstRange {
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    pub fn range(self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }
}

/// A basic block: a label, a range of straight-line instructions in the
/// function's arena, and one terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    pub label: String,
    pub insts: InstRange,
    pub term: Spanned<Terminator>,
}

/// A PIR function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    pub name: String,
    /// Number of leading locals that are parameters.
    pub num_params: u32,
    pub locals: Vec<LocalDecl>,
    /// Return type; `None` for void.
    pub ret_ty: Option<Ty>,
    /// Flat instruction arena; blocks index into it via [`InstRange`].
    pub insts: Vec<Spanned<Inst>>,
    pub blocks: Vec<Block>,
    pub attrs: Vec<FuncAttr>,
}

impl Function {
    /// The entry block (always block 0).
    pub const ENTRY: BlockId = BlockId(0);

    /// Assemble a function from per-block instruction vectors, flattening
    /// them into the arena in block order. This is the single construction
    /// path shared by the parser and the builder, so equal bodies always
    /// get equal ranges.
    pub fn assemble(
        name: String,
        num_params: u32,
        locals: Vec<LocalDecl>,
        ret_ty: Option<Ty>,
        pending: Vec<(String, Vec<Spanned<Inst>>, Spanned<Terminator>)>,
        attrs: Vec<FuncAttr>,
    ) -> Function {
        let total: usize = pending.iter().map(|(_, insts, _)| insts.len()).sum();
        let mut arena = Vec::with_capacity(total);
        let mut blocks = Vec::with_capacity(pending.len());
        for (label, insts, term) in pending {
            let start = arena.len() as u32;
            arena.extend(insts);
            blocks.push(Block { label, insts: InstRange { start, end: arena.len() as u32 }, term });
        }
        Function { name, num_params, locals, ret_ty, insts: arena, blocks, attrs }
    }

    /// The instructions of block `b`.
    pub fn insts_of(&self, b: &Block) -> &[Spanned<Inst>] {
        &self.insts[b.insts.range()]
    }

    /// The instructions of the block at index `bi`.
    pub fn block_insts(&self, bi: usize) -> &[Spanned<Inst>] {
        self.insts_of(&self.blocks[bi])
    }

    /// Insert an instruction at position `at` within block `bi`, shifting
    /// later arena ranges. Cold path — used only by the fixer.
    pub fn insert_inst(&mut self, bi: usize, at: usize, si: Spanned<Inst>) {
        let point = self.blocks[bi].insts.start + at as u32;
        self.insts.insert(point as usize, si);
        for (i, b) in self.blocks.iter_mut().enumerate() {
            if i == bi {
                b.insts.end += 1;
            } else if b.insts.start >= point {
                b.insts.start += 1;
                b.insts.end += 1;
            }
        }
    }

    /// Remove and return the instruction at position `at` within block
    /// `bi`, shifting later arena ranges. Cold path — fixer only.
    pub fn remove_inst(&mut self, bi: usize, at: usize) -> Spanned<Inst> {
        let point = self.blocks[bi].insts.start + at as u32;
        let removed = self.insts.remove(point as usize);
        for (i, b) in self.blocks.iter_mut().enumerate() {
            if i == bi {
                b.insts.end -= 1;
            } else if b.insts.start > point {
                b.insts.start -= 1;
                b.insts.end -= 1;
            }
        }
        removed
    }

    /// Parameter declarations.
    pub fn params(&self) -> &[LocalDecl] {
        &self.locals[..self.num_params as usize]
    }

    /// Look up a local by name.
    pub fn local_by_name(&self, name: &str) -> Option<LocalId> {
        self.locals.iter().position(|l| l.name == name).map(|i| LocalId(i as u32))
    }

    /// Type of a local.
    pub fn local_ty(&self, id: LocalId) -> Ty {
        self.locals[id.index()].ty
    }

    /// Look up a block by label.
    pub fn block_by_label(&self, label: &str) -> Option<BlockId> {
        self.blocks.iter().position(|b| b.label == label).map(|i| BlockId(i as u32))
    }

    /// True if the function carries `attr`.
    pub fn has_attr(&self, attr: FuncAttr) -> bool {
        self.attrs.contains(&attr)
    }

    /// Total instruction count (excluding terminators). O(1): the arena
    /// holds every instruction exactly once.
    pub fn inst_count(&self) -> usize {
        self.insts.len()
    }
}

/// A PIR module: a compilation unit corresponding to one source file of the
/// original C program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    pub name: String,
    /// The C source file this module models (used in warning reports).
    pub file: String,
    pub structs: Vec<StructDef>,
    pub functions: Vec<Function>,
    /// Interned strings referenced by instructions (callee names).
    #[serde(default)]
    pub symbols: SymbolTable,
    /// Name → id caches rebuilt by [`Module::rebuild_index`].
    #[serde(skip)]
    struct_index: HashMap<String, StructId>,
    #[serde(skip)]
    func_index: HashMap<String, FuncId>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>, file: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            file: file.into(),
            structs: Vec::new(),
            functions: Vec::new(),
            symbols: SymbolTable::new(),
            struct_index: HashMap::new(),
            func_index: HashMap::new(),
        }
    }

    /// Rebuild the name → id lookup tables. Call after mutating `structs`
    /// or `functions` directly (the builder and parser do this for you).
    pub fn rebuild_index(&mut self) {
        self.struct_index = self
            .structs
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), StructId(i as u32)))
            .collect();
        self.func_index = self
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
            .collect();
    }

    /// Look up a struct by name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.struct_index.get(name).copied()
    }

    /// Look up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.func_index.get(name).copied()
    }

    /// The struct definition for `id`.
    pub fn struct_def(&self, id: StructId) -> &StructDef {
        &self.structs[id.index()]
    }

    /// The function for `id`.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Iterate `(FuncId, &Function)`.
    pub fn funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions.iter().enumerate().map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Total instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(|f| f.inst_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FieldDef;

    #[test]
    fn module_index_roundtrip() {
        let mut m = Module::new("m", "m.c");
        m.structs.push(StructDef {
            name: "s".into(),
            fields: vec![FieldDef { name: "a".into(), ty: Ty::I64 }],
        });
        m.functions.push(Function {
            name: "f".into(),
            num_params: 0,
            locals: vec![],
            ret_ty: None,
            insts: vec![],
            blocks: vec![],
            attrs: vec![],
        });
        m.rebuild_index();
        assert_eq!(m.struct_by_name("s"), Some(StructId(0)));
        assert_eq!(m.func_by_name("f"), Some(FuncId(0)));
        assert_eq!(m.struct_by_name("zzz"), None);
    }

    #[test]
    fn function_local_lookup() {
        let f = Function {
            name: "f".into(),
            num_params: 1,
            locals: vec![
                LocalDecl { name: "p".into(), ty: Ty::I64 },
                LocalDecl { name: "x".into(), ty: Ty::I64 },
            ],
            ret_ty: Some(Ty::I64),
            insts: vec![],
            blocks: vec![],
            attrs: vec![FuncAttr::TxContext],
        };
        assert_eq!(f.local_by_name("x"), Some(LocalId(1)));
        assert_eq!(f.params().len(), 1);
        assert!(f.has_attr(FuncAttr::TxContext));
        assert!(!f.has_attr(FuncAttr::PersistWrapper));
    }

    #[test]
    fn arena_splice_shifts_ranges() {
        let mk = |line: u32| Spanned::new(Inst::Fence, SourceLoc::new(line));
        let mut f = Function::assemble(
            "f".into(),
            0,
            vec![],
            None,
            vec![
                (
                    "entry".into(),
                    vec![mk(1), mk(2)],
                    Spanned::new(Terminator::Jmp { bb: BlockId(1) }, SourceLoc::new(3)),
                ),
                (
                    "done".into(),
                    vec![mk(4)],
                    Spanned::new(Terminator::Ret { value: None }, SourceLoc::new(5)),
                ),
            ],
            vec![],
        );
        assert_eq!(f.inst_count(), 3);
        assert_eq!(f.block_insts(0).len(), 2);
        assert_eq!(f.block_insts(1).len(), 1);

        f.insert_inst(0, 1, mk(10));
        assert_eq!(f.block_insts(0).len(), 3);
        assert_eq!(f.block_insts(0)[1].loc.line, 10);
        assert_eq!(f.block_insts(1)[0].loc.line, 4, "later block shifted intact");

        let removed = f.remove_inst(0, 1);
        assert_eq!(removed.loc.line, 10);
        assert_eq!(f.block_insts(0).len(), 2);
        assert_eq!(f.block_insts(1)[0].loc.line, 4);
    }
}
