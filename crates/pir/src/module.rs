//! Modules, functions, blocks, and locals.

use crate::inst::{Inst, Terminator};
use crate::loc::SourceLoc;
use crate::types::{StructDef, StructId, Ty};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a function within its module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

impl FuncId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a basic block within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a local (register) within its function. Parameters come first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LocalId(pub u32);

impl LocalId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Declaration of a local: its name (without the `%` sigil) and type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalDecl {
    pub name: String,
    pub ty: Ty,
}

/// Function attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuncAttr {
    /// The function body executes within a caller's durable transaction
    /// (like PMDK callbacks invoked from `TX_BEGIN` blocks, Fig. 2 of the
    /// paper). The static checker treats the body as transactional.
    TxContext,
    /// The function is an annotated persistent-operation wrapper the
    /// analysis must track even without a body (paper §4.1: "DeepMC uses an
    /// interface to track every function that performs persistent
    /// operations").
    PersistWrapper,
    /// Per-function persistency-model override: this entry point follows
    /// strict persistency regardless of the compile-time flag. (The paper
    /// notes mixed-model programs as unsupported, §4.5; this attribute is
    /// the extension lifting that limitation.)
    ModelStrict,
    /// Per-function override: epoch persistency.
    ModelEpoch,
    /// Per-function override: strand persistency.
    ModelStrand,
}

/// An instruction paired with its source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Spanned<T> {
    pub inst: T,
    pub loc: SourceLoc,
}

impl<T> Spanned<T> {
    pub fn new(inst: T, loc: impl Into<SourceLoc>) -> Self {
        Spanned { inst, loc: loc.into() }
    }
}

/// A basic block: a label, straight-line instructions, and one terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    pub label: String,
    pub insts: Vec<Spanned<Inst>>,
    pub term: Spanned<Terminator>,
}

/// A PIR function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    pub name: String,
    /// Number of leading locals that are parameters.
    pub num_params: u32,
    pub locals: Vec<LocalDecl>,
    /// Return type; `None` for void.
    pub ret_ty: Option<Ty>,
    pub blocks: Vec<Block>,
    pub attrs: Vec<FuncAttr>,
}

impl Function {
    /// The entry block (always block 0).
    pub const ENTRY: BlockId = BlockId(0);

    /// Parameter declarations.
    pub fn params(&self) -> &[LocalDecl] {
        &self.locals[..self.num_params as usize]
    }

    /// Look up a local by name.
    pub fn local_by_name(&self, name: &str) -> Option<LocalId> {
        self.locals.iter().position(|l| l.name == name).map(|i| LocalId(i as u32))
    }

    /// Type of a local.
    pub fn local_ty(&self, id: LocalId) -> Ty {
        self.locals[id.index()].ty
    }

    /// Look up a block by label.
    pub fn block_by_label(&self, label: &str) -> Option<BlockId> {
        self.blocks.iter().position(|b| b.label == label).map(|i| BlockId(i as u32))
    }

    /// True if the function carries `attr`.
    pub fn has_attr(&self, attr: FuncAttr) -> bool {
        self.attrs.contains(&attr)
    }

    /// Total instruction count (excluding terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A PIR module: a compilation unit corresponding to one source file of the
/// original C program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    pub name: String,
    /// The C source file this module models (used in warning reports).
    pub file: String,
    pub structs: Vec<StructDef>,
    pub functions: Vec<Function>,
    /// Name → id caches rebuilt by [`Module::rebuild_index`].
    #[serde(skip)]
    struct_index: HashMap<String, StructId>,
    #[serde(skip)]
    func_index: HashMap<String, FuncId>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>, file: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            file: file.into(),
            structs: Vec::new(),
            functions: Vec::new(),
            struct_index: HashMap::new(),
            func_index: HashMap::new(),
        }
    }

    /// Rebuild the name → id lookup tables. Call after mutating `structs`
    /// or `functions` directly (the builder and parser do this for you).
    pub fn rebuild_index(&mut self) {
        self.struct_index = self
            .structs
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), StructId(i as u32)))
            .collect();
        self.func_index = self
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
            .collect();
    }

    /// Look up a struct by name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.struct_index.get(name).copied()
    }

    /// Look up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.func_index.get(name).copied()
    }

    /// The struct definition for `id`.
    pub fn struct_def(&self, id: StructId) -> &StructDef {
        &self.structs[id.index()]
    }

    /// The function for `id`.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Iterate `(FuncId, &Function)`.
    pub fn funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions.iter().enumerate().map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Total instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(|f| f.inst_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FieldDef;

    #[test]
    fn module_index_roundtrip() {
        let mut m = Module::new("m", "m.c");
        m.structs.push(StructDef {
            name: "s".into(),
            fields: vec![FieldDef { name: "a".into(), ty: Ty::I64 }],
        });
        m.functions.push(Function {
            name: "f".into(),
            num_params: 0,
            locals: vec![],
            ret_ty: None,
            blocks: vec![],
            attrs: vec![],
        });
        m.rebuild_index();
        assert_eq!(m.struct_by_name("s"), Some(StructId(0)));
        assert_eq!(m.func_by_name("f"), Some(FuncId(0)));
        assert_eq!(m.struct_by_name("zzz"), None);
    }

    #[test]
    fn function_local_lookup() {
        let f = Function {
            name: "f".into(),
            num_params: 1,
            locals: vec![
                LocalDecl { name: "p".into(), ty: Ty::I64 },
                LocalDecl { name: "x".into(), ty: Ty::I64 },
            ],
            ret_ty: Some(Ty::I64),
            blocks: vec![],
            attrs: vec![FuncAttr::TxContext],
        };
        assert_eq!(f.local_by_name("x"), Some(LocalId(1)));
        assert_eq!(f.params().len(), 1);
        assert!(f.has_attr(FuncAttr::TxContext));
        assert!(!f.has_attr(FuncAttr::PersistWrapper));
    }
}
