//! Module well-formedness verification.
//!
//! The verifier enforces the structural invariants every downstream analysis
//! assumes, so CFG construction, DSA, trace collection, and the interpreter
//! can index without re-checking:
//!
//! * every block reference is in range and every local reference is declared;
//! * place projections type-check (field access on pointers, indexing only
//!   into array fields);
//! * `store`/`load` target a projected place, never a bare local;
//! * stored values type-check against the field (pointers accept locals of
//!   the pointee type and `null`; scalars accept i64 operands);
//! * in-module calls match the callee's arity and return type;
//! * region markers are balanced on a per-function basis along every
//!   acyclic path (tx/epoch/strand nesting), which the checker relies on
//!   when segmenting traces.

use crate::inst::{Accessor, Inst, Operand, Place, Terminator};
use crate::module::{Function, Module};
use crate::types::Ty;
use std::collections::HashMap;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    pub function: String,
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error in `{}` (line {}): {}", self.function, self.line, self.msg)
    }
}

impl std::error::Error for VerifyError {}

type VResult = Result<(), VerifyError>;

/// Verify a whole module.
pub fn verify_module(module: &Module) -> VResult {
    let sigs: HashMap<&str, (&Function, usize)> =
        module.functions.iter().map(|f| (f.name.as_str(), (f, f.num_params as usize))).collect();
    for f in &module.functions {
        verify_function(f, module, &sigs)?;
    }
    Ok(())
}

fn err(function: &Function, line: u32, msg: impl Into<String>) -> VerifyError {
    VerifyError { function: function.name.clone(), line, msg: msg.into() }
}

fn operand_ty(op: Operand, f: &Function) -> Option<Ty> {
    match op {
        Operand::Const(_) => Some(Ty::I64),
        Operand::Local(id) => f.locals.get(id.index()).map(|l| l.ty),
        Operand::Null => None, // polymorphic null pointer
    }
}

fn check_operand(op: Operand, f: &Function, line: u32) -> VResult {
    if let Operand::Local(id) = op {
        if id.index() >= f.locals.len() {
            return Err(err(f, line, format!("operand references unknown local {}", id.0)));
        }
    }
    Ok(())
}

/// Check a place and return the type of the location it names.
fn check_place(place: &Place, f: &Function, module: &Module, line: u32) -> Result<Ty, VerifyError> {
    if place.base.index() >= f.locals.len() {
        return Err(err(f, line, format!("place references unknown local {}", place.base.0)));
    }
    let mut cur = f.local_ty(place.base);
    let mut iter = place.path.iter().peekable();
    while let Some(acc) = iter.next() {
        match acc {
            Accessor::Field(idx) => {
                let sid =
                    cur.pointee().ok_or_else(|| err(f, line, "field access on non-pointer"))?;
                let sdef = module.struct_def(sid);
                if *idx as usize >= sdef.fields.len() {
                    return Err(err(
                        f,
                        line,
                        format!("field index {idx} out of range for `{}`", sdef.name),
                    ));
                }
                cur = sdef.field(*idx).ty;
            }
            Accessor::Index(op) => {
                check_operand(*op, f, line)?;
                if !matches!(cur, Ty::Array(_)) {
                    return Err(err(f, line, "indexing into non-array field"));
                }
                if iter.peek().is_some() {
                    return Err(err(f, line, "index must be the last accessor"));
                }
                cur = Ty::I64;
            }
        }
    }
    Ok(cur)
}

/// Value/location compatibility for stores.
fn storable(value_ty: Option<Ty>, slot_ty: Ty) -> bool {
    match (value_ty, slot_ty) {
        (None, Ty::Ptr(_)) => true, // null into pointer slot
        (None, _) => false,
        (Some(Ty::I64), Ty::I64) | (Some(Ty::I64), Ty::Array(_)) => true,
        (Some(Ty::Ptr(a)), Ty::Ptr(b)) => a == b,
        _ => false,
    }
}

fn verify_function(
    f: &Function,
    module: &Module,
    sigs: &HashMap<&str, (&Function, usize)>,
) -> VResult {
    if f.blocks.is_empty() {
        return Ok(()); // extern declaration
    }
    for b in &f.blocks {
        for si in f.insts_of(b) {
            let line = si.loc.line;
            match &si.inst {
                Inst::PAlloc { dst, ty } | Inst::VAlloc { dst, ty } => {
                    if ty.index() >= module.structs.len() {
                        return Err(err(f, line, "alloc of unknown struct"));
                    }
                    if f.local_ty(*dst) != Ty::Ptr(*ty) {
                        return Err(err(f, line, "alloc destination type mismatch"));
                    }
                }
                Inst::Store { place, value } => {
                    check_operand(*value, f, line)?;
                    let slot = check_place(place, f, module, line)?;
                    if place.is_whole_object() {
                        return Err(err(f, line, "store to a bare local (use mov)"));
                    }
                    if matches!(slot, Ty::Array(_))
                        && !matches!(place.path.last(), Some(Accessor::Index(_)))
                    {
                        return Err(err(f, line, "store to whole array field needs an index"));
                    }
                    let vt = operand_ty(*value, f);
                    if !storable(vt, slot) {
                        return Err(err(f, line, "store value type mismatch"));
                    }
                }
                Inst::Load { dst, place } => {
                    let slot = check_place(place, f, module, line)?;
                    if place.is_whole_object() {
                        return Err(err(f, line, "load from a bare local (use mov)"));
                    }
                    let slot = if matches!(slot, Ty::Array(_)) {
                        return Err(err(f, line, "load of whole array field needs an index"));
                    } else {
                        slot
                    };
                    if f.local_ty(*dst) != slot {
                        return Err(err(f, line, "load destination type mismatch"));
                    }
                }
                Inst::Bin { dst, lhs, rhs, .. } => {
                    check_operand(*lhs, f, line)?;
                    check_operand(*rhs, f, line)?;
                    if f.local_ty(*dst) != Ty::I64 {
                        return Err(err(f, line, "bin destination must be i64"));
                    }
                }
                Inst::Mov { dst, src } => {
                    check_operand(*src, f, line)?;
                    match operand_ty(*src, f) {
                        Some(t) if t == f.local_ty(*dst) => {}
                        _ => return Err(err(f, line, "mov type mismatch")),
                    }
                }
                Inst::Flush { place }
                | Inst::Persist { place }
                | Inst::TxAdd { place }
                | Inst::MemSetPersist { place, .. } => {
                    check_place(place, f, module, line)?;
                    // Whole-object forms need a pointer base.
                    if place.is_whole_object() && !f.local_ty(place.base).is_ptr() {
                        return Err(err(f, line, "persistent op on non-pointer local"));
                    }
                    if let Inst::MemSetPersist { value, .. } = &si.inst {
                        check_operand(*value, f, line)?;
                    }
                }
                Inst::Fence
                | Inst::TxBegin
                | Inst::TxCommit
                | Inst::TxAbort
                | Inst::EpochBegin
                | Inst::EpochEnd
                | Inst::StrandBegin
                | Inst::StrandEnd => {}
                Inst::Call { dst, callee, args } => {
                    if !module.symbols.contains(*callee) {
                        return Err(err(f, line, "call references an unknown symbol handle"));
                    }
                    let callee = module.symbols.resolve(*callee);
                    for a in args {
                        check_operand(*a, f, line)?;
                    }
                    if let Some((callee_fn, arity)) = sigs.get(callee) {
                        if args.len() != *arity {
                            return Err(err(
                                f,
                                line,
                                format!(
                                    "call to `{callee}` passes {} args, expects {arity}",
                                    args.len()
                                ),
                            ));
                        }
                        // Argument type compatibility (null allowed for ptr
                        // params).
                        for (a, p) in args.iter().zip(callee_fn.params()) {
                            let at = operand_ty(*a, f);
                            if !storable(at, p.ty) && at != Some(p.ty) {
                                return Err(err(
                                    f,
                                    line,
                                    format!("call to `{callee}`: argument type mismatch"),
                                ));
                            }
                        }
                        match (dst, callee_fn.ret_ty) {
                            (Some(_), None) => {
                                return Err(err(
                                    f,
                                    line,
                                    format!("call to void `{callee}` cannot have a result"),
                                ))
                            }
                            (Some(d), Some(rt)) if f.local_ty(*d) != rt => {
                                return Err(err(
                                    f,
                                    line,
                                    format!("call result type mismatch for `{callee}`"),
                                ));
                            }
                            _ => {}
                        }
                    }
                    // Unknown callees are allowed (cross-module calls are
                    // resolved at analysis time over the whole program).
                }
            }
        }
        let line = b.term.loc.line;
        match &b.term.inst {
            Terminator::Ret { value } => match (value, f.ret_ty) {
                (Some(v), Some(rt)) => {
                    check_operand(*v, f, line)?;
                    let vt = operand_ty(*v, f);
                    if !storable(vt, rt) && vt != Some(rt) {
                        return Err(err(f, line, "return value type mismatch"));
                    }
                }
                (None, Some(_)) => {
                    return Err(err(f, line, "missing return value"));
                }
                (Some(_), None) => {
                    return Err(err(f, line, "void function returns a value"));
                }
                (None, None) => {}
            },
            Terminator::Br { cond, then_bb, else_bb } => {
                check_operand(*cond, f, line)?;
                for bb in [then_bb, else_bb] {
                    if bb.index() >= f.blocks.len() {
                        return Err(err(f, line, "branch to unknown block"));
                    }
                }
            }
            Terminator::Jmp { bb } => {
                if bb.index() >= f.blocks.len() {
                    return Err(err(f, line, "jump to unknown block"));
                }
            }
        }
    }
    verify_regions(f)
}

/// Region nesting state carried along CFG paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
struct RegionState {
    tx_depth: u8,
    epoch_depth: u8,
    strand_depth: u8,
}

/// Check that tx/epoch/strand regions balance along every path: no `*_end`
/// without a matching `*_begin`, no negative depth, and depth 0 at returns.
/// This is a fixpoint over (block, entry-state) pairs, so diamonds with
/// differing region depths on each arm are rejected (the checker could not
/// segment such traces meaningfully).
fn verify_regions(f: &Function) -> VResult {
    let mut work = vec![(Function::ENTRY, RegionState::default())];
    let mut seen: std::collections::HashSet<(u32, RegionState)> = Default::default();
    while let Some((bb, mut st)) = work.pop() {
        if !seen.insert((bb.0, st)) {
            continue;
        }
        let b = &f.blocks[bb.index()];
        for si in f.insts_of(b) {
            let line = si.loc.line;
            match &si.inst {
                Inst::TxBegin => st.tx_depth = st.tx_depth.saturating_add(1),
                Inst::TxCommit | Inst::TxAbort => {
                    st.tx_depth = st
                        .tx_depth
                        .checked_sub(1)
                        .ok_or_else(|| err(f, line, "tx_commit/abort without tx_begin"))?;
                }
                Inst::EpochBegin => st.epoch_depth = st.epoch_depth.saturating_add(1),
                Inst::EpochEnd => {
                    st.epoch_depth = st
                        .epoch_depth
                        .checked_sub(1)
                        .ok_or_else(|| err(f, line, "epoch_end without epoch_begin"))?;
                }
                Inst::StrandBegin => st.strand_depth = st.strand_depth.saturating_add(1),
                Inst::StrandEnd => {
                    st.strand_depth = st
                        .strand_depth
                        .checked_sub(1)
                        .ok_or_else(|| err(f, line, "strand_end without strand_begin"))?;
                }
                _ => {}
            }
        }
        match &b.term.inst {
            Terminator::Ret { .. } => {
                if st != RegionState::default() {
                    return Err(err(
                        f,
                        b.term.loc.line,
                        "function returns inside an open tx/epoch/strand region",
                    ));
                }
            }
            t => {
                for s in t.successors() {
                    work.push((s, st));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn verify_src(src: &str) -> VResult {
        verify_module(&parse(src).expect("test source must parse"))
    }

    #[test]
    fn accepts_wellformed() {
        verify_src(
            r#"
module m
struct s { a: i64, next: ptr s }
fn f(%p: ptr s) -> i64 {
entry:
  tx_begin
  tx_add %p
  store %p.a, 1
  store %p.next, %p
  tx_commit
  %x = load %p.a
  ret %x
}
"#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_unbalanced_tx() {
        let r = verify_src("module m\nfn f() {\nentry:\n  tx_begin\n  ret\n}\n");
        assert!(r.unwrap_err().msg.contains("open tx"));
    }

    #[test]
    fn rejects_end_without_begin() {
        let r = verify_src("module m\nfn f() {\nentry:\n  epoch_end\n  ret\n}\n");
        assert!(r.unwrap_err().msg.contains("without epoch_begin"));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let r = verify_src(
            r#"
module m
fn g(%x: i64) {
entry:
  ret
}
fn f() {
entry:
  call g(1, 2)
  ret
}
"#,
        );
        assert!(r.unwrap_err().msg.contains("args"));
    }

    #[test]
    fn allows_unknown_external_callee() {
        verify_src("module m\nfn f() {\nentry:\n  call somewhere_else(1)\n  ret\n}\n").unwrap();
    }

    #[test]
    fn rejects_null_into_scalar() {
        let r = verify_src(
            r#"
module m
struct s { a: i64 }
fn f(%p: ptr s) {
entry:
  store %p.a, null
  ret
}
"#,
        );
        assert!(r.unwrap_err().msg.contains("type mismatch"));
    }

    #[test]
    fn rejects_missing_return_value() {
        let r = verify_src("module m\nfn f() -> i64 {\nentry:\n  ret\n}\n");
        assert!(r.unwrap_err().msg.contains("missing return value"));
    }

    #[test]
    fn loop_with_balanced_regions_ok() {
        verify_src(
            r#"
module m
struct s { a: i64 }
fn f(%p: ptr s, %n: i64) {
entry:
  jmp head
head:
  %c = gt %n, 0
  br %c, body, done
body:
  epoch_begin
  store %p.a, %n
  flush %p.a
  epoch_end
  fence
  %n2 = sub %n, 1
  %n3 = mov %n2
  jmp head
done:
  ret
}
"#,
        )
        .unwrap();
    }
}
