//! Programmatic construction of PIR modules.
//!
//! The corpus and the synthetic-workload generator build large modules
//! through this API instead of going through text. The builder mirrors the
//! parser's invariants: locals are created on first definition, blocks are
//! forward-declared so branches can target them, and every block must be
//! finished with a terminator.

use crate::inst::{BinOp, Inst, Operand, Place, Terminator};
use crate::loc::SourceLoc;
use crate::module::{BlockId, FuncAttr, Function, LocalDecl, LocalId, Module, Spanned};
use crate::types::{FieldDef, StructDef, StructId, Ty};

/// Builds a [`Module`] incrementally.
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Start a module named `name` modeling C file `file`.
    pub fn new(name: impl Into<String>, file: impl Into<String>) -> Self {
        ModuleBuilder { module: Module::new(name, file) }
    }

    /// Define a struct; returns its id.
    pub fn add_struct(&mut self, name: impl Into<String>, fields: Vec<(&str, Ty)>) -> StructId {
        let id = StructId(self.module.structs.len() as u32);
        self.module.structs.push(StructDef {
            name: name.into(),
            fields: fields
                .into_iter()
                .map(|(n, ty)| FieldDef { name: n.to_string(), ty })
                .collect(),
        });
        id
    }

    /// Begin building a function. Finish it with [`FunctionBuilder::finish`].
    pub fn function(
        &mut self,
        name: impl Into<String>,
        params: Vec<(&str, Ty)>,
        ret_ty: Option<Ty>,
    ) -> FunctionBuilder<'_> {
        FunctionBuilder::new(self, name.into(), params, ret_ty)
    }

    /// Add an extern (body-less) function declaration.
    pub fn extern_fn(
        &mut self,
        name: impl Into<String>,
        params: Vec<(&str, Ty)>,
        ret_ty: Option<Ty>,
        attrs: Vec<FuncAttr>,
    ) {
        let locals: Vec<LocalDecl> =
            params.into_iter().map(|(n, ty)| LocalDecl { name: n.to_string(), ty }).collect();
        let num_params = locals.len() as u32;
        self.module.functions.push(Function {
            name: name.into(),
            num_params,
            locals,
            ret_ty,
            insts: Vec::new(),
            blocks: Vec::new(),
            attrs,
        });
    }

    /// Finalize: rebuild indexes and hand back the module.
    pub fn finish(mut self) -> Module {
        // Re-intern callee symbols in flattened body order. The builder
        // interns at call-build time, which can differ from block order
        // when `switch_to` fills blocks out of order; the parser interns
        // in body order, so canonicalizing here keeps `parse(print(m))`
        // handle-for-handle equal to `m`.
        let old = std::mem::take(&mut self.module.symbols);
        let mut canon = crate::intern::SymbolTable::new();
        for f in &mut self.module.functions {
            for si in &mut f.insts {
                if let Inst::Call { callee, .. } = &mut si.inst {
                    *callee = canon.intern(old.resolve(*callee));
                }
            }
        }
        self.module.symbols = canon;
        self.module.rebuild_index();
        self.module
    }

    /// Access the module under construction (e.g. for struct lookups).
    pub fn module(&self) -> &Module {
        &self.module
    }
}

/// Builds one function. Instructions are appended to the *current block*,
/// which starts as `entry`. Use [`FunctionBuilder::new_block`] +
/// [`FunctionBuilder::switch_to`] for control flow.
pub struct FunctionBuilder<'m> {
    mb: &'m mut ModuleBuilder,
    name: String,
    num_params: u32,
    locals: Vec<LocalDecl>,
    ret_ty: Option<Ty>,
    attrs: Vec<FuncAttr>,
    blocks: Vec<PendingBlock>,
    current: usize,
    /// Line assigned to the next instruction; auto-increments.
    line: u32,
}

struct PendingBlock {
    label: String,
    insts: Vec<Spanned<Inst>>,
    term: Option<Spanned<Terminator>>,
}

impl<'m> FunctionBuilder<'m> {
    fn new(
        mb: &'m mut ModuleBuilder,
        name: String,
        params: Vec<(&str, Ty)>,
        ret_ty: Option<Ty>,
    ) -> Self {
        let locals: Vec<LocalDecl> =
            params.into_iter().map(|(n, ty)| LocalDecl { name: n.to_string(), ty }).collect();
        let num_params = locals.len() as u32;
        FunctionBuilder {
            mb,
            name,
            num_params,
            locals,
            ret_ty,
            attrs: Vec::new(),
            blocks: vec![PendingBlock { label: "entry".into(), insts: Vec::new(), term: None }],
            current: 0,
            line: 1,
        }
    }

    /// Parameter ids in declaration order.
    pub fn params(&self) -> Vec<LocalId> {
        (0..self.num_params).map(LocalId).collect()
    }

    /// Add a function attribute.
    pub fn attr(&mut self, attr: FuncAttr) -> &mut Self {
        self.attrs.push(attr);
        self
    }

    /// Set the source line for the next instruction (auto-increments after).
    pub fn at_line(&mut self, line: u32) -> &mut Self {
        self.line = line;
        self
    }

    /// Create (but do not switch to) a new block.
    pub fn new_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(PendingBlock { label: label.into(), insts: Vec::new(), term: None });
        id
    }

    /// Make `block` the current insertion point.
    pub fn switch_to(&mut self, block: BlockId) -> &mut Self {
        assert!(block.index() < self.blocks.len(), "switch_to: unknown block {block:?}");
        self.current = block.index();
        self
    }

    fn fresh_local(&mut self, hint: &str, ty: Ty) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        // Guarantee unique names for the printer/parser round trip.
        let name = format!("{hint}{}", self.locals.len());
        self.locals.push(LocalDecl { name, ty });
        id
    }

    fn push(&mut self, inst: Inst) {
        let loc = SourceLoc::new(self.line);
        self.line += 1;
        let b = &mut self.blocks[self.current];
        assert!(b.term.is_none(), "appending to terminated block `{}`", b.label);
        b.insts.push(Spanned::new(inst, loc));
    }

    fn set_term(&mut self, term: Terminator) {
        let loc = SourceLoc::new(self.line);
        self.line += 1;
        let b = &mut self.blocks[self.current];
        assert!(b.term.is_none(), "block `{}` already terminated", b.label);
        b.term = Some(Spanned::new(term, loc));
    }

    // === instructions =====================================================

    /// `%dst = palloc ty` — allocate in persistent memory.
    pub fn palloc(&mut self, ty: StructId) -> LocalId {
        let dst = self.fresh_local("p", Ty::Ptr(ty));
        self.push(Inst::PAlloc { dst, ty });
        dst
    }

    /// `%dst = valloc ty` — allocate in volatile memory.
    pub fn valloc(&mut self, ty: StructId) -> LocalId {
        let dst = self.fresh_local("v", Ty::Ptr(ty));
        self.push(Inst::VAlloc { dst, ty });
        dst
    }

    /// `store place, value`.
    pub fn store(&mut self, place: Place, value: Operand) {
        self.push(Inst::Store { place, value });
    }

    /// `%dst = load place`. The destination type must be supplied by the
    /// caller (the builder does not consult struct defs).
    pub fn load(&mut self, place: Place, ty: Ty) -> LocalId {
        let dst = self.fresh_local("l", ty);
        self.push(Inst::Load { dst, place });
        dst
    }

    /// `%dst = op lhs, rhs`.
    pub fn bin(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> LocalId {
        let dst = self.fresh_local("t", Ty::I64);
        self.push(Inst::Bin { dst, op, lhs, rhs });
        dst
    }

    /// `%dst = mov src`.
    pub fn mov(&mut self, src: Operand, ty: Ty) -> LocalId {
        let dst = self.fresh_local("m", ty);
        self.push(Inst::Mov { dst, src });
        dst
    }

    /// `flush place`.
    pub fn flush(&mut self, place: Place) {
        self.push(Inst::Flush { place });
    }

    /// `fence`.
    pub fn fence(&mut self) {
        self.push(Inst::Fence);
    }

    /// `persist place` (flush + fence).
    pub fn persist(&mut self, place: Place) {
        self.push(Inst::Persist { place });
    }

    /// `memset_persist place, value`.
    pub fn memset_persist(&mut self, place: Place, value: Operand) {
        self.push(Inst::MemSetPersist { place, value });
    }

    pub fn tx_begin(&mut self) {
        self.push(Inst::TxBegin);
    }

    pub fn tx_add(&mut self, place: Place) {
        self.push(Inst::TxAdd { place });
    }

    pub fn tx_commit(&mut self) {
        self.push(Inst::TxCommit);
    }

    pub fn tx_abort(&mut self) {
        self.push(Inst::TxAbort);
    }

    pub fn epoch_begin(&mut self) {
        self.push(Inst::EpochBegin);
    }

    pub fn epoch_end(&mut self) {
        self.push(Inst::EpochEnd);
    }

    pub fn strand_begin(&mut self) {
        self.push(Inst::StrandBegin);
    }

    pub fn strand_end(&mut self) {
        self.push(Inst::StrandEnd);
    }

    /// `call callee(args)` discarding any result.
    pub fn call_void(&mut self, callee: impl Into<String>, args: Vec<Operand>) {
        let callee = self.mb.module.symbols.intern(&callee.into());
        self.push(Inst::Call { dst: None, callee, args });
    }

    /// `%dst = call callee(args) : ty`.
    pub fn call(&mut self, callee: impl Into<String>, args: Vec<Operand>, ty: Ty) -> LocalId {
        let callee = self.mb.module.symbols.intern(&callee.into());
        let dst = self.fresh_local("c", ty);
        self.push(Inst::Call { dst: Some(dst), callee, args });
        dst
    }

    // === terminators ======================================================

    /// `ret` / `ret value`.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.set_term(Terminator::Ret { value });
    }

    /// `br cond, then_bb, else_bb`.
    pub fn br(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        self.set_term(Terminator::Br { cond, then_bb, else_bb });
    }

    /// `jmp bb`.
    pub fn jmp(&mut self, bb: BlockId) {
        self.set_term(Terminator::Jmp { bb });
    }

    /// Finish the function and append it to the module. Panics if any block
    /// lacks a terminator (catching builder misuse early, matching the
    /// parser's error behaviour).
    pub fn finish(self) {
        let pending: Vec<_> = self
            .blocks
            .into_iter()
            .map(|b| {
                let term =
                    b.term.unwrap_or_else(|| panic!("block `{}` has no terminator", b.label));
                (b.label, b.insts, term)
            })
            .collect();
        self.mb.module.functions.push(Function::assemble(
            self.name,
            self.num_params,
            self.locals,
            self.ret_ty,
            pending,
            self.attrs,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::printer::print;
    use crate::verify::verify_module;

    #[test]
    fn builder_produces_verifiable_module() {
        let mut mb = ModuleBuilder::new("built", "built.c");
        let s = mb.add_struct("rec", vec![("a", Ty::I64), ("b", Ty::I64)]);
        let mut fb = mb.function("go", vec![], None);
        let p = fb.palloc(s);
        fb.store(Place::field(p, 0), Operand::Const(1));
        fb.flush(Place::field(p, 0));
        fb.fence();
        let done = fb.new_block("done");
        let alt = fb.new_block("alt");
        let x = fb.load(Place::field(p, 1), Ty::I64);
        fb.br(Operand::Local(x), done, alt);
        fb.switch_to(alt);
        fb.persist(Place::local(p));
        fb.jmp(done);
        fb.switch_to(done);
        fb.ret(None);
        fb.finish();
        let m = mb.finish();
        verify_module(&m).expect("built module must verify");
        // And it must round-trip through the textual form.
        let m2 = parse(&print(&m)).expect("printed module must parse");
        assert_eq!(m, m2);
    }

    #[test]
    #[should_panic(expected = "no terminator")]
    fn unterminated_block_panics() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let fb = mb.function("f", vec![], None);
        fb.finish();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminator_panics() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let mut fb = mb.function("f", vec![], None);
        fb.ret(None);
        fb.ret(None);
        fb.finish();
    }

    #[test]
    fn at_line_controls_locations() {
        let mut mb = ModuleBuilder::new("m", "m.c");
        let mut fb = mb.function("f", vec![], None);
        fb.at_line(614);
        fb.fence();
        fb.fence();
        fb.ret(None);
        fb.finish();
        let m = mb.finish();
        let insts = m.functions[0].block_insts(0);
        assert_eq!(insts[0].loc.line, 614);
        assert_eq!(insts[1].loc.line, 615);
    }
}
