//! PIR instructions, places, operands, and terminators.
//!
//! The instruction set is the minimal closure of the events DeepMC's
//! analyses consume (paper §4): persistent operations (`store`/`flush`/
//! `fence`/`persist`/`memset_persist`), region markers (`tx_*`, `epoch_*`,
//! `strand_*`), pointer manipulation (`palloc`/`valloc`/`load`), plain
//! arithmetic, and control flow.

use crate::intern::Symbol;
use crate::module::{BlockId, LocalId};
use crate::types::StructId;
use serde::{Deserialize, Serialize};

/// A value operand: a constant, a local, or the null pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    Const(i64),
    Local(LocalId),
    Null,
}

/// One step of a place path beyond the base local.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Accessor {
    /// Select a named field (stored as its index in the struct def).
    Field(u32),
    /// Index into an array field. Non-constant indices make the analysis
    /// conservatively treat the whole array element range as touched.
    Index(Operand),
}

/// An lvalue: a base local plus an optional field / array-element path.
///
/// * `%x` — the local itself (for pointers: the whole pointee object).
/// * `%x.f` — field `f` of the object `%x` points to.
/// * `%x.f[i]` — element `i` of array field `f`.
///
/// Pointer chains must be broken up with explicit `load`s (as in LLVM IR),
/// which keeps the DSA honest: `%n2 = load %n.next; store %n2.val, 5`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Place {
    pub base: LocalId,
    pub path: Vec<Accessor>,
}

impl Place {
    /// A bare local with no projection.
    pub fn local(base: LocalId) -> Self {
        Place { base, path: Vec::new() }
    }

    /// `%base.field`.
    pub fn field(base: LocalId, field: u32) -> Self {
        Place { base, path: vec![Accessor::Field(field)] }
    }

    /// `%base.field[index]`.
    pub fn indexed(base: LocalId, field: u32, index: Operand) -> Self {
        Place { base, path: vec![Accessor::Field(field), Accessor::Index(index)] }
    }

    /// The first field selector on the path, if any.
    pub fn first_field(&self) -> Option<u32> {
        self.path.iter().find_map(|a| match a {
            Accessor::Field(f) => Some(*f),
            Accessor::Index(_) => None,
        })
    }

    /// True if the place names the whole object (no projection).
    pub fn is_whole_object(&self) -> bool {
        self.path.is_empty()
    }
}

/// Binary integer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// Evaluate the operation on two i64 values (division by zero yields 0,
    /// matching the interpreter's total semantics).
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Eq => (a == b) as i64,
            BinOp::Ne => (a != b) as i64,
            BinOp::Lt => (a < b) as i64,
            BinOp::Le => (a <= b) as i64,
            BinOp::Gt => (a > b) as i64,
            BinOp::Ge => (a >= b) as i64,
        }
    }

    /// Textual mnemonic used by the parser and printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::Gt => "gt",
            BinOp::Ge => "ge",
        }
    }

    /// All operations, for the parser's mnemonic table and proptests.
    pub const ALL: [BinOp; 14] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ];
}

/// A non-terminator PIR instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Inst {
    /// Allocate a struct in persistent memory (`pmemobj_tx_alloc` /
    /// `nvm_alloc` / `pmalloc` equivalents). `dst` becomes a pointer.
    PAlloc { dst: LocalId, ty: StructId },
    /// Allocate a struct in volatile memory (`malloc`).
    VAlloc { dst: LocalId, ty: StructId },
    /// Store `value` into `place`. A *persistent write* when the base object
    /// lives in NVM.
    Store { place: Place, value: Operand },
    /// Load from `place` into `dst`.
    Load { dst: LocalId, place: Place },
    /// `dst = lhs op rhs`.
    Bin { dst: LocalId, op: BinOp, lhs: Operand, rhs: Operand },
    /// Copy an operand into a local (`%x = mov %y`).
    Mov { dst: LocalId, src: Operand },
    /// Write back the cache line(s) of `place` (`clwb`). A whole-object
    /// place flushes every line of the object.
    Flush { place: Place },
    /// Persist barrier (`sfence`): all prior flushes are durable before any
    /// later persistent operation.
    Fence,
    /// Flush + fence combined (`pmemobj_persist`, `nvm_persist1`).
    Persist { place: Place },
    /// Zero-fill, flush, and fence a whole object
    /// (`pmemobj_memset_persist`).
    MemSetPersist { place: Place, value: Operand },
    /// Begin a durable transaction (`TX_BEGIN`, `nvm_txbegin`,
    /// `pmfs_new_transaction`).
    TxBegin,
    /// Undo-log an object into the current transaction (`TX_ADD`).
    TxAdd { place: Place },
    /// Commit the current transaction; the runtime persists logged objects.
    TxCommit,
    /// Abort the current transaction; the runtime rolls back logged objects.
    TxAbort,
    /// Epoch boundary open (epoch persistency; `pmfs` journal entry start).
    EpochBegin,
    /// Epoch boundary close. Persist ordering between epochs is enforced by
    /// a fence at this boundary (the missing-barrier rule checks this).
    EpochEnd,
    /// Begin a strand: persists inside may proceed concurrently with
    /// other strands (strand persistency).
    StrandBegin,
    /// End the current strand.
    StrandEnd,
    /// Direct call. The callee is an interned handle into the owning
    /// module's symbol table; `args` are operands and pointer locals pass
    /// object references.
    Call { dst: Option<LocalId>, callee: Symbol, args: Vec<Operand> },
}

impl Inst {
    /// True for instructions that are persistent-memory *operations* the
    /// checker tracks (writes, flushes, fences, persists, tx/epoch/strand
    /// markers) as opposed to plain computation.
    pub fn is_persist_relevant(&self) -> bool {
        !matches!(
            self,
            Inst::Load { .. } | Inst::Bin { .. } | Inst::Mov { .. } | Inst::VAlloc { .. }
        )
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminator {
    /// Return, optionally with a value.
    Ret { value: Option<Operand> },
    /// Conditional branch: nonzero → `then_bb`, zero → `else_bb`.
    Br { cond: Operand, then_bb: BlockId, else_bb: BlockId },
    /// Unconditional jump.
    Jmp { bb: BlockId },
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Ret { .. } => Vec::new(),
            Terminator::Br { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Terminator::Jmp { bb } => vec![*bb],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_arithmetic() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Sub.eval(2, 3), -1);
        assert_eq!(BinOp::Mul.eval(4, 3), 12);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Div.eval(7, 0), 0, "total semantics on /0");
        assert_eq!(BinOp::Rem.eval(7, 0), 0);
    }

    #[test]
    fn binop_eval_comparisons() {
        assert_eq!(BinOp::Eq.eval(3, 3), 1);
        assert_eq!(BinOp::Ne.eval(3, 3), 0);
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(BinOp::Ge.eval(1, 2), 0);
    }

    #[test]
    fn binop_eval_wrapping() {
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN);
    }

    #[test]
    fn place_helpers() {
        let p = Place::indexed(LocalId(2), 1, Operand::Const(3));
        assert_eq!(p.first_field(), Some(1));
        assert!(!p.is_whole_object());
        assert!(Place::local(LocalId(0)).is_whole_object());
    }

    #[test]
    fn terminator_successors() {
        let t =
            Terminator::Br { cond: Operand::Const(1), then_bb: BlockId(1), else_bb: BlockId(2) };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Terminator::Ret { value: None }.successors().is_empty());
    }

    #[test]
    fn persist_relevance() {
        assert!(Inst::Fence.is_persist_relevant());
        assert!(!Inst::Mov { dst: LocalId(0), src: Operand::Const(1) }.is_persist_relevant());
    }
}
