//! # PIR — Persistency Intermediate Representation
//!
//! PIR is a small, typed IR that models exactly the events DeepMC reasons
//! about in NVM programs: persistent and volatile allocation, field-sensitive
//! stores and loads, cache-line flushes (`clwb`), persist barriers (`sfence`),
//! combined persists (`pmemobj_persist`-style), transactional regions with
//! undo logging (`tx_begin`/`tx_add`/`tx_commit`), epoch and strand regions,
//! calls, and branches.
//!
//! In the original DeepMC paper these events are recovered from LLVM IR of C
//! programs; here PIR plays the role of that IR (see DESIGN.md §2). PIR has a
//! textual syntax with a hand-written parser ([`parse`]), a pretty printer
//! that round-trips ([`print()`]), a programmatic [`builder`], and a
//! [`verify`](verify::verify_module) pass enforcing well-formedness.
//!
//! ## Quick example
//!
//! ```
//! let src = r#"
//! module demo
//! file "demo.c"
//!
//! struct pair { a: i64, b: i64 }
//!
//! fn main() {
//! entry:
//!   %p = palloc pair
//!   store %p.a, 1
//!   flush %p.a
//!   fence
//!   ret
//! }
//! "#;
//! let module = deepmc_pir::parse(src).unwrap();
//! deepmc_pir::verify::verify_module(&module).unwrap();
//! assert_eq!(module.functions.len(), 1);
//! ```

pub mod builder;
pub mod inst;
pub mod intern;
pub mod loc;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod verify;

pub use builder::{FunctionBuilder, ModuleBuilder};
pub use inst::{Accessor, BinOp, Inst, Operand, Place, Terminator};
pub use intern::{Symbol, SymbolTable};
pub use loc::SourceLoc;
pub use module::{
    Block, BlockId, FuncAttr, FuncId, Function, InstRange, LocalDecl, LocalId, Module, Spanned,
};
pub use parser::{parse, ParseError};
pub use printer::print;
pub use types::{FieldDef, StructDef, StructId, Ty};
