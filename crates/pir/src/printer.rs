//! Pretty printer producing parseable PIR text.
//!
//! The printer emits `loc N` directives so that instruction source locations
//! survive a print → parse round trip (the parser's `loc` directive
//! auto-increments, so a directive is only emitted when the line sequence
//! breaks).

use crate::inst::{Accessor, Inst, Operand, Place, Terminator};
use crate::module::{Function, Module};
use crate::types::{StructDef, Ty};
use std::fmt::Write;

/// Render a whole module as parseable PIR text.
pub fn print(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {}", module.name);
    let _ = writeln!(out, "file \"{}\"", module.file);
    out.push('\n');
    for s in &module.structs {
        print_struct(&mut out, s, module);
        out.push('\n');
    }
    for f in &module.functions {
        print_function(&mut out, f, module);
        out.push('\n');
    }
    out
}

fn ty_str(ty: Ty, module: &Module) -> String {
    match ty {
        Ty::I64 => "i64".to_string(),
        Ty::Ptr(sid) => format!("ptr {}", module.struct_def(sid).name),
        Ty::Array(n) => format!("[i64; {n}]"),
    }
}

fn print_struct(out: &mut String, s: &StructDef, module: &Module) {
    let _ = writeln!(out, "struct {} {{", s.name);
    for f in &s.fields {
        let _ = writeln!(out, "  {}: {},", f.name, ty_str(f.ty, module));
    }
    out.push_str("}\n");
}

fn operand_str(op: Operand, f: &Function) -> String {
    match op {
        Operand::Const(n) => n.to_string(),
        Operand::Local(id) => format!("%{}", f.locals[id.index()].name),
        Operand::Null => "null".to_string(),
    }
}

fn place_str(p: &Place, f: &Function, module: &Module) -> String {
    let mut s = format!("%{}", f.locals[p.base.index()].name);
    let base_ty = f.local_ty(p.base);
    for acc in &p.path {
        match acc {
            Accessor::Field(idx) => {
                let sid = base_ty.pointee().expect("field access requires pointer base");
                let _ = write!(s, ".{}", module.struct_def(sid).field(*idx).name);
            }
            Accessor::Index(op) => {
                let _ = write!(s, "[{}]", operand_str(*op, f));
            }
        }
    }
    s
}

fn print_function(out: &mut String, f: &Function, module: &Module) {
    let is_extern = f.blocks.is_empty();
    if is_extern {
        out.push_str("extern ");
    }
    let _ = write!(out, "fn {}(", f.name);
    for (i, p) in f.params().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "%{}: {}", p.name, ty_str(p.ty, module));
    }
    out.push(')');
    if let Some(rt) = f.ret_ty {
        let _ = write!(out, " -> {}", ty_str(rt, module));
    }
    if !f.attrs.is_empty() {
        out.push_str(" attrs(");
        for (i, a) in f.attrs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(match a {
                crate::module::FuncAttr::TxContext => "tx_context",
                crate::module::FuncAttr::PersistWrapper => "persist_wrapper",
                crate::module::FuncAttr::ModelStrict => "model_strict",
                crate::module::FuncAttr::ModelEpoch => "model_epoch",
                crate::module::FuncAttr::ModelStrand => "model_strand",
            });
        }
        out.push(')');
    }
    if is_extern {
        out.push('\n');
        return;
    }
    out.push_str(" {\n");
    // Track the line the parser's auto-incrementing `loc` counter would
    // assign next; emit a directive only when the desired line differs.
    let mut next_loc: Option<u32> = None;
    let emit_loc = |out: &mut String, want: u32, next_loc: &mut Option<u32>| {
        if *next_loc != Some(want) {
            let _ = writeln!(out, "  loc {want}");
        }
        *next_loc = Some(want + 1);
    };
    for b in &f.blocks {
        let _ = writeln!(out, "{}:", b.label);
        for si in f.insts_of(b) {
            emit_loc(out, si.loc.line, &mut next_loc);
            let _ = writeln!(out, "  {}", inst_str(&si.inst, f, module));
        }
        emit_loc(out, b.term.loc.line, &mut next_loc);
        let _ = writeln!(out, "  {}", term_str(&b.term.inst, f));
    }
    out.push_str("}\n");
}

fn inst_str(inst: &Inst, f: &Function, module: &Module) -> String {
    match inst {
        Inst::PAlloc { dst, ty } => {
            format!("%{} = palloc {}", f.locals[dst.index()].name, module.struct_def(*ty).name)
        }
        Inst::VAlloc { dst, ty } => {
            format!("%{} = valloc {}", f.locals[dst.index()].name, module.struct_def(*ty).name)
        }
        Inst::Store { place, value } => {
            format!("store {}, {}", place_str(place, f, module), operand_str(*value, f))
        }
        Inst::Load { dst, place } => {
            format!("%{} = load {}", f.locals[dst.index()].name, place_str(place, f, module))
        }
        Inst::Bin { dst, op, lhs, rhs } => format!(
            "%{} = {} {}, {}",
            f.locals[dst.index()].name,
            op.mnemonic(),
            operand_str(*lhs, f),
            operand_str(*rhs, f)
        ),
        Inst::Mov { dst, src } => {
            format!("%{} = mov {}", f.locals[dst.index()].name, operand_str(*src, f))
        }
        Inst::Flush { place } => format!("flush {}", place_str(place, f, module)),
        Inst::Fence => "fence".to_string(),
        Inst::Persist { place } => format!("persist {}", place_str(place, f, module)),
        Inst::MemSetPersist { place, value } => {
            format!("memset_persist {}, {}", place_str(place, f, module), operand_str(*value, f))
        }
        Inst::TxBegin => "tx_begin".to_string(),
        Inst::TxAdd { place } => format!("tx_add {}", place_str(place, f, module)),
        Inst::TxCommit => "tx_commit".to_string(),
        Inst::TxAbort => "tx_abort".to_string(),
        Inst::EpochBegin => "epoch_begin".to_string(),
        Inst::EpochEnd => "epoch_end".to_string(),
        Inst::StrandBegin => "strand_begin".to_string(),
        Inst::StrandEnd => "strand_end".to_string(),
        Inst::Call { dst, callee, args } => {
            // Rendering is the only place symbols turn back into strings;
            // a handle from another module's table would print garbage.
            debug_assert!(
                module.symbols.contains(*callee),
                "callee symbol {callee:?} not in this module's string table"
            );
            let callee = module.symbols.resolve(*callee);
            let args: Vec<String> = args.iter().map(|a| operand_str(*a, f)).collect();
            match dst {
                // Annotate the result type so externs round-trip.
                Some(d) => format!(
                    "%{} = call {}({}) : {}",
                    f.locals[d.index()].name,
                    callee,
                    args.join(", "),
                    ty_str(f.local_ty(*d), module)
                ),
                None => format!("call {}({})", callee, args.join(", ")),
            }
        }
    }
}

fn term_str(term: &Terminator, f: &Function) -> String {
    match term {
        Terminator::Ret { value: None } => "ret".to_string(),
        Terminator::Ret { value: Some(v) } => format!("ret {}", operand_str(*v, f)),
        Terminator::Br { cond, then_bb, else_bb } => format!(
            "br {}, {}, {}",
            operand_str(*cond, f),
            f.blocks[then_bb.index()].label,
            f.blocks[else_bb.index()].label
        ),
        Terminator::Jmp { bb } => format!("jmp {}", f.blocks[bb.index()].label),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = r#"
module demo
file "demo.c"

struct node { n: i64, items: [i64; 4], next: ptr node }

fn helper(%p: ptr node) -> i64 attrs(tx_context) {
entry:
  loc 100
  %x = load %p.n
  store %p.items[%x], 3
  store %p.next, null
  ret %x
}

fn main() {
entry:
  %a = palloc node
  tx_begin
  tx_add %a
  store %a.n, 7
  %r = call helper(%a)
  tx_commit
  persist %a
  br %r, done, alt
alt:
  memset_persist %a, 0
  jmp done
done:
  ret
}
"#;

    #[test]
    fn roundtrip_preserves_module() {
        let m1 = parse(SRC).unwrap();
        let text = print(&m1);
        let m2 = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(m1, m2, "print → parse must round-trip\n{text}");
    }

    #[test]
    fn roundtrip_preserves_locs() {
        let m1 = parse(SRC).unwrap();
        let m2 = parse(&print(&m1)).unwrap();
        let f1 = &m1.functions[0];
        let f2 = &m2.functions[0];
        assert_eq!(f1.block_insts(0)[0].loc.line, 100);
        assert_eq!(f1.block_insts(0)[0].loc, f2.block_insts(0)[0].loc);
    }

    #[test]
    fn extern_roundtrip() {
        let src = "module m\nextern fn w(%p: i64) -> i64 attrs(persist_wrapper)\n";
        let m1 = parse(src).unwrap();
        let m2 = parse(&print(&m1)).unwrap();
        assert_eq!(m1, m2);
    }
}
