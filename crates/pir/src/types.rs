//! The PIR type system: scalars, typed pointers, and field-addressable
//! structs.
//!
//! Struct fields are what gives DeepMC its *field sensitivity*: the DSA/DSG
//! tracks points-to and mod/ref information per field (paper §4.2), and the
//! performance-bug rules distinguish flushing one modified field from
//! flushing the whole object (paper Fig. 5).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a struct definition within a [`crate::Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StructId(pub u32);

impl StructId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A PIR type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// 64-bit signed integer — the only scalar; booleans are 0/1.
    I64,
    /// Pointer to a struct allocated in persistent or volatile memory.
    Ptr(StructId),
    /// Fixed-size array of scalars, only legal as a struct field.
    Array(u32),
}

impl Ty {
    /// True for pointer types.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Ty::Ptr(_))
    }

    /// The pointee struct, if this is a pointer.
    pub fn pointee(&self) -> Option<StructId> {
        match self {
            Ty::Ptr(s) => Some(*s),
            _ => None,
        }
    }

    /// Size in bytes when laid out in the simulated NVM pool.
    /// Scalars and pointers are 8 bytes; arrays are 8 bytes per element.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Ty::I64 | Ty::Ptr(_) => 8,
            Ty::Array(n) => 8 * (*n as u64),
        }
    }
}

/// One named field of a struct.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldDef {
    pub name: String,
    pub ty: Ty,
}

/// A struct definition. Objects of this type are allocated with `palloc`
/// (persistent) or `valloc` (volatile).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<FieldDef>,
}

impl StructDef {
    /// Look up a field index by name.
    pub fn field_index(&self, name: &str) -> Option<u32> {
        self.fields.iter().position(|f| f.name == name).map(|i| i as u32)
    }

    /// The field at `idx`, panicking on out-of-range (verifier guarantees
    /// indices are valid after [`crate::verify::verify_module`]).
    pub fn field(&self, idx: u32) -> &FieldDef {
        &self.fields[idx as usize]
    }

    /// Total object size in bytes in the simulated pool layout: fields are
    /// laid out in declaration order with no padding (everything is 8-byte).
    pub fn size_bytes(&self) -> u64 {
        self.fields.iter().map(|f| f.ty.size_bytes()).sum()
    }

    /// Byte offset of field `idx` in the object layout.
    pub fn field_offset(&self, idx: u32) -> u64 {
        self.fields[..idx as usize].iter().map(|f| f.ty.size_bytes()).sum()
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::I64 => write!(f, "i64"),
            Ty::Ptr(s) => write!(f, "ptr#{}", s.0),
            Ty::Array(n) => write!(f, "[i64; {n}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_struct() -> StructDef {
        StructDef {
            name: "node".into(),
            fields: vec![
                FieldDef { name: "n".into(), ty: Ty::I64 },
                FieldDef { name: "items".into(), ty: Ty::Array(4) },
                FieldDef { name: "next".into(), ty: Ty::Ptr(StructId(0)) },
            ],
        }
    }

    #[test]
    fn field_index_lookup() {
        let s = node_struct();
        assert_eq!(s.field_index("n"), Some(0));
        assert_eq!(s.field_index("items"), Some(1));
        assert_eq!(s.field_index("next"), Some(2));
        assert_eq!(s.field_index("missing"), None);
    }

    #[test]
    fn sizes_and_offsets() {
        let s = node_struct();
        assert_eq!(s.size_bytes(), 8 + 32 + 8);
        assert_eq!(s.field_offset(0), 0);
        assert_eq!(s.field_offset(1), 8);
        assert_eq!(s.field_offset(2), 40);
    }

    #[test]
    fn ty_predicates() {
        assert!(Ty::Ptr(StructId(3)).is_ptr());
        assert_eq!(Ty::Ptr(StructId(3)).pointee(), Some(StructId(3)));
        assert!(!Ty::I64.is_ptr());
        assert_eq!(Ty::Array(5).size_bytes(), 40);
    }
}
