//! Source locations attached to every instruction.
//!
//! DeepMC reports warnings with the file and line of the offending operation
//! (paper §4.3: "DeepMC maintains metadata associated with each trace entry.
//! It includes the line numbers of the operations in a trace"). PIR carries a
//! per-module file name and a per-instruction line. The parser assigns real
//! line numbers from the source text, and the `loc N` directive overrides the
//! current line so corpus programs can cite the line numbers reported in the
//! paper's Tables 3 and 8.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A `file:line` source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceLoc {
    /// 1-based line number. 0 means "unknown".
    pub line: u32,
}

impl SourceLoc {
    /// An unknown location (line 0).
    pub const UNKNOWN: SourceLoc = SourceLoc { line: 0 };

    /// Create a location at `line`.
    pub fn new(line: u32) -> Self {
        SourceLoc { line }
    }

    /// True if this location carries no line information.
    pub fn is_unknown(&self) -> bool {
        self.line == 0
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unknown() {
            write!(f, "?")
        } else {
            write!(f, "{}", self.line)
        }
    }
}

impl From<u32> for SourceLoc {
    fn from(line: u32) -> Self {
        SourceLoc { line }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_displays_question_mark() {
        assert_eq!(SourceLoc::UNKNOWN.to_string(), "?");
        assert!(SourceLoc::UNKNOWN.is_unknown());
    }

    #[test]
    fn known_displays_line() {
        let loc = SourceLoc::new(201);
        assert_eq!(loc.to_string(), "201");
        assert!(!loc.is_unknown());
    }

    #[test]
    fn ordering_follows_line_numbers() {
        assert!(SourceLoc::new(3) < SourceLoc::new(10));
    }
}
