//! Textual PIR parser: hand-written lexer + recursive descent.
//!
//! See the crate docs for the surface syntax. Noteworthy pieces:
//!
//! * `//` starts a line comment.
//! * `loc N` sets the source line reported for the *following* instructions
//!   (auto-incrementing), so corpus programs can cite the exact line numbers
//!   of the C bugs they model (paper Tables 3 and 8). Without a `loc`
//!   directive an instruction reports its own line in the `.pir` text.
//! * `extern fn` declares a body-less function (an annotated persistent
//!   wrapper or out-of-module callee).

use crate::inst::{BinOp, Inst, Operand, Place, Terminator};
use crate::intern::SymbolTable;
use crate::loc::SourceLoc;
use crate::module::{FuncAttr, Function, LocalDecl, LocalId, Module, Spanned};
use crate::types::{FieldDef, StructDef, StructId, Ty};
use std::collections::HashMap;
use std::fmt;

/// A parse error with a line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Local(String),
    Int(i64),
    Str(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Semi,
    Dot,
    Assign,
    Arrow,
    Minus,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Local(s) => write!(f, "`%{s}`"),
            Tok::Int(n) => write!(f, "`{n}`"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer {
    toks: Vec<(Tok, u32)>,
    pos: usize,
}

fn lex(src: &str) -> PResult<Vec<(Tok, u32)>> {
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    while let Some(&c2) = chars.peek() {
                        if c2 == '\n' {
                            break;
                        }
                        chars.next();
                    }
                } else {
                    return Err(ParseError { line, msg: "stray `/` (use `//` comments)".into() });
                }
            }
            '{' => {
                toks.push((Tok::LBrace, line));
                chars.next();
            }
            '}' => {
                toks.push((Tok::RBrace, line));
                chars.next();
            }
            '(' => {
                toks.push((Tok::LParen, line));
                chars.next();
            }
            ')' => {
                toks.push((Tok::RParen, line));
                chars.next();
            }
            '[' => {
                toks.push((Tok::LBracket, line));
                chars.next();
            }
            ']' => {
                toks.push((Tok::RBracket, line));
                chars.next();
            }
            ',' => {
                toks.push((Tok::Comma, line));
                chars.next();
            }
            ':' => {
                toks.push((Tok::Colon, line));
                chars.next();
            }
            ';' => {
                toks.push((Tok::Semi, line));
                chars.next();
            }
            '.' => {
                toks.push((Tok::Dot, line));
                chars.next();
            }
            '=' => {
                toks.push((Tok::Assign, line));
                chars.next();
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    toks.push((Tok::Arrow, line));
                } else {
                    toks.push((Tok::Minus, line));
                }
            }
            '%' => {
                chars.next();
                let mut s = String::new();
                while let Some(&c2) = chars.peek() {
                    if c2.is_alphanumeric() || c2 == '_' {
                        s.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if s.is_empty() {
                    return Err(ParseError { line, msg: "`%` must be followed by a name".into() });
                }
                toks.push((Tok::Local(s), line));
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') | None => {
                            return Err(ParseError { line, msg: "unterminated string".into() })
                        }
                        Some(c2) => s.push(c2),
                    }
                }
                toks.push((Tok::Str(s), line));
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while let Some(&c2) = chars.peek() {
                    if let Some(d) = c2.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|v| v.checked_add(d as i64))
                            .ok_or_else(|| ParseError { line, msg: "integer overflow".into() })?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Int(n), line));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c2) = chars.peek() {
                    if c2.is_alphanumeric() || c2 == '_' {
                        s.push(c2);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Ident(s), line));
            }
            other => {
                return Err(ParseError { line, msg: format!("unexpected character `{other}`") })
            }
        }
    }
    toks.push((Tok::Eof, line));
    Ok(toks)
}

impl Lexer {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].0
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].1
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError { line: self.line(), msg: msg.into() })
    }

    fn expect(&mut self, t: Tok) -> PResult<()> {
        if *self.peek() == t {
            self.next();
            Ok(())
        } else {
            let found = self.peek().clone();
            self.err(format!("expected {t}, found {found}"))
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError {
                line: self.toks[self.pos.saturating_sub(1)].1,
                msg: format!("expected identifier, found {other}"),
            }),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> PResult<()> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.next();
                Ok(())
            }
            other => {
                let found = other.clone();
                self.err(format!("expected `{kw}`, found {found}"))
            }
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }
}

/// Unresolved place: names instead of ids.
#[derive(Debug, Clone)]
struct RawPlace {
    base: String,
    field: Option<String>,
    index: Option<RawOperand>,
    line: u32,
}

#[derive(Debug, Clone)]
enum RawOperand {
    Const(i64),
    Local(String),
    Null,
}

#[derive(Debug, Clone)]
enum RawInst {
    PAlloc { dst: String, ty: String },
    VAlloc { dst: String, ty: String },
    Store { place: RawPlace, value: RawOperand },
    Load { dst: String, place: RawPlace },
    Bin { dst: String, op: BinOp, lhs: RawOperand, rhs: RawOperand },
    Mov { dst: String, src: RawOperand },
    Flush { place: RawPlace },
    Fence,
    Persist { place: RawPlace },
    MemSetPersist { place: RawPlace, value: RawOperand },
    TxBegin,
    TxAdd { place: RawPlace },
    TxCommit,
    TxAbort,
    EpochBegin,
    EpochEnd,
    StrandBegin,
    StrandEnd,
    Call { dst: Option<String>, callee: String, args: Vec<RawOperand>, ty: Option<RawTy> },
}

#[derive(Debug, Clone)]
enum RawTerm {
    Ret { value: Option<RawOperand> },
    Br { cond: RawOperand, then_bb: String, else_bb: String },
    Jmp { bb: String },
}

#[derive(Debug, Clone)]
enum RawTy {
    I64,
    Ptr(String),
    Array(u32),
}

struct RawBlock {
    label: String,
    insts: Vec<(RawInst, SourceLoc)>,
    term: (RawTerm, SourceLoc),
    term_line: u32,
}

struct RawFunction {
    name: String,
    params: Vec<(String, RawTy)>,
    ret_ty: Option<RawTy>,
    attrs: Vec<FuncAttr>,
    blocks: Vec<RawBlock>,
    is_extern: bool,
    line: u32,
}

const TERM_KWS: [&str; 3] = ["ret", "br", "jmp"];

fn binop_from_mnemonic(s: &str) -> Option<BinOp> {
    BinOp::ALL.iter().copied().find(|op| op.mnemonic() == s)
}

struct Parser {
    lx: Lexer,
    /// Line override from the `loc N` directive (auto-incrementing).
    pending_loc: Option<u32>,
}

impl Parser {
    fn inst_loc(&mut self, actual_line: u32) -> SourceLoc {
        match self.pending_loc {
            Some(n) => {
                self.pending_loc = Some(n + 1);
                SourceLoc::new(n)
            }
            None => SourceLoc::new(actual_line),
        }
    }

    fn parse_ty(&mut self) -> PResult<RawTy> {
        if self.lx.eat(&Tok::LBracket) {
            self.lx.expect_kw("i64")?;
            self.lx.expect(Tok::Semi)?;
            let n = match self.lx.next() {
                Tok::Int(n) if n >= 0 => n as u32,
                _ => return self.lx.err("expected array length"),
            };
            self.lx.expect(Tok::RBracket)?;
            return Ok(RawTy::Array(n));
        }
        let name = self.lx.expect_ident()?;
        match name.as_str() {
            "i64" => Ok(RawTy::I64),
            "ptr" => {
                let s = self.lx.expect_ident()?;
                Ok(RawTy::Ptr(s))
            }
            other => Err(ParseError {
                line: self.lx.line(),
                msg: format!("unknown type `{other}` (expected i64, ptr <struct>, or [i64; N])"),
            }),
        }
    }

    fn parse_operand(&mut self) -> PResult<RawOperand> {
        match self.lx.peek().clone() {
            Tok::Int(n) => {
                self.lx.next();
                Ok(RawOperand::Const(n))
            }
            Tok::Minus => {
                self.lx.next();
                match self.lx.next() {
                    Tok::Int(n) => Ok(RawOperand::Const(-n)),
                    _ => self.lx.err("expected integer after `-`"),
                }
            }
            Tok::Local(name) => {
                self.lx.next();
                Ok(RawOperand::Local(name))
            }
            Tok::Ident(s) if s == "null" => {
                self.lx.next();
                Ok(RawOperand::Null)
            }
            other => self.lx.err(format!("expected operand, found {other}")),
        }
    }

    fn parse_place(&mut self) -> PResult<RawPlace> {
        let line = self.lx.line();
        let base = match self.lx.next() {
            Tok::Local(s) => s,
            other => {
                return Err(ParseError { line, msg: format!("expected place, found {other}") })
            }
        };
        let mut field = None;
        let mut index = None;
        if self.lx.eat(&Tok::Dot) {
            field = Some(self.lx.expect_ident()?);
            if self.lx.eat(&Tok::LBracket) {
                index = Some(self.parse_operand()?);
                self.lx.expect(Tok::RBracket)?;
            }
        }
        Ok(RawPlace { base, field, index, line })
    }

    fn parse_call_tail(&mut self, dst: Option<String>) -> PResult<RawInst> {
        let callee = self.lx.expect_ident()?;
        self.lx.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if !self.lx.eat(&Tok::RParen) {
            loop {
                args.push(self.parse_operand()?);
                if self.lx.eat(&Tok::RParen) {
                    break;
                }
                self.lx.expect(Tok::Comma)?;
            }
        }
        let ty = if self.lx.eat(&Tok::Colon) { Some(self.parse_ty()?) } else { None };
        Ok(RawInst::Call { dst, callee, args, ty })
    }

    /// Parse one statement. Returns `Ok(None)` for directives that produce
    /// no instruction (`loc N`).
    fn parse_stmt(&mut self) -> PResult<Option<(RawInst, SourceLoc)>> {
        let line = self.lx.line();
        match self.lx.peek().clone() {
            Tok::Ident(kw) if kw == "loc" => {
                self.lx.next();
                match self.lx.next() {
                    Tok::Int(n) if n >= 0 => {
                        self.pending_loc = Some(n as u32);
                        Ok(None)
                    }
                    _ => self.lx.err("expected line number after `loc`"),
                }
            }
            Tok::Local(dst) => {
                self.lx.next();
                self.lx.expect(Tok::Assign)?;
                let kw = self.lx.expect_ident()?;
                let inst = match kw.as_str() {
                    "palloc" => RawInst::PAlloc { dst, ty: self.lx.expect_ident()? },
                    "valloc" => RawInst::VAlloc { dst, ty: self.lx.expect_ident()? },
                    "load" => RawInst::Load { dst, place: self.parse_place()? },
                    "mov" => RawInst::Mov { dst, src: self.parse_operand()? },
                    "call" => self.parse_call_tail(Some(dst))?,
                    other => match binop_from_mnemonic(other) {
                        Some(op) => {
                            let lhs = self.parse_operand()?;
                            self.lx.expect(Tok::Comma)?;
                            let rhs = self.parse_operand()?;
                            RawInst::Bin { dst, op, lhs, rhs }
                        }
                        None => {
                            return self.lx.err(format!("unknown instruction `{other}`"));
                        }
                    },
                };
                let loc = self.inst_loc(line);
                Ok(Some((inst, loc)))
            }
            Tok::Ident(kw) => {
                self.lx.next();
                let inst = match kw.as_str() {
                    "store" => {
                        let place = self.parse_place()?;
                        self.lx.expect(Tok::Comma)?;
                        let value = self.parse_operand()?;
                        RawInst::Store { place, value }
                    }
                    "flush" => RawInst::Flush { place: self.parse_place()? },
                    "fence" => RawInst::Fence,
                    "persist" => RawInst::Persist { place: self.parse_place()? },
                    "memset_persist" => {
                        let place = self.parse_place()?;
                        self.lx.expect(Tok::Comma)?;
                        let value = self.parse_operand()?;
                        RawInst::MemSetPersist { place, value }
                    }
                    "tx_begin" => RawInst::TxBegin,
                    "tx_add" => RawInst::TxAdd { place: self.parse_place()? },
                    "tx_commit" => RawInst::TxCommit,
                    "tx_abort" => RawInst::TxAbort,
                    "epoch_begin" => RawInst::EpochBegin,
                    "epoch_end" => RawInst::EpochEnd,
                    "strand_begin" => RawInst::StrandBegin,
                    "strand_end" => RawInst::StrandEnd,
                    "call" => self.parse_call_tail(None)?,
                    other => return self.lx.err(format!("unknown statement `{other}`")),
                };
                let loc = self.inst_loc(line);
                Ok(Some((inst, loc)))
            }
            other => self.lx.err(format!("expected statement, found {other}")),
        }
    }

    fn parse_terminator(&mut self) -> PResult<(RawTerm, SourceLoc)> {
        let line = self.lx.line();
        let kw = self.lx.expect_ident()?;
        let term = match kw.as_str() {
            "ret" => {
                // `ret` with no value if the next token starts a label/`}`.
                let has_value = matches!(self.lx.peek(), Tok::Int(_) | Tok::Minus | Tok::Local(_))
                    || matches!(self.lx.peek(), Tok::Ident(s) if s == "null");
                let value = if has_value { Some(self.parse_operand()?) } else { None };
                RawTerm::Ret { value }
            }
            "br" => {
                let cond = self.parse_operand()?;
                self.lx.expect(Tok::Comma)?;
                let then_bb = self.lx.expect_ident()?;
                self.lx.expect(Tok::Comma)?;
                let else_bb = self.lx.expect_ident()?;
                RawTerm::Br { cond, then_bb, else_bb }
            }
            "jmp" => RawTerm::Jmp { bb: self.lx.expect_ident()? },
            other => return self.lx.err(format!("expected terminator, found `{other}`")),
        };
        let loc = self.inst_loc(line);
        Ok((term, loc))
    }

    fn parse_block(&mut self) -> PResult<RawBlock> {
        let label = self.lx.expect_ident()?;
        self.lx.expect(Tok::Colon)?;
        let mut insts = Vec::new();
        loop {
            // Terminator?
            if let Tok::Ident(kw) = self.lx.peek() {
                if TERM_KWS.contains(&kw.as_str()) {
                    let term_line = self.lx.line();
                    let term = self.parse_terminator()?;
                    return Ok(RawBlock { label, insts, term, term_line });
                }
            }
            // A label (`ident :`) or `}` before a terminator is an error.
            match (self.lx.peek(), self.lx.peek2()) {
                (Tok::RBrace, _) | (Tok::Ident(_), Tok::Colon) if !matches!(self.lx.peek(), Tok::Ident(s) if s == "loc") =>
                {
                    return self.lx.err(format!("block `{label}` has no terminator (ret/br/jmp)"));
                }
                _ => {}
            }
            if let Some(inst) = self.parse_stmt()? {
                insts.push(inst);
            }
        }
    }

    fn parse_attrs(&mut self) -> PResult<Vec<FuncAttr>> {
        let mut attrs = Vec::new();
        if self.lx.eat_kw("attrs") {
            self.lx.expect(Tok::LParen)?;
            loop {
                let name = self.lx.expect_ident()?;
                match name.as_str() {
                    "tx_context" => attrs.push(FuncAttr::TxContext),
                    "persist_wrapper" => attrs.push(FuncAttr::PersistWrapper),
                    "model_strict" => attrs.push(FuncAttr::ModelStrict),
                    "model_epoch" => attrs.push(FuncAttr::ModelEpoch),
                    "model_strand" => attrs.push(FuncAttr::ModelStrand),
                    other => return self.lx.err(format!("unknown attribute `{other}`")),
                }
                if self.lx.eat(&Tok::RParen) {
                    break;
                }
                self.lx.expect(Tok::Comma)?;
            }
        }
        Ok(attrs)
    }

    fn parse_function(&mut self, is_extern: bool) -> PResult<RawFunction> {
        let line = self.lx.line();
        self.lx.expect_kw("fn")?;
        let name = self.lx.expect_ident()?;
        self.lx.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.lx.eat(&Tok::RParen) {
            loop {
                let pname = match self.lx.next() {
                    Tok::Local(s) => s,
                    other => {
                        return self.lx.err(format!("expected `%param`, found {other}"));
                    }
                };
                self.lx.expect(Tok::Colon)?;
                let ty = self.parse_ty()?;
                params.push((pname, ty));
                if self.lx.eat(&Tok::RParen) {
                    break;
                }
                self.lx.expect(Tok::Comma)?;
            }
        }
        let ret_ty = if self.lx.eat(&Tok::Arrow) { Some(self.parse_ty()?) } else { None };
        let attrs = self.parse_attrs()?;
        let mut blocks = Vec::new();
        if !is_extern {
            self.pending_loc = None;
            self.lx.expect(Tok::LBrace)?;
            while !self.lx.eat(&Tok::RBrace) {
                blocks.push(self.parse_block()?);
            }
            if blocks.is_empty() {
                return self.lx.err(format!("function `{name}` has no blocks"));
            }
        }
        Ok(RawFunction { name, params, ret_ty, attrs, blocks, is_extern, line })
    }

    fn parse_struct(&mut self) -> PResult<StructDefRaw> {
        let name = self.lx.expect_ident()?;
        self.lx.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        while !self.lx.eat(&Tok::RBrace) {
            let fname = self.lx.expect_ident()?;
            self.lx.expect(Tok::Colon)?;
            let ty = self.parse_ty()?;
            fields.push((fname, ty));
            if !self.lx.eat(&Tok::Comma) {
                self.lx.expect(Tok::RBrace)?;
                break;
            }
        }
        Ok(StructDefRaw { name, fields })
    }
}

struct StructDefRaw {
    name: String,
    fields: Vec<(String, RawTy)>,
}

/// Parse a PIR module from text.
pub fn parse(src: &str) -> Result<Module, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { lx: Lexer { toks, pos: 0 }, pending_loc: None };

    p.lx.expect_kw("module")?;
    let mod_name = p.lx.expect_ident()?;
    let file = if p.lx.eat_kw("file") {
        match p.lx.next() {
            Tok::Str(s) => s,
            other => return p.lx.err(format!("expected file string, found {other}")),
        }
    } else {
        format!("{mod_name}.c")
    };

    let mut raw_structs = Vec::new();
    let mut raw_funcs = Vec::new();
    loop {
        match p.lx.peek().clone() {
            Tok::Eof => break,
            Tok::Ident(kw) if kw == "struct" => {
                p.lx.next();
                raw_structs.push(p.parse_struct()?);
            }
            Tok::Ident(kw) if kw == "fn" => {
                raw_funcs.push(p.parse_function(false)?);
            }
            Tok::Ident(kw) if kw == "extern" => {
                p.lx.next();
                raw_funcs.push(p.parse_function(true)?);
            }
            other => {
                return p.lx.err(format!("expected `struct`, `fn`, or `extern`, found {other}"));
            }
        }
    }

    resolve(mod_name, file, raw_structs, raw_funcs)
}

/// Name resolution + local type inference, producing the final [`Module`].
fn resolve(
    mod_name: String,
    file: String,
    raw_structs: Vec<StructDefRaw>,
    raw_funcs: Vec<RawFunction>,
) -> Result<Module, ParseError> {
    let struct_ids: HashMap<String, StructId> =
        raw_structs.iter().enumerate().map(|(i, s)| (s.name.clone(), StructId(i as u32))).collect();

    let lower_ty = |ty: &RawTy, line: u32| -> PResult<Ty> {
        match ty {
            RawTy::I64 => Ok(Ty::I64),
            RawTy::Array(n) => Ok(Ty::Array(*n)),
            RawTy::Ptr(name) => struct_ids
                .get(name)
                .map(|id| Ty::Ptr(*id))
                .ok_or_else(|| ParseError { line, msg: format!("unknown struct `{name}`") }),
        }
    };

    let mut structs = Vec::with_capacity(raw_structs.len());
    for rs in &raw_structs {
        let mut fields = Vec::with_capacity(rs.fields.len());
        for (fname, fty) in &rs.fields {
            fields.push(FieldDef { name: fname.clone(), ty: lower_ty(fty, 0)? });
        }
        structs.push(StructDef { name: rs.name.clone(), fields });
    }

    // Function signatures first, so calls can be typed.
    let mut func_ret: HashMap<String, Option<Ty>> = HashMap::new();
    for rf in &raw_funcs {
        let ret = match &rf.ret_ty {
            Some(t) => Some(lower_ty(t, rf.line)?),
            None => None,
        };
        if func_ret.insert(rf.name.clone(), ret).is_some() {
            return Err(ParseError {
                line: rf.line,
                msg: format!("duplicate function `{}`", rf.name),
            });
        }
    }

    let mut symbols = SymbolTable::new();
    let mut functions = Vec::with_capacity(raw_funcs.len());
    for rf in raw_funcs {
        functions.push(resolve_function(
            rf,
            &structs,
            &struct_ids,
            &func_ret,
            &lower_ty,
            &mut symbols,
        )?);
    }

    let mut module = Module::new(mod_name, file);
    module.structs = structs;
    module.functions = functions;
    module.symbols = symbols;
    module.rebuild_index();
    Ok(module)
}

fn resolve_function(
    rf: RawFunction,
    structs: &[StructDef],
    _struct_ids: &HashMap<String, StructId>,
    func_ret: &HashMap<String, Option<Ty>>,
    lower_ty: &dyn Fn(&RawTy, u32) -> PResult<Ty>,
    symbols: &mut SymbolTable,
) -> Result<Function, ParseError> {
    let mut locals: Vec<LocalDecl> = Vec::new();
    let mut local_ids: HashMap<String, LocalId> = HashMap::new();
    for (pname, pty) in &rf.params {
        let ty = lower_ty(pty, rf.line)?;
        if matches!(ty, Ty::Array(_)) {
            return Err(ParseError {
                line: rf.line,
                msg: format!("parameter `%{pname}` may not be an array"),
            });
        }
        let id = LocalId(locals.len() as u32);
        if local_ids.insert(pname.clone(), id).is_some() {
            return Err(ParseError {
                line: rf.line,
                msg: format!("duplicate parameter `%{pname}`"),
            });
        }
        locals.push(LocalDecl { name: pname.clone(), ty });
    }
    let num_params = locals.len() as u32;
    let ret_ty = match &rf.ret_ty {
        Some(t) => Some(lower_ty(t, rf.line)?),
        None => None,
    };

    let block_ids: HashMap<String, crate::module::BlockId> = rf
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (b.label.clone(), crate::module::BlockId(i as u32)))
        .collect();
    if block_ids.len() != rf.blocks.len() {
        return Err(ParseError { line: rf.line, msg: "duplicate block label".into() });
    }

    // Define a local on first assignment; later assignments must agree in
    // type (all locals are mutable registers).
    let define = |name: &str,
                  ty: Ty,
                  line: u32,
                  locals: &mut Vec<LocalDecl>,
                  local_ids: &mut HashMap<String, LocalId>|
     -> PResult<LocalId> {
        if let Some(&id) = local_ids.get(name) {
            let existing = locals[id.index()].ty;
            if existing != ty {
                return Err(ParseError {
                    line,
                    msg: format!("local `%{name}` redefined with type {ty} (was {existing})"),
                });
            }
            Ok(id)
        } else {
            let id = LocalId(locals.len() as u32);
            local_ids.insert(name.to_string(), id);
            locals.push(LocalDecl { name: name.to_string(), ty });
            Ok(id)
        }
    };

    let use_local =
        |name: &str, line: u32, local_ids: &HashMap<String, LocalId>| -> PResult<LocalId> {
            local_ids.get(name).copied().ok_or_else(|| ParseError {
                line,
                msg: format!("use of undefined local `%{name}`"),
            })
        };

    let lower_operand =
        |op: &RawOperand, line: u32, local_ids: &HashMap<String, LocalId>| -> PResult<Operand> {
            match op {
                RawOperand::Const(n) => Ok(Operand::Const(*n)),
                RawOperand::Null => Ok(Operand::Null),
                RawOperand::Local(name) => Ok(Operand::Local(use_local(name, line, local_ids)?)),
            }
        };

    // Resolve a raw place; returns the place and the type of the location it
    // names (for load-type inference).
    let lower_place = |rp: &RawPlace,
                       locals: &[LocalDecl],
                       local_ids: &HashMap<String, LocalId>|
     -> PResult<(Place, Ty)> {
        let base = use_local(&rp.base, rp.line, local_ids)?;
        let base_ty = locals[base.index()].ty;
        match &rp.field {
            None => Ok((Place::local(base), base_ty)),
            Some(fname) => {
                let sid = base_ty.pointee().ok_or_else(|| ParseError {
                    line: rp.line,
                    msg: format!("`%{}` is not a pointer, cannot access field `{fname}`", rp.base),
                })?;
                let sdef = &structs[sid.index()];
                let fidx = sdef.field_index(fname).ok_or_else(|| ParseError {
                    line: rp.line,
                    msg: format!("struct `{}` has no field `{fname}`", sdef.name),
                })?;
                let fty = sdef.field(fidx).ty;
                match &rp.index {
                    None => Ok((Place::field(base, fidx), fty)),
                    Some(idx) => {
                        if !matches!(fty, Ty::Array(_)) {
                            return Err(ParseError {
                                line: rp.line,
                                msg: format!("field `{fname}` is not an array"),
                            });
                        }
                        let idx = lower_operand(idx, rp.line, local_ids)?;
                        Ok((Place::indexed(base, fidx, idx), Ty::I64))
                    }
                }
            }
        }
    };

    let mut blocks = Vec::with_capacity(rf.blocks.len());
    for rb in rf.blocks {
        let mut insts = Vec::with_capacity(rb.insts.len());
        for (ri, loc) in rb.insts {
            let line = loc.line;
            let inst = match ri {
                RawInst::PAlloc { dst, ty } => {
                    let sid = structs
                        .iter()
                        .position(|s| s.name == ty)
                        .map(|i| StructId(i as u32))
                        .ok_or_else(|| ParseError {
                            line,
                            msg: format!("unknown struct `{ty}`"),
                        })?;
                    let dst = define(&dst, Ty::Ptr(sid), line, &mut locals, &mut local_ids)?;
                    Inst::PAlloc { dst, ty: sid }
                }
                RawInst::VAlloc { dst, ty } => {
                    let sid = structs
                        .iter()
                        .position(|s| s.name == ty)
                        .map(|i| StructId(i as u32))
                        .ok_or_else(|| ParseError {
                            line,
                            msg: format!("unknown struct `{ty}`"),
                        })?;
                    let dst = define(&dst, Ty::Ptr(sid), line, &mut locals, &mut local_ids)?;
                    Inst::VAlloc { dst, ty: sid }
                }
                RawInst::Store { place, value } => {
                    let value = lower_operand(&value, line, &local_ids)?;
                    let (place, _) = lower_place(&place, &locals, &local_ids)?;
                    if place.is_whole_object() {
                        return Err(ParseError {
                            line,
                            msg: "store needs a field place (use `mov` for locals)".into(),
                        });
                    }
                    Inst::Store { place, value }
                }
                RawInst::Load { dst, place } => {
                    let (place, ty) = lower_place(&place, &locals, &local_ids)?;
                    if place.is_whole_object() {
                        return Err(ParseError {
                            line,
                            msg: "load needs a field place (use `mov` for locals)".into(),
                        });
                    }
                    let dst = define(&dst, ty, line, &mut locals, &mut local_ids)?;
                    Inst::Load { dst, place }
                }
                RawInst::Bin { dst, op, lhs, rhs } => {
                    let lhs = lower_operand(&lhs, line, &local_ids)?;
                    let rhs = lower_operand(&rhs, line, &local_ids)?;
                    let dst = define(&dst, Ty::I64, line, &mut locals, &mut local_ids)?;
                    Inst::Bin { dst, op, lhs, rhs }
                }
                RawInst::Mov { dst, src } => {
                    let src = lower_operand(&src, line, &local_ids)?;
                    let ty = match src {
                        Operand::Local(id) => locals[id.index()].ty,
                        Operand::Const(_) => Ty::I64,
                        Operand::Null => {
                            return Err(ParseError {
                                line,
                                msg: "cannot infer type of `mov null`; store null directly".into(),
                            })
                        }
                    };
                    let dst = define(&dst, ty, line, &mut locals, &mut local_ids)?;
                    Inst::Mov { dst, src }
                }
                RawInst::Flush { place } => {
                    let (place, _) = lower_place(&place, &locals, &local_ids)?;
                    Inst::Flush { place }
                }
                RawInst::Fence => Inst::Fence,
                RawInst::Persist { place } => {
                    let (place, _) = lower_place(&place, &locals, &local_ids)?;
                    Inst::Persist { place }
                }
                RawInst::MemSetPersist { place, value } => {
                    let value = lower_operand(&value, line, &local_ids)?;
                    let (place, _) = lower_place(&place, &locals, &local_ids)?;
                    Inst::MemSetPersist { place, value }
                }
                RawInst::TxBegin => Inst::TxBegin,
                RawInst::TxAdd { place } => {
                    let (place, _) = lower_place(&place, &locals, &local_ids)?;
                    Inst::TxAdd { place }
                }
                RawInst::TxCommit => Inst::TxCommit,
                RawInst::TxAbort => Inst::TxAbort,
                RawInst::EpochBegin => Inst::EpochBegin,
                RawInst::EpochEnd => Inst::EpochEnd,
                RawInst::StrandBegin => Inst::StrandBegin,
                RawInst::StrandEnd => Inst::StrandEnd,
                RawInst::Call { dst, callee, args, ty } => {
                    let args = args
                        .iter()
                        .map(|a| lower_operand(a, line, &local_ids))
                        .collect::<PResult<Vec<_>>>()?;
                    let dst = match dst {
                        None => None,
                        Some(name) => {
                            let dty = match &ty {
                                Some(t) => lower_ty(t, line)?,
                                None => match func_ret.get(&callee) {
                                    Some(Some(t)) => *t,
                                    Some(None) => {
                                        return Err(ParseError {
                                            line,
                                            msg: format!(
                                            "call to void function `{callee}` cannot have a result"
                                        ),
                                        })
                                    }
                                    // Out-of-module callee: default to i64
                                    // unless annotated.
                                    None => Ty::I64,
                                },
                            };
                            Some(define(&name, dty, line, &mut locals, &mut local_ids)?)
                        }
                    };
                    Inst::Call { dst, callee: symbols.intern(&callee), args }
                }
            };
            insts.push(Spanned { inst, loc });
        }

        let (rt, term_loc) = rb.term;
        let term = match rt {
            RawTerm::Ret { value } => {
                Inst2Term::ret(value, rb.term_line, &local_ids, &lower_operand)?
            }
            RawTerm::Br { cond, then_bb, else_bb } => {
                let cond = lower_operand(&cond, rb.term_line, &local_ids)?;
                let then_bb = *block_ids.get(&then_bb).ok_or_else(|| ParseError {
                    line: rb.term_line,
                    msg: format!("unknown block `{then_bb}`"),
                })?;
                let else_bb = *block_ids.get(&else_bb).ok_or_else(|| ParseError {
                    line: rb.term_line,
                    msg: format!("unknown block `{else_bb}`"),
                })?;
                Terminator::Br { cond, then_bb, else_bb }
            }
            RawTerm::Jmp { bb } => {
                let bb = *block_ids.get(&bb).ok_or_else(|| ParseError {
                    line: rb.term_line,
                    msg: format!("unknown block `{bb}`"),
                })?;
                Terminator::Jmp { bb }
            }
        };
        blocks.push((rb.label, insts, Spanned { inst: term, loc: term_loc }));
    }

    if rf.is_extern && !blocks.is_empty() {
        return Err(ParseError {
            line: rf.line,
            msg: format!("extern function `{}` must not have a body", rf.name),
        });
    }

    Ok(Function::assemble(rf.name, num_params, locals, ret_ty, blocks, rf.attrs))
}

/// Operand-lowering callback shared by terminator helpers.
type LowerOperandFn<'a> =
    &'a dyn Fn(&RawOperand, u32, &HashMap<String, LocalId>) -> PResult<Operand>;

/// Helper namespace for lowering `ret` (kept out of the closure soup above).
struct Inst2Term;

impl Inst2Term {
    fn ret(
        value: Option<RawOperand>,
        line: u32,
        local_ids: &HashMap<String, LocalId>,
        lower_operand: LowerOperandFn<'_>,
    ) -> PResult<Terminator> {
        let value = match value {
            None => None,
            Some(v) => Some(lower_operand(&v, line, local_ids)?),
        };
        Ok(Terminator::Ret { value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    const DEMO: &str = r#"
module demo
file "demo.c"

struct node { n: i64, items: [i64; 4], next: ptr node }

fn helper(%p: ptr node) -> i64 attrs(tx_context) {
entry:
  %x = load %p.n
  ret %x
}

fn main() {
entry:
  %a = palloc node
  store %a.n, 7
  store %a.items[2], 1
  flush %a.n
  fence
  %r = call helper(%a)
  br %r, done, other
other:
  persist %a
  jmp done
done:
  ret
}
"#;

    #[test]
    fn parses_demo() {
        let m = parse(DEMO).expect("demo should parse");
        assert_eq!(m.name, "demo");
        assert_eq!(m.file, "demo.c");
        assert_eq!(m.structs.len(), 1);
        assert_eq!(m.functions.len(), 2);
        let main = &m.functions[m.func_by_name("main").unwrap().index()];
        assert_eq!(main.blocks.len(), 3);
        assert!(matches!(main.block_insts(0)[0].inst, Inst::PAlloc { .. }));
    }

    #[test]
    fn loc_directive_overrides_lines() {
        let src = r#"
module m
fn f() {
entry:
  loc 201
  fence
  fence
  ret
}
"#;
        let m = parse(src).unwrap();
        let f = &m.functions[0];
        assert_eq!(f.block_insts(0)[0].loc.line, 201);
        assert_eq!(f.block_insts(0)[1].loc.line, 202, "loc auto-increments");
    }

    #[test]
    fn natural_lines_without_loc() {
        let src = "module m\nfn f() {\nentry:\n  fence\n  ret\n}\n";
        let m = parse(src).unwrap();
        assert_eq!(m.functions[0].block_insts(0)[0].loc.line, 4);
    }

    #[test]
    fn rejects_undefined_local() {
        let src = "module m\nfn f() {\nentry:\n  flush %nope\n  ret\n}\n";
        let err = parse(src).unwrap_err();
        assert!(err.msg.contains("undefined local"), "{err}");
    }

    #[test]
    fn rejects_unknown_field() {
        let src = r#"
module m
struct s { a: i64 }
fn f(%p: ptr s) {
entry:
  store %p.b, 1
  ret
}
"#;
        let err = parse(src).unwrap_err();
        assert!(err.msg.contains("no field"), "{err}");
    }

    #[test]
    fn rejects_missing_terminator() {
        let src = "module m\nfn f() {\nentry:\n  fence\n}\n";
        let err = parse(src).unwrap_err();
        assert!(err.msg.contains("terminator"), "{err}");
    }

    #[test]
    fn rejects_field_access_on_scalar() {
        let src = r#"
module m
struct s { a: i64 }
fn f(%x: i64) {
entry:
  flush %x.a
  ret
}
"#;
        let err = parse(src).unwrap_err();
        assert!(err.msg.contains("not a pointer"), "{err}");
    }

    #[test]
    fn extern_functions_have_no_body() {
        let src = "module m\nextern fn pm_flush(%p: i64) attrs(persist_wrapper)\n";
        let m = parse(src).unwrap();
        assert!(m.functions[0].blocks.is_empty());
        assert!(m.functions[0].has_attr(FuncAttr::PersistWrapper));
    }

    #[test]
    fn call_type_inferred_from_callee() {
        let src = r#"
module m
struct s { a: i64 }
fn mk() -> ptr s {
entry:
  %p = palloc s
  ret %p
}
fn f() {
entry:
  %q = call mk()
  store %q.a, 1
  ret
}
"#;
        let m = parse(src).unwrap();
        let f = &m.functions[m.func_by_name("f").unwrap().index()];
        let q = f.local_by_name("q").unwrap();
        assert!(f.local_ty(q).is_ptr());
    }

    #[test]
    fn call_to_extern_defaults_to_i64_or_annotation() {
        let src = r#"
module m
struct s { a: i64 }
fn f() {
entry:
  %x = call ext_counter()
  %p = call ext_alloc() : ptr s
  store %p.a, %x
  ret
}
"#;
        let m = parse(src).unwrap();
        let f = &m.functions[0];
        assert_eq!(f.local_ty(f.local_by_name("x").unwrap()), Ty::I64);
        assert!(f.local_ty(f.local_by_name("p").unwrap()).is_ptr());
    }

    #[test]
    fn negative_constants() {
        let src = "module m\nfn f() {\nentry:\n  %x = mov -5\n  ret %x\n}\n";
        let m = parse(src).unwrap();
        let f = &m.functions[0];
        assert!(matches!(f.block_insts(0)[0].inst, Inst::Mov { src: Operand::Const(-5), .. }));
    }

    #[test]
    fn duplicate_function_rejected() {
        let src = "module m\nfn f() {\nentry:\n  ret\n}\nfn f() {\nentry:\n  ret\n}\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_load_of_whole_array_field() {
        let src = r#"
module m
struct s { arr: [i64; 4] }
fn f(%p: ptr s) {
entry:
  %x = load %p.arr
  ret
}
"#;
        // Caught at verify time (the parser types it as the array).
        let m = parse(src);
        match m {
            Ok(m) => {
                assert!(crate::verify::verify_module(&m).is_err());
            }
            Err(_) => {} // also acceptable
        }
    }

    #[test]
    fn rejects_mov_null() {
        let src = "module m
fn f() {
entry:
  %x = mov null
  ret
}
";
        let err = parse(src).unwrap_err();
        assert!(err.msg.contains("mov null"), "{err}");
    }

    #[test]
    fn rejects_branch_to_unknown_block() {
        let src = "module m
fn f(%c: i64) {
entry:
  br %c, a, nowhere
a:
  ret
}
";
        let err = parse(src).unwrap_err();
        assert!(err.msg.contains("unknown block"), "{err}");
    }

    #[test]
    fn rejects_index_into_scalar_field() {
        let src = r#"
module m
struct s { a: i64 }
fn f(%p: ptr s) {
entry:
  store %p.a[2], 1
  ret
}
"#;
        let err = parse(src).unwrap_err();
        assert!(err.msg.contains("not an array"), "{err}");
    }

    #[test]
    fn rejects_result_from_void_callee() {
        let src = r#"
module m
fn g() {
entry:
  ret
}
fn f() {
entry:
  %x = call g()
  ret
}
"#;
        let err = parse(src).unwrap_err();
        assert!(err.msg.contains("void"), "{err}");
    }

    #[test]
    fn rejects_missing_module_header() {
        assert!(parse(
            "fn f() {
entry:
  ret
}
"
        )
        .is_err());
    }

    #[test]
    fn rejects_loc_without_number() {
        let src = "module m
fn f() {
entry:
  loc
  ret
}
";
        let err = parse(src).unwrap_err();
        assert!(err.msg.contains("line number"), "{err}");
    }

    #[test]
    fn rejects_unterminated_string() {
        let src = "module m\nfile \"oops\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_redefinition_with_different_type() {
        let src = r#"
module m
struct s { a: i64 }
fn f() {
entry:
  %x = mov 1
  %x = palloc s
  ret
}
"#;
        let err = parse(src).unwrap_err();
        assert!(err.msg.contains("redefined"), "{err}");
    }

    #[test]
    fn empty_function_body_rejected() {
        let src = "module m
fn f() {
}
";
        assert!(parse(src).is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let src = "module m // the module\nfn f() { // fn\nentry: // label\n  ret // done\n}\n";
        assert!(parse(src).is_ok());
    }
}
