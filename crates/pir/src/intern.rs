//! String interning for PIR.
//!
//! Call instructions reference their callee through a [`Symbol`] — a dense
//! `u32` handle into the owning module's [`SymbolTable`] — instead of an
//! owned `String`. Everything downstream (call-graph construction, DSA call
//! sites, the trace collector's callee resolution) compares and hashes
//! plain integers on the hot path; the string itself is materialized only
//! when rendering (printer, reports, diagnostics).
//!
//! The table serializes as its string vector alone; the reverse lookup map
//! is rebuilt on deserialization. Equality between tables compares the
//! string vectors, so a parse → print → parse round trip (which interns in
//! the same instruction order) reproduces identical handles.

use serde::{Deserialize, Deserializer, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A handle into a module's [`SymbolTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Symbol(pub u32);

impl Symbol {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A per-module intern table: `Symbol` ↔ `&str`.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SymbolTable {
    strings: Vec<String>,
    #[serde(skip)]
    map: HashMap<String, u32>,
}

impl SymbolTable {
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Intern `s`, returning its (stable) handle.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&id) = self.map.get(s) {
            return Symbol(id);
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), id);
        Symbol(id)
    }

    /// Resolve a handle to its string. Panics (in all builds) on a handle
    /// that does not belong to this table — a stale-ID bug must surface as
    /// a panic, never as a wrong name in a report.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Look up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).map(|&id| Symbol(id))
    }

    /// True if `sym` is a valid handle into this table.
    pub fn contains(&self, sym: Symbol) -> bool {
        sym.index() < self.strings.len()
    }

    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The interned strings in handle order.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    fn rebuild_map(&mut self) {
        self.map = self.strings.iter().enumerate().map(|(i, s)| (s.clone(), i as u32)).collect();
    }
}

impl PartialEq for SymbolTable {
    fn eq(&self, other: &Self) -> bool {
        self.strings == other.strings
    }
}

impl Eq for SymbolTable {}

impl<'de> Deserialize<'de> for SymbolTable {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Raw {
            strings: Vec<String>,
        }
        let raw = Raw::deserialize(deserializer)?;
        let mut table = SymbolTable { strings: raw.strings, map: HashMap::new() };
        table.rebuild_map();
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("alloc");
        let b = t.intern("free");
        assert_eq!(t.intern("alloc"), a);
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "alloc");
        assert_eq!(t.resolve(b), "free");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert_eq!(t.get("x"), None);
        let s = t.intern("x");
        assert_eq!(t.get("x"), Some(s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn serde_rebuilds_reverse_map() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let json = serde_json::to_string(&t).unwrap();
        let back: SymbolTable = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.get("b"), Some(Symbol(1)));
    }

    #[test]
    #[should_panic]
    fn stale_handle_panics() {
        let t = SymbolTable::new();
        let _ = t.resolve(Symbol(3));
    }
}
