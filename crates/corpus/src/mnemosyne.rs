//! Mini-Mnemosyne corpus (epoch persistency): the lightweight persistent
//! memory framework from Volos et al. (ASPLOS'11) — the persistent log
//! primitive and the two hash-table variants — with the seeded Table-8
//! bugs (all four existed for ~10 years).

pub const SOURCES: &[&str] = &[PHLOG_BASE, CHHASH, CHASH];

/// `phlog_base.c` — the physical log primitive.
///
/// Seeded: UnflushedWrite@132 (new): the tail update inside the append
/// epoch is never flushed.
pub const PHLOG_BASE: &str = r#"
module phlog_base
file "phlog_base.c"

struct phlog {
  head: i64,
  tail: i64,
}

// BUG (new, Table 8): append advances the tail at 132 but only the head
// is written back before the epoch closes.
fn m_phlog_append(%v: i64) {
entry:
  %log = palloc phlog
  epoch_begin
  store %log.head, %v
  loc 132
  store %log.tail, %v
  flush %log.head
  fence
  epoch_end
  ret
}

// Correct: truncation flushes everything it writes.
fn m_phlog_truncate() {
entry:
  %log = palloc phlog
  epoch_begin
  store %log.head, 0
  store %log.tail, 0
  flush %log.head
  flush %log.tail
  fence
  epoch_end
  ret
}
"#;

/// `chhash.c` — the chained hash table.
///
/// Seeded: RedundantPersistInTx@185 and @270 (new): "multiple writes to
/// the same object in a transaction" — the bucket is persisted after every
/// field update instead of once at commit.
pub const CHHASH: &str = r#"
module chhash
file "chhash.c"

struct ch_bucket {
  key: i64,
  val: i64,
}

// BUG (new, Table 8): insert persists the bucket twice inside one durable
// transaction.
fn chhash_insert(%key: i64, %val: i64) {
entry:
  %b = palloc ch_bucket
  tx_begin
  store %b.key, %key
  flush %b.key
  fence
  store %b.val, %val
  loc 185
  flush %b.val
  fence
  tx_commit
  ret
}

// BUG (new, Table 8): the update path does the same.
fn chhash_update(%key: i64, %val: i64) {
entry:
  %b = palloc ch_bucket
  tx_begin
  store %b.val, 0
  flush %b.val
  fence
  store %b.val, %val
  loc 270
  flush %b.val
  fence
  tx_commit
  ret
}

// Correct: lookup only reads.
fn chhash_lookup(%key: i64) -> i64 {
entry:
  %b = palloc ch_bucket
  %v = load %b.val
  ret %v
}

// Correct: remove clears both fields in one durable transaction.
fn chhash_remove(%b: ptr ch_bucket) {
entry:
  tx_begin
  tx_add %b
  store %b.key, 0
  store %b.val, 0
  tx_commit
  ret
}
"#;

/// `CHash.c` — the open-addressing hash table.
///
/// Seeded: RedundantWriteback@150 (new): the slot is flushed again after
/// it is already clean.
pub const CHASH: &str = r#"
module CHash
file "CHash.c"

struct c_slot {
  key: i64,
  state: i64,
}

// BUG (new, Table 8): the probe-and-claim path flushes the slot twice.
fn chash_claim_slot(%key: i64) {
entry:
  %s = palloc c_slot
  epoch_begin
  store %s.state, 1
  flush %s.state
  fence
  loc 150
  flush %s.state
  fence
  epoch_end
  ret
}

// Correct: probing only reads slots.
fn chash_probe(%s: ptr c_slot, %key: i64) -> i64 {
entry:
  %k = load %s.key
  %hit = eq %k, %key
  br %hit, found, miss
found:
  %st = load %s.state
  ret %st
miss:
  ret 0
}

// Correct: releasing a slot persists exactly once.
fn chash_release_slot() {
entry:
  %s = palloc c_slot
  epoch_begin
  store %s.state, 0
  flush %s.state
  fence
  epoch_end
  ret
}
"#;
