//! `corpus-dump OUTDIR` — write every corpus framework's PIR modules to
//! `OUTDIR/<framework>/<NN>.pir`, so shell pipelines (CI's
//! parallel-determinism job, ad-hoc `deepmc check` runs) can feed the
//! evaluation corpus to the CLI. Prints one `<framework> <model-flag>
//! <dir>` line per framework for scripting.

use deepmc_corpus::Framework;
use deepmc_models::PersistencyModel;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(outdir) = std::env::args().nth(1) else {
        eprintln!("usage: corpus-dump OUTDIR");
        return ExitCode::from(2);
    };
    for fw in Framework::ALL {
        let dir = Path::new(&outdir).join(fw.name().to_lowercase());
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("corpus-dump: cannot create `{}`: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for (i, src) in fw.sources().iter().enumerate() {
            let path = dir.join(format!("{i:02}.pir"));
            if let Err(e) = std::fs::write(&path, src) {
                eprintln!("corpus-dump: cannot write `{}`: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        let flag = match fw.model() {
            PersistencyModel::Strict => "-strict",
            PersistencyModel::Epoch => "-epoch",
            PersistencyModel::Strand => "-strand",
        };
        println!("{} {} {}", fw.name().to_lowercase(), flag, dir.display());
    }
    ExitCode::SUCCESS
}
