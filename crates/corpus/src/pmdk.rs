//! Mini-PMDK corpus (strict persistency): the `libpmemobj` example programs
//! and library modules the paper studies, re-implemented in PIR with the
//! seeded bugs of Tables 3 and 8.
//!
//! PMDK conventions modeled here:
//! * durable transactions (`TX_BEGIN`/`TX_ADD`/`TX_END`) — callbacks that
//!   run inside a caller's transaction carry `attrs(tx_context)`;
//! * the atomic API (`pmemobj_persist`, `pmemobj_memset_persist`) — a
//!   store followed by `persist`;
//! * strict persistency outside transactions: one store per persist
//!   barrier, in program order.

/// PIR sources for every PMDK module.
pub const SOURCES: &[&str] =
    &[BTREE_MAP, RBTREE_MAP, PMINVADERS, OBJ_PMEMLOG, HASHMAP_ATOMIC, OBJ_PMEMLOG_SIMPLE];

/// `btree_map.c` — the B-tree example program.
///
/// Seeded: UnflushedWrite@201 (study, Fig. 2), RedundantPersistInTx@290
/// (new), UnmodifiedWriteback@365 and @465 (new).
pub const BTREE_MAP: &str = r#"
module btree_map
file "btree_map.c"

struct tree_map_node {
  n: i64,
  items: [i64; 8],
  next: ptr tree_map_node,
}

struct tree_map {
  root: ptr tree_map_node,
  height: i64,
}

// Correct: read-only lookup walks the chain.
fn btree_map_get(%map: ptr tree_map, %key: i64) -> i64 attrs(tx_context) {
entry:
  %node = load %map.root
  br %node, walk, miss
walk:
  %i = rem %key, 8
  %v = load %node.items[%i]
  ret %v
miss:
  ret 0
}

// Correct: transactional insert logs the node before modifying it.
fn btree_map_insert(%map: ptr tree_map, %key: i64, %val: i64) attrs(tx_context) {
entry:
  %node = load %map.root
  br %node, doins, out
doins:
  tx_add %node
  %i = rem %key, 8
  store %node.items[%i], %val
  %n0 = load %node.n
  %n1 = add %n0, 1
  store %node.n, %n1
  jmp out
out:
  ret
}

// BUG (study, Table 3): the split helper modifies an item without logging
// it into the transaction; the update is not durable at commit (Fig. 2).
fn btree_map_create_split_node(%node: ptr tree_map_node, %m: i64) -> i64 attrs(tx_context) {
entry:
  %c = load %node.n
  %c1 = sub %c, 1
  loc 201
  store %node.items[%c1], 0
  ret 0
}

// BUG (new, Table 8): the map header is persisted twice within one
// transaction.
fn btree_map_insert_empty(%map: ptr tree_map, %item: i64) attrs(tx_context) {
entry:
  tx_add %map
  store %map.height, 1
  flush %map.height
  fence
  %r = load %map.root
  loc 290
  flush %map.height
  fence
  ret
}

// BUG (new, Table 8): persisting the whole node though only `n` changed.
fn btree_map_clear_node() {
entry:
  %n = palloc tree_map_node
  store %n.n, 0
  loc 365
  persist %n
  ret
}

// BUG (new, Table 8): same pattern on the rotate-right path.
fn btree_map_rotate_right() {
entry:
  %n = palloc tree_map_node
  store %n.next, null
  loc 465
  persist %n
  ret
}

// Correct: walk the leaf chain accumulating key counts (read-only).
fn btree_map_count(%start: ptr tree_map_node) -> i64 {
entry:
  %node = mov %start
  %sum = mov 0
  jmp head
head:
  br %node, body, done
body:
  %v = load %node.n
  %sum = add %sum, %v
  %node = load %node.next
  jmp head
done:
  ret %sum
}

// Correct: bulk initialization persists each update in program order.
fn btree_map_bulk_init(%n: i64) {
entry:
  %m = palloc tree_map
  jmp head
head:
  %c = gt %n, 0
  br %c, body, done
body:
  store %m.height, %n
  persist %m.height
  %n = sub %n, 1
  jmp head
done:
  ret
}

// Correct: root replacement under a durable transaction.
fn btree_map_set_root(%map: ptr tree_map, %newroot: ptr tree_map_node) attrs(tx_context) {
entry:
  tx_add %map
  store %map.root, %newroot
  %h = load %map.height
  %h2 = add %h, 1
  store %map.height, %h2
  ret
}
"#;

/// `rbtree_map.c` — the red-black-tree example program.
///
/// Seeded: RedundantPersistInTx@197 and @231 (study),
/// UnmodifiedWriteback@259 (new), SemanticMismatch@379 (study),
/// UnflushedWrite@410 (false positive: the no-flush path is dead).
pub const RBTREE_MAP: &str = r#"
module rbtree_map
file "rbtree_map.c"

struct rb_node {
  color: i64,
  key: i64,
  value: i64,
  parent: ptr rb_node,
}

struct rb_tree {
  root: ptr rb_node,
  count: i64,
}

// Correct: transactional recolor.
fn rbtree_map_recolor(%node: ptr rb_node, %color: i64) attrs(tx_context) {
entry:
  tx_add %node
  store %node.color, %color
  ret
}

// BUG (study, Table 3): the insert path "logs unmodified fields" — the
// node is persisted again although nothing changed since the last persist.
fn rbtree_map_insert_bst(%node: ptr rb_node, %key: i64) attrs(tx_context) {
entry:
  tx_add %node
  store %node.key, %key
  flush %node.key
  fence
  loc 197
  flush %node.key
  fence
  ret
}

// BUG (study, Table 3): the same over-logging on the rotate path.
fn rbtree_map_rotate(%node: ptr rb_node) attrs(tx_context) {
entry:
  tx_add %node
  store %node.color, 1
  flush %node.color
  fence
  %p = load %node.parent
  loc 231
  flush %node.color
  fence
  ret
}

// BUG (new, Table 8): whole-node persist with one modified field.
fn rbtree_map_set_value() {
entry:
  %n = palloc rb_node
  store %n.value, 99
  loc 259
  persist %n
  ret
}

// BUG (study, Table 3): the node is modified, but made durable only after
// the tree header's barrier — its durability lands in a later persist unit
// than the program treats as atomic.
fn rbtree_map_remove_fixup() {
entry:
  %t = palloc rb_tree
  %n = palloc rb_node
  store %n.color, 0
  store %t.count, 7
  persist %t.count
  loc 379
  persist %n.color
  ret
}

// FALSE POSITIVE (§5.4): the write at 410 is flushed whenever
// `replicas_enabled` holds, which is always true in deployment; the
// static checker cannot know the no-flush path is dead and reports an
// unflushed write.
fn rbtree_map_update_sentinel(%replicas_enabled: i64) {
entry:
  %n = palloc rb_node
  loc 410
  store %n.key, 5
  br %replicas_enabled, doflush, out
doflush:
  persist %n.key
  jmp out
out:
  ret
}

// Correct: binary-search descent, read-only.
fn rbtree_map_find(%root: ptr rb_node, %key: i64) -> i64 {
entry:
  %node = mov %root
  jmp head
head:
  br %node, body, miss
body:
  %k = load %node.key
  %eqk = eq %k, %key
  br %eqk, hit, descend
descend:
  %node = load %node.parent
  jmp head
hit:
  %v = load %node.value
  ret %v
miss:
  ret 0
}

// Correct: transactional delete logs the node before blanking it.
fn rbtree_map_clear(%node: ptr rb_node) attrs(tx_context) {
entry:
  tx_add %node
  store %node.key, 0
  store %node.value, 0
  store %node.color, 0
  store %node.parent, null
  ret
}
"#;

/// `pminvaders.c` — the game example program.
///
/// Seeded: RedundantWriteback@143 and @246 (study), EmptyDurableTx@249,
/// @256, @266, @301, @351 (study + new), MissingPersistBarrier@380 (new).
pub const PMINVADERS: &str = r#"
module pminvaders
file "pminvaders.c"

struct alien {
  timer: i64,
  y: i64,
  x: i64,
}

struct game_state {
  score: i64,
  level: i64,
  high_score: i64,
}

struct bullet {
  x: i64,
  y: i64,
}

// Correct: score update, one store per barrier.
fn pminvaders_add_score(%g: ptr game_state, %points: i64) attrs(tx_context) {
entry:
  tx_add %g
  %s = load %g.score
  %s2 = add %s, %points
  store %g.score, %s2
  ret
}

// BUG (study, Table 3): the timer cache line is written back again right
// after it was persisted ("flush unmodified fields of an object").
fn pminvaders_timer_tick() {
entry:
  %a = palloc alien
  store %a.timer, 16
  persist %a.timer
  loc 143
  flush %a.timer
  fence
  ret
}

// BUG (study, Table 3): same redundant write-back when drawing the alien.
fn pminvaders_draw_alien() {
entry:
  %a = palloc alien
  store %a.x, 3
  persist %a.x
  loc 246
  flush %a.x
  fence
  ret
}

// BUG (new, Table 8): the bullet transaction commits without a single
// persistent write when no collision happened.
fn pminvaders_process_bullet(%hit: i64) {
entry:
  %b = palloc bullet
  tx_begin
  tx_add %b
  br %hit, upd, skip
upd:
  store %b.y, 0
  jmp done
skip:
  jmp done
done:
  loc 249
  tx_commit
  ret
}

// BUG (study, Table 3, Fig. 7): process_aliens runs a durable transaction
// that persists nothing when the timer condition fails.
fn pminvaders_process_aliens(%timer_zero: i64) {
entry:
  %a = palloc alien
  tx_begin
  tx_add %a
  br %timer_zero, upd, skip
upd:
  store %a.timer, 9
  store %a.y, 1
  jmp done
skip:
  jmp done
done:
  loc 256
  tx_commit
  ret
}

// BUG (new, Table 8): the player-move transaction is empty when the move
// is rejected.
fn pminvaders_move_player(%legal: i64) {
entry:
  %g = palloc game_state
  tx_begin
  tx_add %g
  br %legal, upd, skip
upd:
  store %g.level, 2
  jmp done
skip:
  jmp done
done:
  loc 266
  tx_commit
  ret
}

// BUG (study, Table 3): high-score maintenance commits an empty durable
// transaction when the score did not improve.
fn pminvaders_update_highscore(%improved: i64) {
entry:
  %g = palloc game_state
  tx_begin
  tx_add %g
  br %improved, upd, skip
upd:
  store %g.high_score, 12345
  jmp done
skip:
  jmp done
done:
  loc 301
  tx_commit
  ret
}

// BUG (new, Table 8): the level-end transaction is empty on the
// game-over path.
fn pminvaders_next_level(%game_over: i64) {
entry:
  %g = palloc game_state
  tx_begin
  tx_add %g
  br %game_over, skip, upd
upd:
  %l = load %g.level
  %l2 = add %l, 1
  store %g.level, %l2
  jmp done
skip:
  jmp done
done:
  loc 351
  tx_commit
  ret
}

// BUG (new, Table 8): the new-game path flushes the score but starts the
// next transaction without a persist barrier, so operations of the two
// transactions may interleave (Fig. 3 shape).
fn pminvaders_new_game() {
entry:
  %g = palloc game_state
  store %g.score, 0
  loc 380
  flush %g.score
  tx_begin
  tx_add %g
  store %g.level, 1
  tx_commit
  ret
}

// Correct: the draw loop only reads game state.
fn pminvaders_draw_frame(%g: ptr game_state) -> i64 {
entry:
  %s = load %g.score
  %l = load %g.level
  %h = load %g.high_score
  %t = add %s, %l
  %t2 = add %t, %h
  ret %t2
}

// Correct: saving the score is one logged transactional update.
fn pminvaders_save_score(%g: ptr game_state, %score: i64) attrs(tx_context) {
entry:
  tx_add %g
  store %g.score, %score
  %h = load %g.high_score
  %better = gt %score, %h
  br %better, bump, out
bump:
  store %g.high_score, %score
  jmp out
out:
  ret
}
"#;

/// `obj_pmemlog.c` — the append-only log built on `libpmemobj`.
///
/// Seeded: MissingPersistBarrier@60 (new), SemanticMismatch@91 (study),
/// RedundantWriteback@130 (new), RedundantWriteback@160 (false positive:
/// an opaque external call may modify the header).
pub const OBJ_PMEMLOG: &str = r#"
module obj_pmemlog
file "obj_pmemlog.c"

struct log_hdr {
  write_off: i64,
  data_len: i64,
}

struct log_buf {
  data: [i64; 16],
}

extern fn pmemlog_sync_replicas(%h: ptr log_hdr) attrs(persist_wrapper)

// BUG (new, Table 8): header init flushes the offset but writes the next
// field with no barrier in between.
fn pmemlog_open(%cap: i64) {
entry:
  %h = palloc log_hdr
  store %h.write_off, 0
  loc 60
  flush %h.write_off
  tx_begin
  tx_add %h
  store %h.data_len, %cap
  tx_commit
  ret
}

// BUG (study, Table 3): the appended payload is persisted in one unit and
// the header offset only after its barrier — "multiple epochs writing to
// different fields of an object".
fn pmemlog_append(%len: i64) {
entry:
  %h = palloc log_hdr
  %b = palloc log_buf
  store %h.write_off, %len
  memset_persist %b, 0
  loc 91
  persist %h.write_off
  ret
}

// BUG (new, Table 8): rewind re-flushes the already clean header.
fn pmemlog_rewind() {
entry:
  %h = palloc log_hdr
  store %h.write_off, 0
  persist %h.write_off
  loc 130
  flush %h.write_off
  fence
  ret
}

// FALSE POSITIVE (§5.4): pmemlog_sync_replicas mutates the header through
// a pointer the static analysis cannot see, so the second flush is NOT
// redundant; the conservative checker flags it anyway.
fn pmemlog_tell() {
entry:
  %h = palloc log_hdr
  store %h.data_len, 8
  persist %h.data_len
  call pmemlog_sync_replicas(%h)
  loc 160
  flush %h.data_len
  fence
  ret
}

// Correct: nbyte only reads the header.
fn pmemlog_nbyte(%h: ptr log_hdr) -> i64 {
entry:
  %len = load %h.data_len
  ret %len
}

// Correct: safe append persists payload then offset, each in order
// (fixed slot: the checker cannot prove coverage of a statically unknown
// index, which is exactly the rbtree_map.c:410 false-positive trap).
fn pmemlog_append_safe(%v: i64) {
entry:
  %h = palloc log_hdr
  %b = palloc log_buf
  store %b.data[0], %v
  persist %b.data[0]
  store %h.write_off, 1
  persist %h.write_off
  ret
}
"#;

/// `hashmap_atomic.c` — the atomic-API hashmap example (Fig. 1).
///
/// Seeded: SemanticMismatch@120, @264 (study) and @285, @496 (new): a
/// field written in one persist unit becomes durable only in a later one.
pub const HASHMAP_ATOMIC: &str = r#"
module hashmap_atomic
file "hashmap_atomic.c"

struct hashmap {
  nbuckets: i64,
  seed: i64,
  count: i64,
}

struct buckets {
  arr: [i64; 16],
}

// BUG (study, Table 3, Fig. 1): nbuckets is written before the buckets
// are created and persisted, but is itself persisted only after their
// barrier; a crash in between loses the bucket count.
fn hm_atomic_create() {
entry:
  %h = palloc hashmap
  %b = palloc buckets
  store %h.nbuckets, 16
  memset_persist %b, 0
  loc 120
  persist %h.nbuckets
  ret
}

// BUG (study, Table 3): insert bumps the element count, persists the
// bucket slot, and only then the count.
fn hm_atomic_insert(%key: i64) {
entry:
  %h = palloc hashmap
  %b = palloc buckets
  %i = rem %key, 16
  store %b.arr[%i], %key
  store %h.count, 1
  persist %b
  loc 264
  persist %h.count
  ret
}

// BUG (new, Table 8): remove has the mirror-image ordering problem.
fn hm_atomic_remove(%key: i64) {
entry:
  %h = palloc hashmap
  %b = palloc buckets
  %i = rem %key, 16
  store %b.arr[%i], 0
  store %h.count, 0
  persist %b
  loc 285
  persist %h.count
  ret
}

// BUG (new, Table 8): rebuild reseeds the map, but the seed becomes
// durable only after the new bucket array's barrier.
fn hm_atomic_rebuild(%new_seed: i64) {
entry:
  %h = palloc hashmap
  %b = palloc buckets
  store %h.seed, %new_seed
  memset_persist %b, 0
  loc 496
  persist %h.seed
  ret
}

// Correct: lookup only reads.
fn hm_atomic_get(%key: i64) -> i64 {
entry:
  %h = palloc hashmap
  %b = palloc buckets
  %i = rem %key, 16
  %v = load %b.arr[%i]
  ret %v
}

// Correct: count scan over the bucket array.
fn hm_atomic_count(%b: ptr buckets) -> i64 {
entry:
  %i = mov 0
  %sum = mov 0
  jmp head
head:
  %c = lt %i, 16
  br %c, body, done
body:
  %v = load %b.arr[%i]
  %sum = add %sum, %v
  %i = add %i, 1
  jmp head
done:
  ret %sum
}
"#;

/// `obj_pmemlog_simple.c` — the simplified log variant.
///
/// Seeded: SemanticMismatch@207 (false positive: the intervening barrier
/// only executes on a debug path that is dead in production).
pub const OBJ_PMEMLOG_SIMPLE: &str = r#"
module obj_pmemlog_simple
file "obj_pmemlog_simple.c"

struct slog {
  off: i64,
  len: i64,
}

// Debug hook: drains the persistence queue when verbose checking is on.
fn slog_debug_drain(%dbg: i64) {
entry:
  br %dbg, drain, out
drain:
  fence
  jmp out
out:
  ret
}

// FALSE POSITIVE (§5.4): with %dbg = 0 (always, in production) the write
// and its flush share one persist unit; the checker explores the
// drain path and reports a cross-unit persist.
fn slog_appendv(%dbg: i64) {
entry:
  %l = palloc slog
  store %l.off, 8
  call slog_debug_drain(%dbg)
  loc 207
  persist %l.off
  ret
}

// Correct: tell only reads.
fn slog_tell(%l: ptr slog) -> i64 {
entry:
  %o = load %l.off
  %n = load %l.len
  %t = add %o, %n
  ret %t
}
"#;
