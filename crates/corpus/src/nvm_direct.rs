//! Mini NVM-Direct corpus (strict persistency): Oracle's NVM library
//! modules studied in the paper — region management, heap, and locks —
//! with the seeded bugs of Tables 3 and 8 (including the Fig. 3 missing
//! barrier and the Fig. 9 `nvm_lock` missing flush).

pub const SOURCES: &[&str] = &[NVM_REGION, NVM_HEAP, NVM_LOCKS];

/// `nvm_region.c` — region create/attach.
///
/// Seeded: MissingPersistBarrier@614 and @933 (study, Fig. 3): a region
/// flush with no barrier before the next transaction begins.
pub const NVM_REGION: &str = r#"
module nvm_region
file "nvm_region.c"

struct nvm_region_hdr {
  vsize: i64,
  psize: i64,
  attach_cnt: i64,
}

struct nvm_app_data {
  state: i64,
}

// BUG (study, Table 3, Fig. 3): after the region header is initialized
// and flushed, a transaction begins with no persist barrier in between,
// so the operations of the two units may interleave.
fn nvm_create_region(%vspace: i64) -> i64 {
entry:
  %region = palloc nvm_region_hdr
  store %region.vsize, %vspace
  loc 614
  flush %region.vsize
  tx_begin
  tx_add %region
  store %region.attach_cnt, 1
  tx_commit
  ret 0
}

// BUG (study, Table 3): the same pattern on the attach path.
fn nvm_attach_region(%desc: i64) -> i64 {
entry:
  %region = palloc nvm_region_hdr
  %ad = palloc nvm_app_data
  store %ad.state, 1
  loc 933
  flush %ad.state
  tx_begin
  tx_add %region
  %c = load %region.attach_cnt
  %c2 = add %c, 1
  store %region.attach_cnt, %c2
  tx_commit
  ret 0
}

// Correct: detach persists its single update per the strict model.
fn nvm_detach_region() {
entry:
  %region = palloc nvm_region_hdr
  store %region.attach_cnt, 0
  persist %region.attach_cnt
  ret
}

// Correct: region queries only read.
fn nvm_query_region(%region: ptr nvm_region_hdr) -> i64 {
entry:
  %v = load %region.vsize
  %ps = load %region.psize
  %t = add %v, %ps
  ret %t
}
"#;

/// `nvm_heap.c` — the persistent heap.
///
/// Seeded: RedundantWriteback@1965 (study, Fig. 6: `nvm_free_blk` already
/// flushed the block, the callback flushes it again),
/// UnmodifiedWriteback@1675 (new: whole-object flush for one field).
pub const NVM_HEAP: &str = r#"
module nvm_heap
file "nvm_heap.c"

struct nvm_blk {
  free_flag: i64,
  size: i64,
  owner: i64,
}

// The callee flushes the block it frees (correct in isolation).
fn nvm_free_blk(%blk: ptr nvm_blk) {
entry:
  store %blk.free_flag, 1
  flush %blk.free_flag
  fence
  ret
}

// BUG (study, Table 3, Fig. 6): the free callback flushes the same block
// again after nvm_free_blk already wrote it back.
fn nvm_free_callback() {
entry:
  %blk = palloc nvm_blk
  call nvm_free_blk(%blk)
  loc 1965
  flush %blk.free_flag
  fence
  ret
}

// BUG (new, Table 8): allocation persists the whole block header though
// only the owner field changed.
fn nvm_alloc_blk(%owner: i64) {
entry:
  %blk = palloc nvm_blk
  store %blk.owner, %owner
  loc 1675
  persist %blk
  ret
}

// Correct: resize persists each modified field in order.
fn nvm_resize_blk(%sz: i64) {
entry:
  %blk = palloc nvm_blk
  store %blk.size, %sz
  persist %blk.size
  store %blk.owner, 0
  persist %blk.owner
  ret
}

// Correct: block stat walks fields read-only.
fn nvm_blk_stat(%blk: ptr nvm_blk) -> i64 {
entry:
  %f = load %blk.free_flag
  br %f, free_blk, used
free_blk:
  ret 0
used:
  %sz = load %blk.size
  ret %sz
}
"#;

/// `nvm_locks.c` — persistent mutexes (Fig. 9 of the paper).
///
/// Seeded: UnflushedWrite@932 (new: `new_level` is never flushed),
/// EmptyDurableTx@905 (new), UnmodifiedWriteback@1411 (new), plus two
/// false-positive traps: UnmodifiedWriteback@1500 (aliasing through an
/// opaque lookup) and EmptyDurableTx@950 (zero-iteration loop path).
pub const NVM_LOCKS: &str = r#"
module nvm_locks
file "nvm_locks.c"

struct nvm_amutex {
  owners: i64,
  level: i64,
}

struct nvm_lkrec {
  state: i64,
  new_level: i64,
}

struct lock_table {
  nheld: i64,
  gen: i64,
}

extern fn nvm_lookup_mutex() -> ptr nvm_amutex attrs(persist_wrapper)

// BUG (new, Table 8, Fig. 9): nvm_lock persists lk->state and
// mutex->owners, but the update to lk->new_level at 932 is never flushed.
fn nvm_lock(%omutex: ptr nvm_amutex, %excl: i64) -> i64 {
entry:
  %lk = palloc nvm_lkrec
  store %lk.state, 1
  persist %lk.state
  %o = load %omutex.owners
  %o1 = sub %o, 1
  store %omutex.owners, %o1
  persist %omutex.owners
  %lv = load %omutex.level
  %nl = load %lk.new_level
  %c = gt %lv, %nl
  br %c, setlv, hold
setlv:
  loc 932
  store %lk.new_level, %lv
  jmp hold
hold:
  store %lk.state, 2
  persist %lk.state
  ret 0
}

// BUG (new, Table 8): unlocking with no locks held commits a durable
// transaction that wrote nothing.
fn nvm_unlock_all(%held: i64) {
entry:
  %tbl = palloc lock_table
  tx_begin
  tx_add %tbl
  br %held, dec, out
dec:
  store %tbl.nheld, 0
  jmp out
out:
  loc 905
  tx_commit
  ret
}

// FALSE POSITIVE (§5.4): every recovery pass processes at least one lock
// record, so the zero-iteration commit path the checker explores never
// happens in practice.
fn nvm_recover_locks(%more: i64) {
entry:
  %tbl = palloc lock_table
  tx_begin
  tx_add %tbl
  jmp head
head:
  %c = gt %more, 0
  br %c, body, done
body:
  store %tbl.gen, %more
  %more = sub %more, 1
  jmp head
done:
  loc 950
  tx_commit
  ret
}

// BUG (new, Table 8): the whole lock record is persisted though only the
// state field changed.
fn nvm_unlock(%lk: ptr nvm_lkrec) {
entry:
  store %lk.state, 0
  loc 1411
  persist %lk
  ret
}

// FALSE POSITIVE (§5.4): nvm_lookup_mutex returns an alias of %mx; the
// store through the alias modifies the level field, so the flush at 1500
// is justified — but the analysis cannot resolve the alias.
fn nvm_mutex_publish() {
entry:
  %mx = palloc nvm_amutex
  store %mx.owners, 0
  persist %mx.owners
  %alias = call nvm_lookup_mutex() : ptr nvm_amutex
  store %alias.level, 3
  loc 1500
  flush %mx.level
  fence
  ret
}

// Correct: querying the holder count only reads.
fn nvm_mutex_owners(%mx: ptr nvm_amutex) -> i64 {
entry:
  %o = load %mx.owners
  ret %o
}
"#;
