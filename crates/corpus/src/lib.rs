//! # deepmc-corpus — the evaluation corpus
//!
//! PIR re-implementations of the NVM frameworks and example programs the
//! paper studies — PMDK, PMFS, NVM-Direct (strict persistency) and
//! Mnemosyne (epoch persistency) — each seeded with the deep persistency
//! bugs of Tables 3 (studied) and 8 (new), at the paper's file:line
//! coordinates, plus the aliasing / correlated-branch / zero-iteration
//! patterns that make DeepMC's conservative analysis over-report
//! (7 of 50 warnings are false positives, §5.4).
//!
//! [`ground_truth`] is the corpus specification: one entry per expected
//! warning, labeled with its bug class, study/new origin, library/example
//! location, and validity. The Table-1/2/3/8 reproduction harness runs
//! DeepMC over [`all_frameworks`] and scores the report against this
//! table.

pub mod ground_truth;
pub mod mnemosyne;
pub mod nvm_direct;
pub mod pmdk;
pub mod pmfs;

pub use ground_truth::{
    ds_labels_for, BugOrigin, BugSite, CodeLocation, DsLabel, Validity, DS_GROUND_TRUTH,
    GROUND_TRUTH,
};

use deepmc_analysis::Program;
use deepmc_models::PersistencyModel;
use deepmc_pir::Module;

/// One framework under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Framework {
    Pmdk,
    NvmDirect,
    Pmfs,
    Mnemosyne,
}

impl Framework {
    /// Table-1 column order.
    pub const ALL: [Framework; 4] =
        [Framework::Pmdk, Framework::NvmDirect, Framework::Pmfs, Framework::Mnemosyne];

    pub fn name(self) -> &'static str {
        match self {
            Framework::Pmdk => "PMDK",
            Framework::NvmDirect => "NVM-Direct",
            Framework::Pmfs => "PMFS",
            Framework::Mnemosyne => "Mnemosyne",
        }
    }

    /// The persistency model the framework declares (paper Table 1
    /// caption: PMDK and NVM-Direct use strict, PMFS and Mnemosyne epoch).
    pub fn model(self) -> PersistencyModel {
        match self {
            Framework::Pmdk | Framework::NvmDirect => PersistencyModel::Strict,
            Framework::Pmfs | Framework::Mnemosyne => PersistencyModel::Epoch,
        }
    }

    /// The framework's PIR source texts (one per module), e.g. for
    /// writing to disk and feeding the `deepmc` CLI.
    pub fn sources(self) -> &'static [&'static str] {
        match self {
            Framework::Pmdk => pmdk::SOURCES,
            Framework::NvmDirect => nvm_direct::SOURCES,
            Framework::Pmfs => pmfs::SOURCES,
            Framework::Mnemosyne => mnemosyne::SOURCES,
        }
    }

    /// Parse the framework's modules.
    pub fn modules(self) -> Vec<Module> {
        self.sources()
            .iter()
            .map(|src| {
                let m = deepmc_pir::parse(src).unwrap_or_else(|e| {
                    panic!("corpus module for {} failed to parse: {e}", self.name())
                });
                deepmc_pir::verify::verify_module(&m).unwrap_or_else(|e| {
                    panic!("corpus module for {} failed to verify: {e}", self.name())
                });
                m
            })
            .collect()
    }

    /// The framework as one analyzable program.
    pub fn program(self) -> Program {
        Program::new(self.modules()).expect("corpus modules must link")
    }

    /// Run DeepMC's static checker over the framework with its declared
    /// model.
    pub fn check(self) -> deepmc::Report {
        let config = deepmc::DeepMcConfig::new(self.model());
        deepmc::StaticChecker::new(config).check_program(&self.program())
    }
}

/// All four frameworks in Table-1 order.
pub fn all_frameworks() -> [Framework; 4] {
    Framework::ALL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_frameworks_parse_and_verify() {
        for fw in Framework::ALL {
            let program = fw.program();
            assert!(program.inst_count() > 0, "{} is empty", fw.name());
        }
    }

    #[test]
    fn models_match_table1_caption() {
        assert_eq!(Framework::Pmdk.model(), PersistencyModel::Strict);
        assert_eq!(Framework::NvmDirect.model(), PersistencyModel::Strict);
        assert_eq!(Framework::Pmfs.model(), PersistencyModel::Epoch);
        assert_eq!(Framework::Mnemosyne.model(), PersistencyModel::Epoch);
    }
}
