//! Mini-PMFS corpus (epoch persistency): Intel's persistent memory file
//! system modules the paper studies — journal, symlink, execute-in-place
//! I/O, file ops, and superblock recovery — with the seeded bugs of
//! Tables 3 and 8 (including the Fig. 4 nested-transaction missing
//! barrier and the superblock over-write-back of §5.1).
//!
//! PMFS conventions modeled here: journal transactions are epochs
//! (`epoch_begin`/`epoch_end` bracket `pmfs_new_transaction` /
//! `pmfs_commit_transaction`), every epoch ends with a persist barrier,
//! and buffers are flushed with `pmfs_flush_buffer` (`flush`).

pub const SOURCES: &[&str] = &[JOURNAL, SYMLINK, XIPS, FILES, SUPER];

/// `journal.c` — the undo journal.
///
/// Seeded: MultipleWritesAtOnce@598 (study), MultipleWritesAtOnce@610
/// (false positive: the second write is on a dead configuration path),
/// RedundantWriteback@632 (study: redundant flush when committing).
pub const JOURNAL: &str = r#"
module journal
file "journal.c"

struct journal_head {
  head: i64,
  tail: i64,
  gen: i64,
}

struct journal_entry {
  ino: i64,
  data: i64,
}

// Correct: one epoch per logged entry, barrier at the end.
fn pmfs_log_entry(%ino: i64, %data: i64) {
entry:
  %e = palloc journal_entry
  epoch_begin
  store %e.ino, %ino
  store %e.data, %data
  flush %e.ino
  flush %e.data
  fence
  epoch_end
  ret
}

// BUG (study, Table 3): outside any journal epoch, two distinct updates
// are made durable by one barrier — the declared model calls for
// per-unit durability.
fn pmfs_journal_hard_reset() {
entry:
  %j = palloc journal_head
  %e = palloc journal_entry
  store %j.gen, 1
  flush %j.gen
  store %e.ino, 0
  flush %e.ino
  loc 598
  fence
  ret
}

// FALSE POSITIVE (§5.4): the second write only happens when relaxed
// journaling is configured, which production builds never enable; the
// checker explores that path anyway.
fn pmfs_journal_soft_reset(%relaxed_mode: i64) {
entry:
  %j = palloc journal_head
  store %j.head, 0
  flush %j.head
  br %relaxed_mode, also_tail, join
also_tail:
  store %j.tail, 0
  flush %j.tail
  jmp join
join:
  loc 610
  fence
  ret
}

// Correct: journal replay only reads entries.
fn pmfs_journal_scan(%e: ptr journal_entry, %n: i64) -> i64 {
entry:
  %sum = mov 0
  jmp head
head:
  %c = gt %n, 0
  br %c, body, done
body:
  %d = load %e.data
  %sum = add %sum, %d
  %n = sub %n, 1
  jmp head
done:
  ret %sum
}

// BUG (study, Table 3): commit flushes the journal head again although it
// was already written back ("flush redundant data when committing").
fn pmfs_commit_transaction() {
entry:
  %j = palloc journal_head
  epoch_begin
  store %j.tail, 8
  flush %j.tail
  fence
  loc 632
  flush %j.tail
  fence
  epoch_end
  ret
}
"#;

/// `symlink.c` — symlink block writes (Fig. 4 of the paper).
///
/// Seeded: MissingBarrierNestedTx@38 (study): the inner transaction's
/// writes must persist before control returns to the outer transaction,
/// but no barrier ends the inner unit.
pub const SYMLINK: &str = r#"
module symlink
file "symlink.c"

struct sym_block {
  len: i64,
  ino: i64,
}

// BUG (study, Table 3, Fig. 4): pmfs_block_symlink's writes form an inner
// transaction inside pmfs_symlink's outer one; the inner unit ends at 38
// with the buffer flushed but no persist barrier.
fn pmfs_symlink(%len: i64) {
entry:
  %b = palloc sym_block
  epoch_begin
  epoch_begin
  store %b.len, %len
  flush %b.len
  loc 38
  epoch_end
  store %b.ino, 7
  flush %b.ino
  fence
  epoch_end
  ret
}

// Correct: the readlink path only loads.
fn pmfs_readlink() -> i64 {
entry:
  %b = palloc sym_block
  %l = load %b.len
  ret %l
}

// Correct: unlink updates both fields inside one epoch with a tail
// barrier.
fn pmfs_unlink_symlink(%b: ptr sym_block) {
entry:
  epoch_begin
  store %b.len, 0
  store %b.ino, 0
  flush %b.len
  flush %b.ino
  fence
  epoch_end
  ret
}
"#;

/// `xips.c` — execute-in-place I/O.
///
/// Seeded: RedundantWriteback@207 and @262 (study: "flush the same buffer
/// multiple times").
pub const XIPS: &str = r#"
module xips
file "xips.c"

struct xip_buffer {
  blocknr: i64,
  data: i64,
}

// BUG (study, Table 3): the write path flushes the buffer twice.
fn pmfs_xip_file_write(%v: i64) {
entry:
  %buf = palloc xip_buffer
  epoch_begin
  store %buf.data, %v
  flush %buf.data
  fence
  loc 207
  flush %buf.data
  fence
  epoch_end
  ret
}

// Correct: the read path has no persistent operations at all.
fn pmfs_xip_file_read(%buf: ptr xip_buffer) -> i64 {
entry:
  %d = load %buf.data
  %b = load %buf.blocknr
  %t = add %d, %b
  ret %t
}

// BUG (study, Table 3): so does the sparse-write path.
fn pmfs_xip_file_write_sparse(%v: i64) {
entry:
  %buf = palloc xip_buffer
  epoch_begin
  store %buf.blocknr, %v
  flush %buf.blocknr
  fence
  loc 262
  flush %buf.blocknr
  fence
  epoch_end
  ret
}
"#;

/// `files.c` — file operations.
///
/// Seeded: UnmodifiedWriteback@232 (new: the inode is written back on the
/// truncate path although nothing in it changed).
pub const FILES: &str = r#"
module files
file "files.c"

struct pmfs_inode {
  size: i64,
  mtime: i64,
}

// BUG (new, Table 8): truncate-to-same-size flushes the untouched inode.
fn pmfs_truncate_noop() {
entry:
  %ino = palloc pmfs_inode
  epoch_begin
  loc 232
  flush %ino.size
  fence
  epoch_end
  ret
}

// Correct: a real truncate writes then flushes.
fn pmfs_truncate(%newsize: i64) {
entry:
  %ino = palloc pmfs_inode
  epoch_begin
  store %ino.size, %newsize
  flush %ino.size
  fence
  epoch_end
  ret
}

// Correct: getattr reads only.
fn pmfs_getattr(%ino: ptr pmfs_inode) -> i64 {
entry:
  %sz = load %ino.size
  %mt = load %ino.mtime
  %t = add %sz, %mt
  ret %t
}

// Correct: two updates to different inodes use consecutive epochs with
// barriers — the legal epoch-persistency shape.
fn pmfs_touch_two(%a: i64, %b: i64) {
entry:
  %i1 = palloc pmfs_inode
  %i2 = palloc pmfs_inode
  epoch_begin
  store %i1.mtime, %a
  flush %i1.mtime
  fence
  epoch_end
  epoch_begin
  store %i2.mtime, %b
  flush %i2.mtime
  fence
  epoch_end
  ret
}
"#;

/// `super.c` — superblock recovery (§5.1: "PMFS writes back the
/// superblock even though the recovery is successful").
///
/// Seeded: UnmodifiedWriteback@542, @543, @579 (new), and @584 (false
/// positive: the redundant copy is modified through an alias).
pub const SUPER: &str = r#"
module super
file "super.c"

struct pmfs_super {
  magic: i64,
  size: i64,
  mount_time: i64,
  reserved: i64,
}

extern fn pmfs_get_redundant_super() -> ptr pmfs_super attrs(persist_wrapper)

// BUG (new, Table 8): after a successful recovery only `magic` was
// rewritten, yet the size and mount-time lines are written back too.
fn pmfs_recover_super() {
entry:
  %sb = palloc pmfs_super
  epoch_begin
  store %sb.magic, 4242
  flush %sb.magic
  loc 542
  flush %sb.size
  loc 543
  flush %sb.mount_time
  fence
  epoch_end
  ret
}

// BUG (new, Table 8): the unmount path persists the whole superblock
// though only the mount time changed.
fn pmfs_put_super() {
entry:
  %sb = palloc pmfs_super
  epoch_begin
  store %sb.mount_time, 77
  loc 579
  persist %sb
  epoch_end
  ret
}

// FALSE POSITIVE (§5.4): the redundant superblock returned by
// pmfs_get_redundant_super aliases %sb; its write justifies the flush at
// 584, but the alias is invisible to the static analysis.
// Correct: statfs reads only.
fn pmfs_statfs(%sb: ptr pmfs_super) -> i64 {
entry:
  %m = load %sb.magic
  %sz = load %sb.size
  %t = add %m, %sz
  ret %t
}

fn pmfs_sync_super() {
entry:
  %sb = palloc pmfs_super
  epoch_begin
  store %sb.magic, 4242
  flush %sb.magic
  fence
  %alias = call pmfs_get_redundant_super() : ptr pmfs_super
  store %alias.reserved, 1
  loc 584
  flush %sb.reserved
  fence
  epoch_end
  ret
}
"#;
