//! Ground truth for the evaluation corpus: the 50 expected DeepMC warnings
//! (43 validated bugs + 7 false positives), reproducing the accounting of
//! the paper's Table 1, Table 2 (study counts), Table 3 (studied bug
//! list), and Table 8 (new bugs).
//!
//! Where the paper's own tables disagree with each other (its Table 1
//! totals cannot be exactly tiled by the Table 3 + Table 8 site lists),
//! Table 1 wins and the delta is documented in EXPERIMENTS.md.

use crate::Framework;
use deepmc_models::BugClass;
use serde::{Deserialize, Serialize};

/// Was the site part of the §3 characterization study, or newly found by
/// DeepMC (§5.1)?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BugOrigin {
    Study,
    New,
}

/// Is the site inside the framework/library or in an example program
/// (Table 3/8 "LIB"/"EP" column)?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodeLocation {
    Lib,
    Example,
}

impl CodeLocation {
    pub fn label(self) -> &'static str {
        match self {
            CodeLocation::Lib => "LIB",
            CodeLocation::Example => "EP",
        }
    }
}

/// Whether manual validation confirms the warning (paper: 43 of 50).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Validity {
    RealBug,
    /// A trap pattern DeepMC's conservative analysis flags although the
    /// code is actually fine (§5.4: unresolved aliasing, correlated
    /// branches, zero-iteration loop paths).
    FalsePositive,
}

/// One expected warning site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BugSite {
    pub framework: Framework,
    pub file: &'static str,
    pub line: u32,
    pub class: BugClass,
    pub origin: BugOrigin,
    pub location: CodeLocation,
    pub validity: Validity,
    /// Description as listed in the paper's tables.
    pub description: &'static str,
    /// Table 8 "Years" column (how long the new bug existed); 0.0 for
    /// study bugs and FP traps.
    pub years: f32,
}

impl Serialize for Framework {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self.name())
    }
}

impl<'de> Deserialize<'de> for Framework {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let name = String::deserialize(d)?;
        Framework::ALL
            .into_iter()
            .find(|f| f.name() == name)
            .ok_or_else(|| serde::de::Error::custom(format!("unknown framework `{name}`")))
    }
}

use BugClass::*;
use BugOrigin::{New, Study};
use CodeLocation::{Example as EP, Lib as LIB};
use Framework::*;
use Validity::{FalsePositive as FP, RealBug as RB};

macro_rules! site {
    ($fw:expr, $file:literal : $line:literal, $class:expr, $origin:expr, $loc:expr, $val:expr,
     $desc:literal, $years:literal) => {
        BugSite {
            framework: $fw,
            file: $file,
            line: $line,
            class: $class,
            origin: $origin,
            location: $loc,
            validity: $val,
            description: $desc,
            years: $years,
        }
    };
}

/// The 50 expected warnings. PMDK 26 (23 real), NVM-Direct 9 (7 real),
/// PMFS 11 (9 real), Mnemosyne 4 (4 real).
pub const GROUND_TRUTH: &[BugSite] = &[
    // ===================== PMDK (strict) — 26/23 =========================
    // btree_map.c (example program)
    site!(Pmdk, "btree_map.c":201, UnflushedWrite, Study, EP, RB,
          "Modify tree node without making it durable", 0.0),
    site!(Pmdk, "btree_map.c":365, UnmodifiedWriteback, New, EP, RB,
          "Flushing unmodified fields of tree node", 4.4),
    site!(Pmdk, "btree_map.c":465, UnmodifiedWriteback, New, EP, RB,
          "Flushing unmodified fields of tree node", 4.4),
    site!(Pmdk, "btree_map.c":290, RedundantPersistInTx, New, EP, RB,
          "Persist the same object multiple times in a transaction", 4.4),
    // rbtree_map.c (example program)
    site!(Pmdk, "rbtree_map.c":197, RedundantPersistInTx, Study, EP, RB,
          "Log unmodified fields of a tree node", 0.0),
    site!(Pmdk, "rbtree_map.c":231, RedundantPersistInTx, Study, EP, RB,
          "Log unmodified fields of a tree node", 0.0),
    site!(Pmdk, "rbtree_map.c":259, UnmodifiedWriteback, New, EP, RB,
          "Flushing unmodified fields of tree node", 4.4),
    site!(Pmdk, "rbtree_map.c":379, SemanticMismatch, Study, EP, RB,
          "Modified object not made durable", 0.0),
    site!(Pmdk, "rbtree_map.c":410, UnflushedWrite, New, EP, FP,
          "Write to statically-unknown array element; coverage unprovable", 0.0),
    // pminvaders.c (example program)
    site!(Pmdk, "pminvaders.c":256, EmptyDurableTx, Study, EP, RB,
          "Durable transaction without persistent writes", 0.0),
    site!(Pmdk, "pminvaders.c":301, EmptyDurableTx, Study, EP, RB,
          "Durable transaction without persistent writes", 0.0),
    site!(Pmdk, "pminvaders.c":249, EmptyDurableTx, New, EP, RB,
          "Durable transaction without persistent writes", 4.4),
    site!(Pmdk, "pminvaders.c":266, EmptyDurableTx, New, EP, RB,
          "Durable transaction without persistent writes", 4.4),
    site!(Pmdk, "pminvaders.c":351, EmptyDurableTx, New, EP, RB,
          "Durable transaction without persistent writes", 4.4),
    site!(Pmdk, "pminvaders.c":246, RedundantWriteback, Study, EP, RB,
          "Flush unmodified fields of an object", 0.0),
    site!(Pmdk, "pminvaders.c":143, RedundantWriteback, Study, EP, RB,
          "Flush unmodified fields of an object", 0.0),
    site!(Pmdk, "pminvaders.c":380, MissingPersistBarrier, New, EP, RB,
          "Missing persist barrier between transactions", 4.4),
    // obj_pmemlog.c (library)
    site!(Pmdk, "obj_pmemlog.c":91, SemanticMismatch, Study, LIB, RB,
          "Multiple epochs writing to different fields of an object", 0.0),
    site!(Pmdk, "obj_pmemlog.c":60, MissingPersistBarrier, New, LIB, RB,
          "Missing persist barrier after cacheline flush", 4.4),
    site!(Pmdk, "obj_pmemlog.c":130, RedundantWriteback, New, LIB, RB,
          "Redundant flush of persistent object", 4.4),
    site!(Pmdk, "obj_pmemlog.c":160, RedundantWriteback, New, LIB, FP,
          "Re-flush after opaque external call that may modify the object", 0.0),
    // hashmap_atomic.c (example program)
    site!(Pmdk, "hashmap_atomic.c":120, SemanticMismatch, Study, EP, RB,
          "Multiple epochs write to different fields of an object", 0.0),
    site!(Pmdk, "hashmap_atomic.c":264, SemanticMismatch, Study, EP, RB,
          "Multiple epochs write to different fields of an object", 0.0),
    site!(Pmdk, "hashmap_atomic.c":285, SemanticMismatch, New, EP, RB,
          "Multiple epochs write to different fields of an object", 4.4),
    site!(Pmdk, "hashmap_atomic.c":496, SemanticMismatch, New, EP, RB,
          "Multiple epochs write to different fields of an object", 4.4),
    // obj_pmemlog_simple.c (library)
    site!(Pmdk, "obj_pmemlog_simple.c":207, SemanticMismatch, New, LIB, FP,
          "Delayed persist over a conditionally-executed barrier", 0.0),
    // =================== NVM-Direct (strict) — 9/7 =======================
    site!(NvmDirect, "nvm_region.c":614, MissingPersistBarrier, Study, LIB, RB,
          "Missing persist barrier between epoch transactions", 0.0),
    site!(NvmDirect, "nvm_region.c":933, MissingPersistBarrier, Study, LIB, RB,
          "Missing persist barrier between epoch transactions", 0.0),
    site!(NvmDirect, "nvm_heap.c":1965, RedundantWriteback, Study, LIB, RB,
          "Redundant flushes of persistent object", 0.0),
    site!(NvmDirect, "nvm_heap.c":1675, UnmodifiedWriteback, New, LIB, RB,
          "Flushing unmodified fields of an object", 5.3),
    site!(NvmDirect, "nvm_locks.c":932, UnflushedWrite, New, LIB, RB,
          "Missing flush", 5.3),
    site!(NvmDirect, "nvm_locks.c":905, EmptyDurableTx, New, LIB, RB,
          "Durable transaction without persistent writes", 5.3),
    site!(NvmDirect, "nvm_locks.c":1411, UnmodifiedWriteback, New, LIB, RB,
          "Flushing unmodified fields of an object", 5.3),
    site!(NvmDirect, "nvm_locks.c":1500, UnmodifiedWriteback, New, LIB, FP,
          "Object modified through an alias the analysis cannot resolve", 0.0),
    site!(NvmDirect, "nvm_locks.c":950, EmptyDurableTx, New, LIB, FP,
          "Transaction writes inside a loop; the zero-iteration path never occurs", 0.0),
    // ====================== PMFS (epoch) — 11/9 ==========================
    site!(Pmfs, "journal.c":632, RedundantWriteback, Study, LIB, RB,
          "Flush redundant data when committing", 0.0),
    site!(Pmfs, "journal.c":598, MultipleWritesAtOnce, Study, LIB, RB,
          "Multiple writes made durable at once", 0.0),
    site!(Pmfs, "journal.c":610, MultipleWritesAtOnce, New, LIB, FP,
          "Second write sits on a configuration path that is dead in practice", 0.0),
    site!(Pmfs, "symlink.c":38, MissingBarrierNestedTx, Study, LIB, RB,
          "Missing persistent barrier in nested transaction", 0.0),
    site!(Pmfs, "xips.c":207, RedundantWriteback, Study, LIB, RB,
          "Flush the same buffer multiple times", 0.0),
    site!(Pmfs, "xips.c":262, RedundantWriteback, Study, LIB, RB,
          "Flush the same buffer multiple times", 0.0),
    site!(Pmfs, "files.c":232, UnmodifiedWriteback, New, LIB, RB,
          "Flush unmodified object", 3.2),
    site!(Pmfs, "super.c":542, UnmodifiedWriteback, New, LIB, RB,
          "Flushing unmodified fields of an object", 3.2),
    site!(Pmfs, "super.c":543, UnmodifiedWriteback, New, LIB, RB,
          "Flushing unmodified fields of an object", 3.2),
    site!(Pmfs, "super.c":579, UnmodifiedWriteback, New, LIB, RB,
          "Flushing unmodified fields of an object", 3.2),
    site!(Pmfs, "super.c":584, UnmodifiedWriteback, New, LIB, FP,
          "Superblock re-flushed through an alias the analysis cannot resolve", 0.0),
    // ==================== Mnemosyne (epoch) — 4/4 ========================
    site!(Mnemosyne, "phlog_base.c":132, UnflushedWrite, New, LIB, RB,
          "Unflushed write", 10.0),
    site!(Mnemosyne, "chhash.c":185, RedundantPersistInTx, New, LIB, RB,
          "Multiple writes to the same object in a transaction", 10.0),
    site!(Mnemosyne, "chhash.c":270, RedundantPersistInTx, New, LIB, RB,
          "Multiple writes to the same object in a transaction", 10.0),
    site!(Mnemosyne, "CHash.c":150, RedundantWriteback, New, LIB, RB,
          "Multiple flushes to a persistent object", 10.0),
];

/// One cell of the concurrent persistent data-structure corpus detection
/// matrix (Table 9h): a structure × variant pair and which of the three
/// validators must flag it.
///
/// Labels are plain strings so this table has no dependency on
/// `nvm-apps`; the `ds_matrix` integration test cross-checks it against
/// the live registry (`nvm_apps::ds`) in both directions, so a structure
/// or seeded variant added there without a row here fails CI — and vice
/// versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DsLabel {
    /// Registry name (`nvm_apps::ds::DsKind::name()`).
    pub structure: &'static str,
    /// `"clean"` or the seeded bug's registry name.
    pub variant: &'static str,
    /// DeepMC bug-class label of the detecting checker's report
    /// (`"CrashRecovery"` for recovery-logic bugs only the sweep sees);
    /// `"-"` for clean variants.
    pub class: &'static str,
    /// The Epoch-model static checker over the variant's PIR protocol
    /// model flags it.
    pub static_: bool,
    /// The Strand-model dynamic (happens-before) checker flags it.
    pub dynamic: bool,
    /// The pruned crash sweep with the linearization-prefix oracle over
    /// the Rust implementation flags it.
    pub crash: bool,
}

macro_rules! ds {
    ($s:literal / $v:literal, $class:literal, $st:literal, $dy:literal, $cr:literal) => {
        DsLabel {
            structure: $s,
            variant: $v,
            class: $class,
            static_: $st,
            dynamic: $dy,
            crash: $cr,
        }
    };
}

/// The 17 cells of the DS-corpus detection matrix: 5 clean baselines and
/// 12 seeded bug variants, every seeded variant caught by at least one
/// checker and every clean baseline by none.
pub const DS_GROUND_TRUTH: &[DsLabel] = &[
    // Treiber stack
    ds!("treiber" / "clean", "-", false, false, false),
    ds!("treiber" / "unflushed-link", "UnflushedWrite", true, false, true),
    ds!("treiber" / "strand-race", "InterStrandDependency", false, true, false),
    // Michael-Scott queue
    ds!("msqueue" / "clean", "-", false, false, false),
    ds!("msqueue" / "skip-checkpoint-fence", "MissingPersistBarrier", true, false, true),
    ds!("msqueue" / "double-apply-recovery", "CrashRecovery", false, false, true),
    ds!("msqueue" / "strand-race", "InterStrandDependency", false, true, false),
    // Harris list
    ds!("harris" / "clean", "-", false, false, false),
    ds!("harris" / "unflushed-link", "UnflushedWrite", true, false, true),
    ds!("harris" / "strand-race", "InterStrandDependency", false, true, false),
    // Flat-combining queue
    ds!("comb" / "clean", "-", false, false, false),
    ds!("comb" / "skip-checkpoint-fence", "MissingPersistBarrier", true, false, true),
    ds!("comb" / "strand-race", "InterStrandDependency", false, true, false),
    // Clevel hash
    ds!("clevel" / "clean", "-", false, false, false),
    ds!("clevel" / "unflushed-link", "UnflushedWrite", true, false, true),
    ds!("clevel" / "double-apply-recovery", "CrashRecovery", false, false, true),
    ds!("clevel" / "strand-race", "InterStrandDependency", false, true, false),
];

/// DS-matrix cells for one structure.
pub fn ds_labels_for<'a>(structure: &'a str) -> impl Iterator<Item = &'static DsLabel> + 'a {
    DS_GROUND_TRUTH.iter().filter(move |l| l.structure == structure)
}

/// Sites for one framework.
pub fn sites_for(fw: Framework) -> impl Iterator<Item = &'static BugSite> {
    GROUND_TRUTH.iter().filter(move |s| s.framework == fw)
}

/// Validated (real) sites only.
pub fn real_bugs() -> impl Iterator<Item = &'static BugSite> {
    GROUND_TRUTH.iter().filter(|s| s.validity == Validity::RealBug)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmc_models::Severity;
    use std::collections::HashMap;

    #[test]
    fn totals_match_table1() {
        assert_eq!(GROUND_TRUTH.len(), 50, "50 warnings in total");
        assert_eq!(real_bugs().count(), 43, "43 validated bugs");
        let per_fw = |fw| {
            let warnings = sites_for(fw).count();
            let real = sites_for(fw).filter(|s| s.validity == Validity::RealBug).count();
            (real, warnings)
        };
        assert_eq!(per_fw(Framework::Pmdk), (23, 26));
        assert_eq!(per_fw(Framework::NvmDirect), (7, 9));
        assert_eq!(per_fw(Framework::Pmfs), (9, 11));
        assert_eq!(per_fw(Framework::Mnemosyne), (4, 4));
    }

    #[test]
    fn study_and_new_counts_match_paper() {
        let study = GROUND_TRUTH
            .iter()
            .filter(|s| s.origin == BugOrigin::Study && s.validity == Validity::RealBug)
            .count();
        let new = GROUND_TRUTH
            .iter()
            .filter(|s| s.origin == BugOrigin::New && s.validity == Validity::RealBug)
            .count();
        assert_eq!(study, 19, "all 19 study bugs re-found (§5.3)");
        assert_eq!(new, 24, "24 new bugs (§5.1)");
    }

    #[test]
    fn table2_study_split() {
        // Table 2: PMDK 5 violations + 6 performance, PMFS 2 + 3,
        // NVM-Direct 2 + 1.
        let split = |fw| {
            let v = sites_for(fw)
                .filter(|s| {
                    s.origin == BugOrigin::Study && s.class.severity() == Severity::Violation
                })
                .count();
            let p = sites_for(fw)
                .filter(|s| {
                    s.origin == BugOrigin::Study && s.class.severity() == Severity::Performance
                })
                .count();
            (v, p)
        };
        assert_eq!(split(Framework::Pmdk), (5, 6));
        assert_eq!(split(Framework::Pmfs), (2, 3));
        assert_eq!(split(Framework::NvmDirect), (2, 1));
        assert_eq!(split(Framework::Mnemosyne), (0, 0));
    }

    #[test]
    fn fp_rate_is_14_percent() {
        let fps = GROUND_TRUTH.iter().filter(|s| s.validity == Validity::FalsePositive).count();
        assert_eq!(fps, 7);
        assert!((fps as f64 / GROUND_TRUTH.len() as f64 - 0.14).abs() < 0.001);
    }

    #[test]
    fn new_bugs_have_ages_and_study_bugs_do_not() {
        for s in GROUND_TRUTH {
            match (s.origin, s.validity) {
                (BugOrigin::New, Validity::RealBug) => {
                    assert!(s.years > 0.0, "{}:{} needs an age", s.file, s.line)
                }
                _ => assert_eq!(s.years, 0.0, "{}:{}", s.file, s.line),
            }
        }
        // Average age of the 24 new bugs ≈ 5.4 years (paper §5.1).
        let new: Vec<f32> = GROUND_TRUTH
            .iter()
            .filter(|s| s.origin == BugOrigin::New && s.validity == Validity::RealBug)
            .map(|s| s.years)
            .collect();
        let avg = new.iter().sum::<f32>() / new.len() as f32;
        assert!((avg - 5.4).abs() < 0.3, "average new-bug age {avg} ≉ 5.4y");
    }

    #[test]
    fn ds_matrix_counts_are_pinned() {
        assert_eq!(DS_GROUND_TRUTH.len(), 17, "5 clean + 12 seeded cells");
        let structures: Vec<&str> = ["treiber", "msqueue", "harris", "comb", "clevel"].to_vec();
        for s in &structures {
            let cells: Vec<_> = ds_labels_for(s).collect();
            assert!(cells.len() >= 3, "{s}: clean + at least two seeded variants");
            assert_eq!(cells.iter().filter(|l| l.variant == "clean").count(), 1, "{s}");
        }
        let seeded = DS_GROUND_TRUTH.iter().filter(|l| l.variant != "clean").count();
        assert_eq!(seeded, 12, "12 seeded bug variants across the corpus");
    }

    #[test]
    fn ds_seeded_variants_are_detected_and_clean_ones_are_not() {
        for l in DS_GROUND_TRUTH {
            let caught = l.static_ || l.dynamic || l.crash;
            if l.variant == "clean" {
                assert!(!caught, "{}/{}: clean cell must be all-clear", l.structure, l.variant);
                assert_eq!(l.class, "-", "{}/{}", l.structure, l.variant);
            } else {
                assert!(caught, "{}/{}: no checker catches it", l.structure, l.variant);
                assert_ne!(l.class, "-", "{}/{}", l.structure, l.variant);
            }
        }
    }

    #[test]
    fn ds_cells_are_unique_per_structure_variant() {
        let mut seen = HashMap::new();
        for l in DS_GROUND_TRUTH {
            let key = (l.structure, l.variant);
            assert!(seen.insert(key, ()).is_none(), "duplicate DS cell {key:?}");
        }
    }

    #[test]
    fn sites_are_unique_per_class_file_line() {
        let mut seen = HashMap::new();
        for s in GROUND_TRUTH {
            let key = (s.class, s.file, s.line);
            assert!(seen.insert(key, ()).is_none(), "duplicate site {key:?}");
        }
    }

    #[test]
    fn table1_per_class_matrix() {
        // The full matrix of Table 1: (class, framework) → validated/warnings.
        let cell = |class, fw| {
            let w = sites_for(fw).filter(|s| s.class == class).count();
            let r = sites_for(fw)
                .filter(|s| s.class == class && s.validity == Validity::RealBug)
                .count();
            (r, w)
        };
        use BugClass::*;
        use Framework::*;
        assert_eq!(cell(MultipleWritesAtOnce, Pmfs), (1, 2));
        assert_eq!(cell(UnflushedWrite, Pmdk), (1, 2));
        assert_eq!(cell(UnflushedWrite, NvmDirect), (1, 1));
        assert_eq!(cell(UnflushedWrite, Mnemosyne), (1, 1));
        assert_eq!(cell(MissingPersistBarrier, Pmdk), (2, 2));
        assert_eq!(cell(MissingPersistBarrier, NvmDirect), (2, 2));
        assert_eq!(cell(MissingBarrierNestedTx, Pmfs), (1, 1));
        assert_eq!(cell(SemanticMismatch, Pmdk), (6, 7));
        assert_eq!(cell(RedundantWriteback, Pmdk), (3, 4));
        assert_eq!(cell(RedundantWriteback, NvmDirect), (1, 1));
        assert_eq!(cell(RedundantWriteback, Pmfs), (3, 3));
        assert_eq!(cell(RedundantWriteback, Mnemosyne), (1, 1));
        assert_eq!(cell(UnmodifiedWriteback, Pmdk), (3, 3));
        assert_eq!(cell(UnmodifiedWriteback, NvmDirect), (2, 3));
        assert_eq!(cell(UnmodifiedWriteback, Pmfs), (4, 5));
        assert_eq!(cell(RedundantPersistInTx, Pmdk), (3, 3));
        assert_eq!(cell(RedundantPersistInTx, Mnemosyne), (2, 2));
        assert_eq!(cell(EmptyDurableTx, Pmdk), (5, 5));
        assert_eq!(cell(EmptyDurableTx, NvmDirect), (1, 2));
    }
}
