//! Observability-layer integration tests over the corpus.
//!
//! Three contracts are enforced here:
//!
//! 1. **Schema stability** — the `--metrics-out` snapshot for a fixed
//!    program is golden-filed (timings redacted). Any shape change must
//!    bump `METRICS_SCHEMA_VERSION` *and* regenerate the golden with
//!    `UPDATE_OBS_GOLDEN=1 cargo test -p deepmc-corpus --test
//!    observability`.
//! 2. **Structural determinism** — spans nest correctly (stack
//!    discipline with timestamp containment per worker), and the merged
//!    per-worker buffers produce identical counters and span multisets
//!    for `--jobs 1` vs `--jobs 4`.
//! 3. **Non-perturbation** — instrumented runs produce byte-identical
//!    reports and cache directories to uninstrumented runs, and the
//!    per-phase breakdown at `--jobs 1` sums to within 10% of the wall
//!    clock (the Table-9c acceptance bar).

use deepmc::{AnalysisCache, DeepMcConfig, StaticChecker};
use deepmc_analysis::Program;
use deepmc_corpus::Framework;
use deepmc_models::PersistencyModel;
use deepmc_obs::chrome::validate_chrome_trace;
use deepmc_obs::{Event, ObsData, Recorder};
use std::collections::BTreeMap;
use std::path::Path;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/obs_metrics.json");
const FIXTURE: &str = include_str!("fixtures/obs_golden.pir");

fn fixture_program() -> Program {
    let m = deepmc_pir::parse(FIXTURE).expect("fixture parses");
    deepmc_pir::verify::verify_module(&m).expect("fixture verifies");
    Program::single(m)
}

/// Run one instrumented check and return the merged data.
fn record_check(
    program: &Program,
    model: PersistencyModel,
    cache: Option<&AnalysisCache>,
    jobs: usize,
) -> (ObsData, String) {
    let checker = StaticChecker::new(DeepMcConfig::new(model));
    let rec = Recorder::new();
    let report = {
        let _attach = rec.attach(0);
        let _total = deepmc_obs::span("total");
        checker.check_program_with_jobs(program, cache, jobs).0
    };
    (rec.finish(), report.to_string())
}

#[test]
fn metrics_snapshot_matches_golden() {
    let program = fixture_program();
    let (data, _) = record_check(&program, PersistencyModel::Strict, None, 1);
    let mut snapshot = data.metrics_snapshot("deepmc check");
    snapshot.redact_timings();
    let got = snapshot.to_json();
    if std::env::var("UPDATE_OBS_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden file exists — generate with UPDATE_OBS_GOLDEN=1 \
         cargo test -p deepmc-corpus --test observability",
    );
    assert_eq!(
        got, want,
        "metrics snapshot shape or deterministic content changed; if intentional, \
         bump METRICS_SCHEMA_VERSION and regenerate with UPDATE_OBS_GOLDEN=1"
    );
    // A shape change without a version bump must not slip through a
    // regenerated golden: pin the version the golden was made with.
    let parsed: deepmc_obs::MetricsSnapshot =
        serde_json::from_str(want.trim_end()).expect("golden parses");
    assert_eq!(parsed.schema_version, deepmc_obs::METRICS_SCHEMA_VERSION);
}

/// Check stack discipline per worker: an event at depth `d` must have
/// `d` enclosing open spans, and a span must lie within its parent's
/// `[start, start+dur]` window.
fn assert_nesting(events: &[Event]) {
    let mut by_worker: BTreeMap<u32, Vec<&Event>> = BTreeMap::new();
    for e in events {
        by_worker.entry(e.worker).or_default().push(e);
    }
    for (worker, evs) in by_worker {
        // (start_us, end_us) of currently open spans, one per depth.
        let mut stack: Vec<(u64, u64)> = Vec::new();
        for e in evs {
            assert!(
                (e.depth as usize) <= stack.len(),
                "worker {worker}: event `{}` at depth {} with only {} open span(s)",
                e.name,
                e.depth,
                stack.len()
            );
            stack.truncate(e.depth as usize);
            if let Some(&(pstart, pend)) = stack.last() {
                let end = e.start_us + e.dur_us.unwrap_or(0);
                assert!(
                    pstart <= e.start_us && end <= pend,
                    "worker {worker}: `{}` [{}..{end}] escapes its parent [{pstart}..{pend}]",
                    e.name,
                    e.start_us
                );
            }
            if let Some(dur) = e.dur_us {
                stack.push((e.start_us, e.start_us + dur));
            }
        }
    }
}

/// Multiset of span names, and the merged counters that are
/// schedule-independent (memo and steal counters legitimately vary with
/// the schedule and are excluded).
fn structural_view(data: &ObsData) -> (BTreeMap<&'static str, usize>, BTreeMap<String, u64>) {
    let mut spans: BTreeMap<&'static str, usize> = BTreeMap::new();
    for e in &data.events {
        if e.is_span() {
            *spans.entry(e.name).or_insert(0) += 1;
        }
    }
    let deterministic = ["check.roots", "check.traces", "check.warnings_raw", "pool.items"];
    let counters = deterministic.iter().map(|&k| (k.to_string(), data.counter(k))).collect();
    (spans, counters)
}

#[test]
fn spans_nest_and_merge_deterministically_across_jobs() {
    let program = Framework::Pmdk.program();
    let (seq, rep_seq) = record_check(&program, Framework::Pmdk.model(), None, 1);
    let (par, rep_par) = record_check(&program, Framework::Pmdk.model(), None, 4);

    assert_nesting(&seq.events);
    assert_nesting(&par.events);

    // Merged buffers are grouped by ascending worker id.
    let workers: Vec<u32> = par.events.iter().map(|e| e.worker).collect();
    let mut sorted = workers.clone();
    sorted.sort_unstable();
    assert_eq!(workers, sorted, "merge must group events by worker id");

    // Structure is schedule-independent even though timings are not.
    assert_eq!(structural_view(&seq), structural_view(&par));
    assert_eq!(rep_seq, rep_par, "jobs must not change the report");

    // Per-root spans carry the executing worker: sequential runs record
    // everything on the driver, parallel runs only on workers 1..=4.
    assert!(seq.spans_of("traces").all(|e| e.worker == 0));
    assert!(par.spans_of("traces").all(|e| e.worker >= 1 && e.worker <= 4));
    // And a second parallel run merges to the same structure.
    let (par2, _) = record_check(&program, Framework::Pmdk.model(), None, 4);
    assert_eq!(structural_view(&par), structural_view(&par2));
}

#[test]
fn instrumentation_does_not_perturb_reports_or_cache() {
    let base = std::env::temp_dir().join(format!("deepmc-obs-perturb-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    for fw in Framework::ALL {
        let program = fw.program();
        let checker = StaticChecker::new(DeepMcConfig::new(fw.model()));
        let dir_plain = base.join(format!("{}-plain", fw.name()));
        let dir_inst = base.join(format!("{}-inst", fw.name()));
        let cache_plain = AnalysisCache::open(&dir_plain);
        let cache_inst = AnalysisCache::open(&dir_inst);

        let plain = checker.check_program_with_jobs(&program, Some(&cache_plain), 4).0;
        let rec = Recorder::new();
        let inst = {
            let _attach = rec.attach(0);
            let _total = deepmc_obs::span("total");
            checker.check_program_with_jobs(&program, Some(&cache_inst), 4).0
        };
        let data = rec.finish();

        assert_eq!(
            plain.to_string(),
            inst.to_string(),
            "{}: instrumented report must be byte-identical",
            fw.name()
        );
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&inst).unwrap(),
            "{}: instrumented JSON report must be byte-identical",
            fw.name()
        );
        assert_eq!(
            dir_snapshot(&dir_plain),
            dir_snapshot(&dir_inst),
            "{}: instrumented cache dir must be byte-identical",
            fw.name()
        );
        assert!(data.counter("check.roots") > 0, "{}: instrumentation recorded", fw.name());
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Sorted (file name, contents) snapshot of a cache directory.
fn dir_snapshot(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("cache dir exists")
        .map(|e| {
            let e = e.expect("dir entry");
            (e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).expect("read"))
        })
        .collect();
    out.sort();
    out
}

#[test]
fn profile_phase_sum_covers_wall_time_at_jobs_1() {
    // The Table-9c acceptance bar: across the four corpus frameworks at
    // --jobs 1, the top-level phases must sum to within 10% of the wall
    // clock — no large unattributed gaps in the pipeline.
    // Program construction happens outside the recorder: the CLI covers
    // its parse with a dedicated span; here only checker time is walled.
    let programs: Vec<(PersistencyModel, Program)> =
        Framework::ALL.iter().map(|fw| (fw.model(), fw.program())).collect();
    let rec = Recorder::new();
    {
        let _attach = rec.attach(0);
        let _total = deepmc_obs::span("total");
        for (model, program) in &programs {
            let checker = StaticChecker::new(DeepMcConfig::new(*model));
            std::hint::black_box(checker.check_program_with_jobs(program, None, 1));
        }
    }
    let data = rec.finish();
    let wall = data.wall_us();
    let covered: u64 = data
        .events
        .iter()
        .filter(|e| e.is_span() && e.depth == 1 && e.worker == 0)
        .map(|e| e.dur_us.unwrap())
        .sum();
    assert!(wall > 0);
    let coverage = covered as f64 / wall as f64;
    assert!(
        (0.9..=1.01).contains(&coverage),
        "top-level phases cover {:.1}% of wall time (need within 10%)",
        coverage * 100.0
    );
}

#[test]
fn chrome_trace_is_loadable_and_carries_worker_ids() {
    let program = Framework::Pmdk.program();
    let (data, _) = record_check(&program, Framework::Pmdk.model(), None, 4);
    let json = data.chrome_trace();
    let n = validate_chrome_trace(&json).expect("chrome trace is well-formed");
    assert!(n > data.events.len(), "all events plus metadata records present");
    // Every worker that recorded anything gets its own trace lane. (On a
    // saturated machine a fast worker can steal the whole deal before a
    // sibling starts, so not all of 1..=4 are guaranteed to appear.)
    let mut lanes: Vec<u32> = data.events.iter().map(|e| e.worker).collect();
    lanes.sort_unstable();
    lanes.dedup();
    assert!(lanes.iter().any(|&w| w >= 1), "at least one pool worker recorded");
    assert!(lanes.iter().all(|&w| w <= 4), "worker ids bounded by --jobs");
    for w in lanes {
        assert!(json.contains(&format!("\"tid\":{w}")), "worker {w} appears as a trace lane");
    }
}

#[test]
fn zero_cost_when_disabled_smoke() {
    // No recorder attached: the checker must run and record nothing
    // globally (there is no global state to leak into).
    assert!(!deepmc_obs::active());
    let program = fixture_program();
    let checker = StaticChecker::new(DeepMcConfig::new(PersistencyModel::Strict));
    let report = checker.check_program(&program);
    assert!(!report.warnings.is_empty(), "fixture has a seeded bug");
    assert!(!deepmc_obs::active());
}
